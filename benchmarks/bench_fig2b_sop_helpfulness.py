"""FIG2B — Figure 2(b): how helpful are the predefined SOPs?

Also validates Finding 2's behavioural basis in the substrate: SOPs speed
up diagnosis (helpful), but quality-degraded strategies stay slow even
with an SOP (the help is limited).
"""

import pytest

from benchmarks.conftest import record_report
from repro.alerting.sop import SOPLibrary
from repro.analysis import paper_reference as paper
from repro.analysis.figures import render_bar_survey
from repro.analysis.report import ComparisonRow, render_comparison
from repro.oce.engineer import build_panel
from repro.oce.processing import ProcessingModel
from repro.oce.survey import SOP_OPTIONS, SurveyInstrument


def test_fig2b_sop_helpfulness(benchmark):
    measured = benchmark(lambda: SurveyInstrument(seed=42).run())
    rows = {}
    comparisons = []
    for question in sorted(paper.SOP_HELPFULNESS):
        counts = measured.counts(f"sop/{question}", SOP_OPTIONS)
        rows[f"{question}: {paper.SOP_QUESTIONS[question].split()[0]}"] = counts
        expected = paper.SOP_HELPFULNESS[question]
        assert tuple(counts.values()) == expected
        comparisons.append(ComparisonRow(
            f"{question} (Helpful/Limited/Not)",
            "/".join(map(str, expected)),
            "/".join(str(v) for v in counts.values()),
            paper.SOP_QUESTIONS[question],
        ))
    figure = render_bar_survey(
        "Figure 2(b) — helpfulness of predefined SOPs (n=18)", rows, SOP_OPTIONS,
    )
    table = render_comparison("paper vs measured", comparisons)
    record_report("FIG2B", f"{figure}\n\n{table}")


def test_sops_help_but_less_for_degraded_strategies(trace):
    """Finding 2's mechanism: SOP speeds up diagnosis, less so for messy
    strategies — measured on the processing model itself."""
    library = SOPLibrary()
    for strategy in trace.strategies.values():
        library.build_default(strategy)
    with_sop = ProcessingModel(seed=1, sops=library)
    without_sop = ProcessingModel(seed=1)
    senior = build_panel()[0]

    speedups_clean, speedups_messy = [], []
    for strategy in trace.strategies.values():
        gain = (
            without_sop.expected_seconds(strategy, senior)
            / with_sop.expected_seconds(strategy, senior)
        )
        if strategy.quality.title_clarity >= 0.5:
            speedups_clean.append(gain)
        else:
            speedups_messy.append(gain)
    mean_clean = sum(speedups_clean) / len(speedups_clean)
    mean_messy = sum(speedups_messy) / len(speedups_messy)
    assert mean_clean > 1.0          # SOPs help...
    assert mean_messy < mean_clean   # ...but less when the strategy is unclear
