"""Worker-fleet recovery: what fault tolerance costs, and what a kill costs.

With ``worker_recovery=True`` the process backend journals every
mutating worker message and refreshes per-worker plane snapshots on a
cadence, so a ``kill -9``'d worker can be respawned and replayed to
bit-identical accounting.  The steady-state price is concrete: on the
ring transport every lane batch also materialises its pipe form for the
journal (one extra payload copy per batch), journal appends ride every
exchange, and each snapshot refresh is a full-plane export round trip.

This bench measures, on the multi-region storm trace:

* **recovery-off throughput** — the baseline fleet, supervision only
  (bounded polls, typed death errors);
* **recovery-on throughput** — identical run with journaling and
  snapshot cadence live; the ratio is ``recovery_overhead_ratio``,
  floored at :data:`RECOVERY_OVERHEAD_FLOOR` in CI;
* **kill-and-recover** — the same run with one worker SIGKILLed
  mid-stream; **exact parity is asserted against the unkilled run
  before any number is reported**, and the throughput shows what a
  death + respawn + replay costs end to end.

``run_recovery_config`` / ``run_recovery_sweep`` are importable — the
fast smoke test under ``tests/streaming/`` drives them with a small
trace so this script cannot silently bit-rot.  Results land in
``benchmarks/results/worker_recovery.json`` *and* in the standing
repo-root artifact ``BENCH_streaming.json`` (``worker_recovery`` block
plus one per-PR trajectory row recording the ``cores`` it ran on).
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import pytest

from benchmarks.conftest import record_report
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.streaming import AlertGateway
from repro.workload import StormConfig, build_multi_region_storm

_RESULTS_DIR = Path(__file__).parent / "results"
_REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_ARTIFACT = _REPO_ROOT / "BENCH_streaming.json"

#: Recovery-on throughput must retain at least this fraction of the
#: recovery-off rate.  The measured cost is one extra payload copy +
#: journal append per batch plus the periodic snapshot round trips —
#: well under half the pipeline's work per batch, so 0.5 is a
#: conservative regression tripwire, not an aspiration.
RECOVERY_OVERHEAD_FLOOR = 0.5


def _counts(stats) -> tuple:
    """The drained accounting no recovery mode may ever change."""
    return (stats.input_alerts, stats.blocked_alerts,
            stats.aggregates_emitted, stats.clusters_finalized,
            stats.storm_episodes, stats.emerging_flags,
            stats.late_events)


def run_recovery_config(
    alerts,
    topology,
    blocker,
    rulebook,
    *,
    worker_recovery: bool,
    kill_at: int | None = None,
    n_planes: int = 4,
    n_workers: int = 2,
    flush_size: int = 512,
    ingress_lanes: int = 2,
    lane_transport: str = "ring",
    worker_checkpoint_every: int = 64,
    chunk_size: int = 2048,
    rounds: int = 3,
) -> tuple[float, tuple, dict]:
    """Best-of-``rounds`` throughput for one recovery configuration.

    ``kill_at`` SIGKILLs one worker after that many events (behind a
    flush barrier, so the pid read is deterministic); the timed window
    covers ingest, the kill, the respawn+replay, and the drain — the
    honest end-to-end cost of a worker death.  Returns ``(alerts_per_sec,
    counts, fleet)`` where ``fleet`` carries the death/recovery counters
    of the last round.
    """
    chunks = [alerts[cursor:cursor + chunk_size]
              for cursor in range(0, len(alerts), chunk_size)]
    best = 0.0
    final_counts = None
    fleet: dict = {}
    for _ in range(rounds):
        gateway = AlertGateway(
            topology.graph, blocker=AlertBlocker(blocker.rules),
            rulebook=rulebook, n_shards=4, n_planes=n_planes,
            backend="process", n_workers=n_workers, flush_size=flush_size,
            ingress_lanes=ingress_lanes, lane_transport=lane_transport,
            worker_recovery=worker_recovery,
            worker_checkpoint_every=worker_checkpoint_every,
            retain_artifacts=False,
        )
        ingested = 0
        killed = False
        started = time.perf_counter()
        for chunk in chunks:
            gateway.ingest_batch(chunk)
            ingested += len(chunk)
            if kill_at is not None and not killed and ingested >= kill_at:
                gateway.snapshot()  # barrier: the fleet exists, queues quiet
                victim = gateway._backend._workers[0]
                os.kill(victim.pid, signal.SIGKILL)
                killed = True
        stats = gateway.drain()
        elapsed = time.perf_counter() - started
        best = max(best, len(alerts) / elapsed)
        final_counts = _counts(stats)
        fleet = {
            "worker_deaths": stats.worker_deaths,
            "worker_recoveries": stats.worker_recoveries,
        }
    return best, final_counts, fleet


def run_recovery_sweep(
    trace,
    topology,
    blocker,
    rulebook,
    **config,
) -> dict[str, float]:
    """Off vs on vs killed; exact parity asserted before any reporting.

    The three runs drain the identical trace and must produce identical
    accounting — a recovery mode that is fast but wrong (or a replay
    that double-applies a batch) fails here, not in a dashboard.
    """
    alerts = list(trace.iter_ordered())
    off_rate, off_counts, _ = run_recovery_config(
        alerts, topology, blocker, rulebook,
        worker_recovery=False, **config,
    )
    on_rate, on_counts, _ = run_recovery_config(
        alerts, topology, blocker, rulebook,
        worker_recovery=True, **config,
    )
    assert on_counts == off_counts, (
        f"worker_recovery=True changed the drained accounting: "
        f"{on_counts} != {off_counts}"
    )
    kill_at = max(1, len(alerts) // 3)
    killed_rate, killed_counts, fleet = run_recovery_config(
        alerts, topology, blocker, rulebook,
        worker_recovery=True, kill_at=kill_at, **config,
    )
    assert killed_counts == off_counts, (
        f"kill-and-recover changed the drained accounting: "
        f"{killed_counts} != {off_counts}"
    )
    assert fleet["worker_deaths"] == 1 and fleet["worker_recoveries"] == 1, (
        f"expected exactly one death and one recovery, got {fleet}"
    )
    return {
        "alerts": float(len(alerts)),
        "recovery_off_alerts_per_sec": off_rate,
        "recovery_on_alerts_per_sec": on_rate,
        "recovery_overhead_ratio": on_rate / off_rate,
        "killed_alerts_per_sec": killed_rate,
        "kill_recovery_x": killed_rate / on_rate,
    }


def write_bench_artifact(measurements: dict[str, float], pr: int = 9,
                         path: Path = BENCH_ARTIFACT) -> dict:
    """Record the ``worker_recovery`` block plus this PR's trajectory row.

    The artifact is shared with the serving-checkpoint and ingress-lane
    benches (they own ``current`` / ``ingress_lanes`` /
    ``ring_transport``); this bench owns ``worker_recovery`` and appends
    one per-PR trajectory row (newest measurement wins) so the floors
    guard can police ``recovery_overhead_ratio`` in the diff that
    regresses it.  Every row records the ``cores`` it ran on.
    """
    payload = {"schema": 1, "trajectory": []}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    cores = float(os.cpu_count() or 1)
    block = {key: round(value, 4) for key, value in sorted(measurements.items())}
    block["cores"] = cores
    payload["worker_recovery"] = block
    entry = {
        "pr": pr,
        "throughput_alerts_per_sec": round(
            measurements["recovery_off_alerts_per_sec"]
        ),
        "recovery_overhead_ratio": round(
            measurements["recovery_overhead_ratio"], 3
        ),
        "kill_recovery_x": round(measurements["kill_recovery_x"], 3),
        "cores": cores,
    }
    trajectory = [row for row in payload.get("trajectory", [])
                  if row.get("pr") != pr]
    trajectory.append(entry)
    trajectory.sort(key=lambda row: row["pr"])
    payload["schema"] = 1
    payload["trajectory"] = trajectory
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.fixture(scope="module")
def multi_region_storm(topology):
    """Four concurrent single-region storms merged into one ~11k trace."""
    return build_multi_region_storm(StormConfig(seed=42), topology)


@pytest.fixture(scope="module")
def recovery_measurements(multi_region_storm, topology):
    """One sweep shared by the reporting and the floor assertion."""
    trace = multi_region_storm
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    return run_recovery_sweep(trace, topology, blocker, rulebook)


class TestWorkerRecoveryBench:
    def test_parity_and_artifact(self, recovery_measurements):
        """Parity is asserted inside the sweep; this records the rows."""
        measurements = recovery_measurements
        cores = os.cpu_count() or 1
        lines = [
            f"trace: multi-region storm, {measurements['alerts']:,.0f} alerts "
            f"({cores} cores)",
            f"recovery off:  "
            f"{measurements['recovery_off_alerts_per_sec']:>12,.0f} alerts/s",
            f"recovery on:   "
            f"{measurements['recovery_on_alerts_per_sec']:>12,.0f} alerts/s  "
            f"(x{measurements['recovery_overhead_ratio']:.3f} of off)",
            f"kill+recover:  "
            f"{measurements['killed_alerts_per_sec']:>12,.0f} alerts/s  "
            f"(x{measurements['kill_recovery_x']:.3f} of unkilled)",
        ]
        record_report("worker_recovery", "\n".join(lines))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "worker_recovery.json").write_text(
            json.dumps(measurements, indent=2, sort_keys=True) + "\n"
        )
        write_bench_artifact(measurements)
        assert measurements["recovery_off_alerts_per_sec"] > 0
        assert measurements["killed_alerts_per_sec"] > 0

    def test_recovery_overhead_floor(self, recovery_measurements):
        """The CI bar: journaling + snapshot cadence must keep at least
        ``RECOVERY_OVERHEAD_FLOOR`` of the recovery-off throughput."""
        ratio = recovery_measurements["recovery_overhead_ratio"]
        assert ratio >= RECOVERY_OVERHEAD_FLOOR, (
            f"worker_recovery retained only {ratio:.3f} of the recovery-off "
            f"throughput (floor {RECOVERY_OVERHEAD_FLOOR})"
        )
