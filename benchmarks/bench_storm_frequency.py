"""STORM — §III-A2 storm statistics.

"if the number of alerts from a region exceeds 100 in an hour, we count
it as an alert storm.  Consecutive hours of alert storm will be merged
into one." and "alert storms occur weekly or even daily".
"""

from benchmarks.conftest import record_report
from repro.analysis import paper_reference as paper
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.antipatterns import detect_storms


def test_storm_detection_and_frequency(benchmark, trace):
    episodes = benchmark(lambda: detect_storms(trace, paper.STORM_THRESHOLD))
    assert episodes, "the trace must contain storms"

    days = trace.window().duration / 86400.0
    per_week = len(episodes) / (days / 7.0)
    # "weekly or even daily" — between one a week and one a day.
    assert 0.5 <= per_week <= 8.0

    multi_hour = [e for e in episodes if e.n_hours > 1]
    longest = max(episodes, key=lambda e: e.n_hours)
    table = render_comparison("paper vs measured", [
        ComparisonRow("storm threshold", f"> {paper.STORM_THRESHOLD}/h/region",
                      f"> {paper.STORM_THRESHOLD}/h/region", "same rule"),
        ComparisonRow("storm frequency", "weekly or even daily",
                      f"{per_week:.1f} per week"),
        ComparisonRow("episodes detected", "(not reported)", len(episodes)),
        ComparisonRow("multi-hour episodes (merged)", "(merging applied)",
                      len(multi_hour)),
        ComparisonRow("longest episode (hours)", "(5h example shown)",
                      longest.n_hours),
    ])
    record_report("STORM", table)


def test_merging_invariant(trace):
    """No two episodes of one region may touch: merging must be maximal."""
    episodes = detect_storms(trace)
    by_region: dict[str, list] = {}
    for episode in episodes:
        by_region.setdefault(episode.region, []).append(episode)
    for region_episodes in by_region.values():
        region_episodes.sort(key=lambda e: e.start_hour)
        for left, right in zip(region_episodes, region_episodes[1:]):
            assert right.start_hour > left.end_hour + 1
