"""Ingress lane scaling: partitioned ingest lanes vs the classic path.

Before this bench's PR the gateway ingress was a single-threaded
ceiling: one caller thread routed, buffered, encoded, *and* fed every
plane, so plane parallelism stopped paying once the ingress loop
saturated a core.  With ``ingress_lanes=N`` the caller thread does only
the cheap partition pass (route + buffer + watermark accounting) and N
lane threads carry the heavy half — batch encode via the reusable
:class:`~repro.streaming.wire.AlertBatchBuilder` plus the worker
round-trip — concurrently, one lane per plane-group.

This bench measures, on the multi-region storm trace (four concurrent
Figure 3 storms — every region active at once, the best case *and* the
honest case for region-partitioned ingest):

* **single-lane throughput** — ``ingress_lanes=1``, the classic path;
* **lane-scaled throughput** — the same trace, same planes, with 2 and
  4 ingress lanes;
* **exact parity** — every lane count must drain to bit-identical
  accounting; a lane config that is fast but wrong fails here, not in
  a downstream dashboard.

The scaling floor (``SCALING_FLOOR``x single-lane at 4 lanes) is only
meaningful with real cores under the lane threads, so that assertion
is gated on ``os.cpu_count() >= MIN_CORES_FOR_SCALING`` and skips with
an explicit reason on smaller boxes — the parity assertions always run.

``run_lane_config`` / ``run_lane_sweep`` are importable — the fast
smoke test under ``tests/streaming/`` drives them with a small trace so
this script cannot silently bit-rot.  Results land in
``benchmarks/results/ingress_lanes.json`` *and* in the standing
repo-root artifact ``BENCH_streaming.json`` (the per-PR performance
trajectory).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import record_report
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.streaming import AlertGateway
from repro.workload import StormConfig, build_multi_region_storm

_RESULTS_DIR = Path(__file__).parent / "results"
_REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_ARTIFACT = _REPO_ROOT / "BENCH_streaming.json"

#: Lane counts swept by the bench; 1 is the classic-path baseline.
LANE_COUNTS = (1, 2, 4)

#: The multi-core bar: four lanes over four planes must reach at least
#: this multiple of the single-lane rate — but only where four real
#: cores exist to run the lanes on.
SCALING_FLOOR = 2.5
MIN_CORES_FOR_SCALING = 4


def _counts(stats) -> tuple:
    """The drained accounting a lane count must never change."""
    return (stats.input_alerts, stats.blocked_alerts,
            stats.aggregates_emitted, stats.clusters_finalized,
            stats.storm_episodes, stats.emerging_flags,
            stats.late_events)


def run_lane_config(
    alerts,
    topology,
    blocker,
    rulebook,
    *,
    ingress_lanes: int,
    backend: str = "process",
    n_planes: int = 4,
    n_workers: int = 4,
    flush_size: int = 512,
    chunk_size: int = 2048,
    rounds: int = 3,
) -> tuple[float, tuple]:
    """Best-of-``rounds`` throughput for one lane count.

    The timed window covers ingest *and* drain: lane work is
    asynchronous, so stopping the clock before the drain barrier would
    credit lanes for work still in flight.  Best-of because scheduler
    noise only ever slows a run down.  Returns
    ``(alerts_per_sec, counts)`` where ``counts`` is the drained
    accounting tuple for the parity assertions.
    """
    chunks = [alerts[cursor:cursor + chunk_size]
              for cursor in range(0, len(alerts), chunk_size)]
    best = 0.0
    final_counts = None
    for _ in range(rounds):
        gateway = AlertGateway(
            topology.graph, blocker=AlertBlocker(blocker.rules),
            rulebook=rulebook, n_shards=4, n_planes=n_planes,
            backend=backend, n_workers=n_workers, flush_size=flush_size,
            ingress_lanes=ingress_lanes, retain_artifacts=False,
        )
        started = time.perf_counter()
        for chunk in chunks:
            gateway.ingest_batch(chunk)
        stats = gateway.drain()
        elapsed = time.perf_counter() - started
        best = max(best, len(alerts) / elapsed)
        final_counts = _counts(stats)
    return best, final_counts


def run_lane_sweep(
    trace,
    topology,
    blocker,
    rulebook,
    lane_counts=LANE_COUNTS,
    **config,
) -> dict[str, float]:
    """Sweep lane counts; assert exact parity against the single lane.

    Every lane count drains the identical trace and must produce the
    identical accounting — the bench refuses to report a throughput
    number for a configuration that changed what was counted.
    """
    alerts = list(trace.iter_ordered())
    measurements: dict[str, float] = {}
    baseline_counts = None
    for lanes in lane_counts:
        rate, counts = run_lane_config(
            alerts, topology, blocker, rulebook,
            ingress_lanes=lanes, **config,
        )
        if baseline_counts is None:
            baseline_counts = counts
        assert counts == baseline_counts, (
            f"ingress_lanes={lanes} changed the drained accounting: "
            f"{counts} != {baseline_counts}"
        )
        measurements[f"lanes{lanes}"] = rate
    measurements["alerts"] = float(len(alerts))
    if "lanes1" in measurements:
        top = max(lane_counts)
        measurements["scaling_x"] = (
            measurements[f"lanes{top}"] / measurements["lanes1"]
        )
    return measurements


def write_bench_artifact(measurements: dict[str, float], pr: int = 7,
                         path: Path = BENCH_ARTIFACT) -> dict:
    """Append this run's scaling row to the standing trajectory.

    The artifact is shared with the serving-checkpoint bench: that one
    owns the ``current`` block, this one adds an ``ingress_lanes``
    block plus one per-PR ``trajectory`` row (newest measurement wins),
    so review can see the scaling history without digging through CI
    logs.
    """
    payload = {"schema": 1, "trajectory": []}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    entry = {
        "pr": pr,
        "throughput_alerts_per_sec": round(
            max(value for key, value in measurements.items()
                if key.startswith("lanes"))
        ),
        "single_lane_alerts_per_sec": round(measurements["lanes1"]),
        "lane_scaling_x": round(measurements.get("scaling_x", 1.0), 3),
        "cores": float(os.cpu_count() or 1),
    }
    trajectory = [row for row in payload.get("trajectory", [])
                  if row.get("pr") != pr]
    trajectory.append(entry)
    trajectory.sort(key=lambda row: row["pr"])
    payload["schema"] = 1
    payload["ingress_lanes"] = {
        key: round(value, 4) for key, value in sorted(measurements.items())
    }
    payload["trajectory"] = trajectory
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.fixture(scope="module")
def multi_region_storm(topology):
    """Four concurrent single-region storms merged into one ~11k trace."""
    return build_multi_region_storm(StormConfig(seed=42), topology)


@pytest.fixture(scope="module")
def lane_measurements(multi_region_storm, topology):
    """One sweep shared by the reporting and the scaling assertion."""
    trace = multi_region_storm
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    return run_lane_sweep(trace, topology, blocker, rulebook)


class TestIngressLaneBench:
    def test_lane_parity_and_artifact(self, lane_measurements):
        """Parity is asserted inside the sweep; this records the row."""
        measurements = lane_measurements
        cores = os.cpu_count() or 1
        lines = [
            f"trace: multi-region storm, {measurements['alerts']:,.0f} alerts "
            f"({cores} cores)",
        ]
        for lanes in LANE_COUNTS:
            lines.append(
                f"ingress_lanes={lanes}:  "
                f"{measurements[f'lanes{lanes}']:>12,.0f} alerts/s"
            )
        lines.append(
            f"scaling ({max(LANE_COUNTS)} lanes / 1 lane): "
            f"{measurements['scaling_x']:.2f}x"
        )
        record_report("ingress_lanes", "\n".join(lines))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "ingress_lanes.json").write_text(
            json.dumps(measurements, indent=2, sort_keys=True) + "\n"
        )
        write_bench_artifact(measurements)
        for lanes in LANE_COUNTS:
            assert measurements[f"lanes{lanes}"] > 0

    def test_multicore_scaling_floor(self, lane_measurements):
        """The issue's bar: >= 2.5x single-lane at 4 lanes on >= 4 cores."""
        cores = os.cpu_count() or 1
        if cores < MIN_CORES_FOR_SCALING:
            pytest.skip(
                f"lane scaling floor needs >= {MIN_CORES_FOR_SCALING} cores "
                f"to be meaningful; this box has {cores} — parity was still "
                f"asserted for every lane count"
            )
        assert lane_measurements["scaling_x"] >= SCALING_FLOOR, (
            f"4 ingress lanes reached only "
            f"{lane_measurements['scaling_x']:.2f}x the single-lane rate "
            f"on {cores} cores (floor {SCALING_FLOOR}x)"
        )
