"""Ingress lane scaling: partitioned ingest lanes vs the classic path.

Before this bench's PR the gateway ingress was a single-threaded
ceiling: one caller thread routed, buffered, encoded, *and* fed every
plane, so plane parallelism stopped paying once the ingress loop
saturated a core.  With ``ingress_lanes=N`` the caller thread does only
the cheap partition pass (route + buffer + watermark accounting) and N
lane threads carry the heavy half — batch encode via the reusable
:class:`~repro.streaming.wire.AlertBatchBuilder` plus the worker
round-trip — concurrently, one lane per plane-group.

This bench measures, on the multi-region storm trace (four concurrent
Figure 3 storms — every region active at once, the best case *and* the
honest case for region-partitioned ingest):

* **single-lane throughput** — ``ingress_lanes=1``, the classic path;
* **lane-scaled throughput** — the same trace, same planes, with 2 and
  4 ingress lanes;
* **exact parity** — every lane count must drain to bit-identical
  accounting; a lane config that is fast but wrong fails here, not in
  a downstream dashboard.

The scaling floor (``SCALING_FLOOR``x single-lane at 4 lanes) is only
meaningful with real cores under the lane threads, so that assertion
is gated on ``os.cpu_count() >= MIN_CORES_FOR_SCALING`` and skips with
an explicit reason on smaller boxes — the parity assertions always run.

Since the zero-copy ring transport the bench also measures the **lane →
worker hand-off** in isolation (``run_transport_handoff``): the same
builder-encoded batch crosses either the shared-memory ring (one copy
into the slot, a tiny control message, a ``memoryview`` on the far
side) or the classic pipe (join + pickle + kernel copy + rebuild), and
the child acknowledges each delivery so both paths pay the identical
synchronous round-trip.  End-to-end transport **parity is asserted
before any hand-off number is reported**
(``run_transport_parity``): ring lanes, pipe lanes, and the unlaned
path must drain the identical trace to identical accounting.  The
hand-off floor (``HANDOFF_FLOOR``x at the largest swept batch) holds on
a single core — below the kernel's socket buffer the two transports
tie on round-trip latency, so the floor is asserted where the payload
copies dominate, which is exactly the regime the ring exists for.

``run_lane_config`` / ``run_lane_sweep`` / ``run_transport_handoff``
are importable — the fast smoke test under ``tests/streaming/`` drives
them with a small trace so this script cannot silently bit-rot.
Results land in ``benchmarks/results/ingress_lanes.json`` *and* in the
standing repo-root artifact ``BENCH_streaming.json`` (the per-PR
performance trajectory; every row records the ``cores`` it ran on).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import record_report
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.streaming import AlertBatchBuilder, AlertGateway, SpscRing
from repro.workload import StormConfig, build_multi_region_storm

_RESULTS_DIR = Path(__file__).parent / "results"
_REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_ARTIFACT = _REPO_ROOT / "BENCH_streaming.json"

#: Lane counts swept by the bench; 1 is the classic-path baseline.
LANE_COUNTS = (1, 2, 4)

#: The multi-core bar: four lanes over four planes must reach at least
#: this multiple of the single-lane rate — but only where four real
#: cores exist to run the lanes on.
SCALING_FLOOR = 2.5
MIN_CORES_FOR_SCALING = 4

#: Batch sizes (in alerts) swept by the transport hand-off bench.  512
#: is the gateway's default pooled flush; the larger batches are where
#: the pipe's extra copies cross the kernel socket buffer and the
#: zero-copy win compounds.
HANDOFF_BATCH_SIZES = (512, 1024, 2048)
#: The single-core bar: at the largest swept batch the ring hand-off
#: must beat the pipe hand-off by at least this factor.
HANDOFF_FLOOR = 1.1
#: Slot capacity for the hand-off ring; holds the largest swept batch
#: (~210 KB encoded) without spilling.
HANDOFF_SLOT_SIZE = 1 << 19


def _counts(stats) -> tuple:
    """The drained accounting a lane count must never change."""
    return (stats.input_alerts, stats.blocked_alerts,
            stats.aggregates_emitted, stats.clusters_finalized,
            stats.storm_episodes, stats.emerging_flags,
            stats.late_events)


def run_lane_config(
    alerts,
    topology,
    blocker,
    rulebook,
    *,
    ingress_lanes: int,
    backend: str = "process",
    lane_transport: str = "ring",
    n_planes: int = 4,
    n_workers: int = 4,
    flush_size: int = 512,
    chunk_size: int = 2048,
    rounds: int = 3,
) -> tuple[float, tuple]:
    """Best-of-``rounds`` throughput for one lane count.

    The timed window covers ingest *and* drain: lane work is
    asynchronous, so stopping the clock before the drain barrier would
    credit lanes for work still in flight.  Best-of because scheduler
    noise only ever slows a run down.  Returns
    ``(alerts_per_sec, counts)`` where ``counts`` is the drained
    accounting tuple for the parity assertions.
    """
    chunks = [alerts[cursor:cursor + chunk_size]
              for cursor in range(0, len(alerts), chunk_size)]
    best = 0.0
    final_counts = None
    for _ in range(rounds):
        gateway = AlertGateway(
            topology.graph, blocker=AlertBlocker(blocker.rules),
            rulebook=rulebook, n_shards=4, n_planes=n_planes,
            backend=backend, n_workers=n_workers, flush_size=flush_size,
            ingress_lanes=ingress_lanes, lane_transport=lane_transport,
            retain_artifacts=False,
        )
        started = time.perf_counter()
        for chunk in chunks:
            gateway.ingest_batch(chunk)
        stats = gateway.drain()
        elapsed = time.perf_counter() - started
        best = max(best, len(alerts) / elapsed)
        final_counts = _counts(stats)
    return best, final_counts


def run_lane_sweep(
    trace,
    topology,
    blocker,
    rulebook,
    lane_counts=LANE_COUNTS,
    **config,
) -> dict[str, float]:
    """Sweep lane counts; assert exact parity against the single lane.

    Every lane count drains the identical trace and must produce the
    identical accounting — the bench refuses to report a throughput
    number for a configuration that changed what was counted.
    """
    alerts = list(trace.iter_ordered())
    measurements: dict[str, float] = {}
    baseline_counts = None
    for lanes in lane_counts:
        rate, counts = run_lane_config(
            alerts, topology, blocker, rulebook,
            ingress_lanes=lanes, **config,
        )
        if baseline_counts is None:
            baseline_counts = counts
        assert counts == baseline_counts, (
            f"ingress_lanes={lanes} changed the drained accounting: "
            f"{counts} != {baseline_counts}"
        )
        measurements[f"lanes{lanes}"] = rate
    measurements["alerts"] = float(len(alerts))
    if "lanes1" in measurements:
        top = max(lane_counts)
        measurements["scaling_x"] = (
            measurements[f"lanes{top}"] / measurements["lanes1"]
        )
    return measurements


def run_transport_parity(
    alerts,
    topology,
    blocker,
    rulebook,
    **config,
) -> tuple:
    """Assert ring lanes, pipe lanes, and the unlaned path agree exactly.

    The hand-off microbench below deliberately strips the transports
    down to raw byte movement, so *this* is where correctness is
    pinned: the identical trace drained through every transport must
    produce bit-identical accounting before a single hand-off number
    is reported.  Returns the agreed counts tuple.
    """
    config.setdefault("rounds", 1)
    config.setdefault("ingress_lanes", 4)
    baseline = None
    for label, overrides in (
        ("ingress_lanes=1", {"ingress_lanes": 1}),
        ("lane_transport=ring", {"lane_transport": "ring"}),
        ("lane_transport=pipe", {"lane_transport": "pipe"}),
    ):
        _, counts = run_lane_config(
            alerts, topology, blocker, rulebook, **{**config, **overrides},
        )
        if baseline is None:
            baseline = counts
        assert counts == baseline, (
            f"{label} changed the drained accounting: {counts} != {baseline}"
        )
    return baseline


def _handoff_child(conn, ring_name: str) -> None:
    """Worker side of the hand-off microbench: consume and acknowledge.

    A ``"ring"`` control message means one batch awaits in the shared
    ring — map it, note its length, release the slot.  Raw bytes *are*
    the batch (the pipe path).  Either way the observed length goes
    back up the pipe so both transports pay the same synchronous
    round-trip the production lane protocol pays.
    """
    ring = SpscRing.attach(ring_name)
    try:
        while True:
            message = conn.recv()
            if message == "ring":
                view = ring.peek()
                length = len(view)
                view.release()
                ring.consume()
                conn.send(length)
            elif message == "stop":
                return
            else:
                conn.send(len(message))
    finally:
        ring.close()
        conn.close()


def run_transport_handoff(
    alerts,
    *,
    batch_sizes=HANDOFF_BATCH_SIZES,
    iterations: int = 200,
    rounds: int = 3,
    slot_size: int = HANDOFF_SLOT_SIZE,
) -> dict:
    """Ring-vs-pipe hand-off rates over builder-realistic payloads.

    One child process plays the plane worker; the parent plays the lane
    thread.  Per batch size the identical encoded parts cross either
    the ring (``try_write`` + control message + far-side ``memoryview``)
    or the pipe (join + ``Connection.send`` of the blob), warmup then
    best-of-``rounds``.  Returns per-batch rows plus the headline
    ``ratio`` measured at the largest batch, where payload copies —
    the thing the ring removes — dominate the round-trip.
    """
    ring = SpscRing.create(slot_size=slot_size, slot_count=4)
    parent_conn, child_conn = multiprocessing.Pipe()
    worker = multiprocessing.get_context().Process(
        target=_handoff_child, args=(child_conn, ring.name), daemon=True,
    )
    worker.start()
    child_conn.close()
    rows = []
    try:
        builder = AlertBatchBuilder()
        for batch in batch_sizes:
            builder.extend(alerts[i % len(alerts)] for i in range(batch))
            parts = [bytes(part) for part in builder.finish_parts()]
            payload = sum(len(part) for part in parts)
            if payload > slot_size:
                continue  # would spill every write; nothing to compare

            def ring_pass(n: int) -> None:
                for _ in range(n):
                    assert ring.try_write(parts) is not None
                    parent_conn.send("ring")
                    assert parent_conn.recv() == payload

            def pipe_pass(n: int) -> None:
                for _ in range(n):
                    parent_conn.send(b"".join(parts))
                    assert parent_conn.recv() == payload

            rates = {}
            for label, one_pass in (("ring", ring_pass), ("pipe", pipe_pass)):
                one_pass(max(1, iterations // 10))  # warmup
                best = 0.0
                for _ in range(rounds):
                    started = time.perf_counter()
                    one_pass(iterations)
                    elapsed = time.perf_counter() - started
                    best = max(best, iterations / elapsed)
                rates[label] = best
            rows.append({
                "batch_alerts": batch,
                "payload_bytes": payload,
                "ring_handoffs_per_sec": round(rates["ring"], 1),
                "pipe_handoffs_per_sec": round(rates["pipe"], 1),
                "ratio": round(rates["ring"] / rates["pipe"], 3),
            })
    finally:
        try:
            parent_conn.send("stop")
        except (BrokenPipeError, OSError):
            pass
        worker.join(timeout=10)
        parent_conn.close()
        ring.unlink()
    return {
        "cores": float(os.cpu_count() or 1),
        "slot_size": slot_size,
        "handoff": rows,
        "ring_vs_pipe_handoff_x": rows[-1]["ratio"] if rows else 0.0,
    }


def write_bench_artifact(measurements: dict[str, float],
                         handoff: dict | None = None, pr: int = 8,
                         path: Path = BENCH_ARTIFACT) -> dict:
    """Append this run's scaling row to the standing trajectory.

    The artifact is shared with the serving-checkpoint bench: that one
    owns the ``current`` block, this one adds the ``ingress_lanes`` and
    ``ring_transport`` blocks plus one per-PR ``trajectory`` row
    (newest measurement wins), so review can see the scaling history
    without digging through CI logs.  Every trajectory row carries the
    ``cores`` it was measured on — rows written before the field
    existed are backfilled with this box's count (the trajectory has
    only ever been recorded on one container), so the floors guard in
    CI can gate multi-core floors on the cores a row actually had.
    """
    payload = {"schema": 1, "trajectory": []}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    cores = float(os.cpu_count() or 1)
    entry = {
        "pr": pr,
        "throughput_alerts_per_sec": round(
            max(value for key, value in measurements.items()
                if key.startswith("lanes"))
        ),
        "single_lane_alerts_per_sec": round(measurements["lanes1"]),
        "lane_scaling_x": round(measurements.get("scaling_x", 1.0), 3),
        "cores": cores,
    }
    if handoff is not None:
        entry["ring_vs_pipe_handoff_x"] = handoff["ring_vs_pipe_handoff_x"]
    trajectory = [row for row in payload.get("trajectory", [])
                  if row.get("pr") != pr]
    trajectory.append(entry)
    for row in trajectory:
        row.setdefault("cores", cores)
    trajectory.sort(key=lambda row: row["pr"])
    payload["schema"] = 1
    payload["ingress_lanes"] = {
        key: round(value, 4) for key, value in sorted(measurements.items())
    }
    payload["ingress_lanes"]["cores"] = cores
    if handoff is not None:
        payload["ring_transport"] = handoff
    payload["trajectory"] = trajectory
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.fixture(scope="module")
def multi_region_storm(topology):
    """Four concurrent single-region storms merged into one ~11k trace."""
    return build_multi_region_storm(StormConfig(seed=42), topology)


@pytest.fixture(scope="module")
def lane_measurements(multi_region_storm, topology):
    """One sweep shared by the reporting and the scaling assertion."""
    trace = multi_region_storm
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    return run_lane_sweep(trace, topology, blocker, rulebook)


@pytest.fixture(scope="module")
def handoff_measurements(multi_region_storm, topology):
    """Transport parity asserted end to end, then the hand-off sweep."""
    trace = multi_region_storm
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    alerts = list(trace.iter_ordered())
    run_transport_parity(alerts, topology, blocker, rulebook)
    return run_transport_handoff(alerts)


class TestIngressLaneBench:
    def test_lane_parity_and_artifact(self, lane_measurements,
                                      handoff_measurements):
        """Parity is asserted inside the sweeps; this records the rows."""
        measurements = lane_measurements
        handoff = handoff_measurements
        cores = os.cpu_count() or 1
        lines = [
            f"trace: multi-region storm, {measurements['alerts']:,.0f} alerts "
            f"({cores} cores)",
        ]
        for lanes in LANE_COUNTS:
            lines.append(
                f"ingress_lanes={lanes}:  "
                f"{measurements[f'lanes{lanes}']:>12,.0f} alerts/s"
            )
        lines.append(
            f"scaling ({max(LANE_COUNTS)} lanes / 1 lane): "
            f"{measurements['scaling_x']:.2f}x"
        )
        for row in handoff["handoff"]:
            lines.append(
                f"hand-off {row['payload_bytes'] / 1024:>5.0f} KB:  "
                f"ring {row['ring_handoffs_per_sec']:>9,.0f}/s  "
                f"pipe {row['pipe_handoffs_per_sec']:>9,.0f}/s  "
                f"ratio {row['ratio']:.2f}x"
            )
        record_report("ingress_lanes", "\n".join(lines))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "ingress_lanes.json").write_text(
            json.dumps(measurements, indent=2, sort_keys=True) + "\n"
        )
        write_bench_artifact(measurements, handoff)
        for lanes in LANE_COUNTS:
            assert measurements[f"lanes{lanes}"] > 0

    def test_ring_handoff_floor(self, handoff_measurements):
        """The single-core bar: the ring must beat the pipe hand-off by
        ``HANDOFF_FLOOR``x at the largest swept batch — no core gate,
        because the win there comes from removing copies, not from
        parallelism."""
        ratio = handoff_measurements["ring_vs_pipe_handoff_x"]
        assert ratio >= HANDOFF_FLOOR, (
            f"ring hand-off reached only {ratio:.2f}x the pipe hand-off "
            f"(floor {HANDOFF_FLOOR}x) at the largest swept batch"
        )

    def test_multicore_scaling_floor(self, lane_measurements):
        """The issue's bar: >= 2.5x single-lane at 4 lanes on >= 4 cores."""
        cores = os.cpu_count() or 1
        if cores < MIN_CORES_FOR_SCALING:
            pytest.skip(
                f"lane scaling floor needs >= {MIN_CORES_FOR_SCALING} cores "
                f"to be meaningful; this box has {cores} — parity was still "
                f"asserted for every lane count"
            )
        assert lane_measurements["scaling_x"] >= SCALING_FLOOR, (
            f"4 ingress lanes reached only "
            f"{lane_measurements['scaling_x']:.2f}x the single-lane rate "
            f"on {cores} cores (floor {SCALING_FLOOR}x)"
        )
