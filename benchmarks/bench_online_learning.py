"""Online rule learning + streaming QoA: overhead and divergence bench.

Replays the drifting-noise workload (:mod:`repro.workload.drift`) at
bench scale through three gateway configurations:

* ``plain`` — the PR-3 gateway, no observation collection (baseline);
* ``learn`` — online R1 rule learning from streaming A4/A5 detection;
* ``learn+qoa`` — learning plus incremental per-strategy QoA scoring.

Two families of numbers land in the report and
``benchmarks/results/online_learning.json``:

* **overhead** — throughput of each configuration; the learning path
  must stay within ``_MAX_OVERHEAD`` of the plain gateway (the digest
  pass is one dict update per event, and it only exists when enabled);
* **divergence** — the differential harness's metrics at bench scale:
  learned-rule precision/recall vs the batch-derived set on the
  stationary trace (asserted >= 0.9 precision, the ISSUE-4 bound) and
  the reported divergence on the drifting trace.

``run_learning_sweep``/``run_divergence`` are importable; the fast
smoke test under ``tests/`` drives them with small traces so this
script cannot silently bit-rot.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import record_report
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.streaming import AlertGateway, LearnerConfig, rule_set_divergence
from repro.workload import DriftConfig, build_drifting_noise_trace, drift_graph

_RESULTS_DIR = Path(__file__).parent / "results"
#: Learning may cost at most this factor of plain-gateway throughput.
_MAX_OVERHEAD = 3.0

#: (label, learn_rules, enable_qoa)
LEARNING_CONFIGS = (
    ("plain", False, False),
    ("learn", True, False),
    ("learn+qoa", True, True),
)

_LEARNER = LearnerConfig(rule_ttl=1800.0)


def _bench_config(hours: float = 24.0, drift: bool = True) -> DriftConfig:
    return DriftConfig(hours=hours, drift=drift)


def run_learning_config(
    trace, graph, learn_rules: bool, enable_qoa: bool, flush_size: int = 512,
):
    """One gateway run; returns its end-of-run ``GatewayStats``."""
    gateway = AlertGateway(
        graph,
        blocker=AlertBlocker(),
        flush_size=flush_size,
        learn_rules=learn_rules,
        enable_qoa=enable_qoa,
        learner_config=_LEARNER,
        retain_artifacts=False,
    )
    gateway.ingest_batch(trace.iter_ordered())
    return gateway, gateway.drain()


def run_learning_sweep(trace, graph) -> dict[str, dict[str, float]]:
    """Throughput of every learning configuration on one trace."""
    measurements: dict[str, dict[str, float]] = {}
    for label, learn_rules, enable_qoa in LEARNING_CONFIGS:
        _gateway, stats = run_learning_config(trace, graph, learn_rules, enable_qoa)
        measurements[label] = {
            "alerts_per_sec": stats.throughput,
            "latency_p50_us": stats.latency.quantile(0.50) * 1e6,
            "latency_p99_us": stats.latency.quantile(0.99) * 1e6,
            "rules_promoted": float(stats.rules_promoted),
            "rules_expired": float(stats.rules_expired),
        }
    return measurements


def run_divergence(trace, graph, flush_size: int = 512) -> dict[str, float]:
    """Online-vs-batch rule divergence on one trace (bench-scale leg)."""
    batch_blocker = MitigationPipeline.derive_blocker(trace)
    batch_set = {rule.strategy_id for rule in batch_blocker.rules}
    gateway, stats = run_learning_config(
        trace, graph, learn_rules=True, enable_qoa=False, flush_size=flush_size,
    )
    batch_report = MitigationPipeline(graph).run(trace, blocker=batch_blocker)
    metrics = rule_set_divergence(gateway.learner.ever_promoted, batch_set)
    metrics["online_blocked"] = float(stats.blocked_alerts)
    metrics["batch_blocked"] = float(batch_report.blocked_alerts)
    metrics["rule_events"] = float(len(gateway.learner.events))
    return metrics


def test_online_learning_overhead_and_divergence(benchmark):
    config = _bench_config()
    trace = build_drifting_noise_trace(config)
    graph = drift_graph(config)
    stationary = build_drifting_noise_trace(_bench_config(drift=False))

    by_config = run_learning_sweep(trace, graph)
    plain = by_config["plain"]["alerts_per_sec"]
    learned = by_config["learn+qoa"]["alerts_per_sec"]
    assert learned * _MAX_OVERHEAD >= plain, (
        f"learning+qoa ran at {plain / learned:.2f}x the plain gateway's "
        f"cost; budget is {_MAX_OVERHEAD}x"
    )

    stationary_div = run_divergence(stationary, graph)
    assert stationary_div["precision"] >= 0.9, (
        f"bench-scale stationary precision {stationary_div['precision']:.2f}"
    )
    drifting_div = run_divergence(trace, graph)

    # The timed figure-of-record: the full learning + QoA path.
    _gateway, stats = benchmark(lambda: run_learning_config(
        trace, graph, learn_rules=True, enable_qoa=True,
    ))
    assert stats.input_alerts == len(trace)

    rows = []
    for label, metrics in by_config.items():
        rows.append(ComparisonRow(
            f"{label:>10}", f"({len(trace):,} drifting alerts)",
            f"{metrics['alerts_per_sec']:>9,.0f} alerts/s  "
            f"p50 {metrics['latency_p50_us']:.1f} us  "
            f"p99 {metrics['latency_p99_us']:.1f} us  "
            f"rules +{metrics['rules_promoted']:.0f}/-{metrics['rules_expired']:.0f}",
        ))
    for label, metrics in (("stationary", stationary_div),
                           ("drifting", drifting_div)):
        rows.append(ComparisonRow(
            f"{label:>10}", "(rule divergence vs batch)",
            f"precision {metrics['precision']:.2f}  "
            f"recall {metrics['recall']:.2f}  "
            f"blocked {metrics['online_blocked']:,.0f} online / "
            f"{metrics['batch_blocked']:,.0f} batch",
        ))
    record_report("online_learning", render_comparison(
        f"Online rule learning over {len(trace):,} drifting-noise alerts", rows,
    ))

    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / "online_learning.json").write_text(json.dumps({
        "trace_alerts": len(trace),
        "configs": by_config,
        "divergence": {"stationary": stationary_div, "drifting": drifting_div},
        "overhead_factor": plain / learned,
    }, indent=2, sort_keys=True))
