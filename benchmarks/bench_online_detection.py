"""Online anti-pattern detection + R4 sketch: overhead bench.

Replays the multi-region storm workload (the same ~11k-alert trace the
transport, recovery, and checkpoint benches use) through three gateway
configurations:

* ``plain`` — no learning, no detection (context baseline);
* ``learn`` — online R1 rule learning (the PR-4 gateway, and the
  baseline the detection budget is measured against);
* ``learn+detect`` — learning plus the full online detection path:
  per-plane detection digests, A1/A2/A3 folding at flush barriers, and
  the hashing-trick R4 sketch.

The figure-of-record is ``detection_overhead_ratio`` — throughput of
``learn+detect`` as a fraction of ``learn``.  The ISSUE budget says the
detector+sketch pass may cost at most ``MAX_DETECTION_OVERHEAD`` (1.3x)
of the learner-only gateway, so the recorded ratio must stay above
``DETECTION_OVERHEAD_FLOOR`` (= 1/1.3); ``check_bench_floors.py``
imports that constant and enforces it on the committed artifact.  Each
config is timed best-of-``_REPEATS`` because scheduler noise only ever
slows a run down.

``run_detection_sweep`` is importable; the fast smoke test under
``tests/`` drives it with a small drifting-noise trace so this script
cannot silently bit-rot.
"""

from __future__ import annotations

import gc
import json
import os
from pathlib import Path

from benchmarks.conftest import record_report
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.mitigation.blocking import AlertBlocker
from repro.streaming import AlertGateway, LearnerConfig
from repro.workload import StormConfig, build_multi_region_storm

_RESULTS_DIR = Path(__file__).parent / "results"
BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_streaming.json"

#: The detector+sketch pass may cost at most this factor of the
#: learner-only gateway's throughput (the ISSUE-10 budget).
MAX_DETECTION_OVERHEAD = 1.3
#: Recorded ``learn+detect`` / ``learn`` throughput must stay above
#: this — the budget above, expressed as a retained-throughput floor.
DETECTION_OVERHEAD_FLOOR = 1.0 / MAX_DETECTION_OVERHEAD

#: (label, learn_rules, detect_antipatterns)
DETECTION_CONFIGS = (
    ("plain", False, False),
    ("learn", True, False),
    ("learn+detect", True, True),
)

#: Best-of-N runs per config when measuring the overhead ratio.
_REPEATS = 5

_LEARNER = LearnerConfig(rule_ttl=1800.0)


def run_detection_config(
    trace, graph, learn_rules: bool, detect: bool, flush_size: int = 512,
):
    """One gateway run; returns the gateway and its end-of-run stats."""
    gateway = AlertGateway(
        graph,
        blocker=AlertBlocker(),
        flush_size=flush_size,
        learn_rules=learn_rules,
        learner_config=_LEARNER if learn_rules else None,
        detect_antipatterns=detect,
        retain_artifacts=False,
    )
    gateway.ingest_batch(trace.iter_ordered())
    return gateway, gateway.drain()


def run_detection_sweep(trace, graph, repeats: int = 1):
    """Throughput (and verdict volume) of every detection config.

    Rounds are interleaved (every config once per round, best-of kept)
    and each run is timed with the collector parked — GC pauses and
    machine-load drift otherwise land in one config's figure and fake
    an overhead change.
    """
    best_stats: dict[str, object] = {}
    for _ in range(repeats):
        for label, learn_rules, detect in DETECTION_CONFIGS:
            gc.collect()
            gc.disable()
            try:
                _gateway, stats = run_detection_config(
                    trace, graph, learn_rules, detect,
                )
            finally:
                gc.enable()
            held = best_stats.get(label)
            if held is None or stats.throughput > held.throughput:
                best_stats[label] = stats
    measurements: dict[str, dict[str, float]] = {}
    for label, _learn_rules, detect in DETECTION_CONFIGS:
        best = best_stats[label]
        metrics = {
            "alerts_per_sec": best.throughput,
            "latency_p50_us": best.latency.quantile(0.50) * 1e6,
            "latency_p99_us": best.latency.quantile(0.99) * 1e6,
        }
        if detect:
            summary = best.detection
            metrics["strategies"] = float(summary["strategies"])
            metrics["sketch_flags"] = float(summary["emerging"])
            metrics["findings"] = float(
                sum(summary["findings"].values())
            )
        measurements[label] = metrics
    return measurements


def write_bench_artifact(measurements: dict[str, float], pr: int = 10,
                         path: Path = BENCH_ARTIFACT) -> dict:
    """Record the ``online_detection`` block plus this PR's trajectory row.

    The artifact is shared with the serving-checkpoint, ingress-lane,
    and worker-recovery benches; this bench owns ``online_detection``
    and appends one per-PR trajectory row (newest measurement wins) so
    the floors guard can police ``detection_overhead_ratio`` in the
    diff that regresses it.  Every row records the ``cores`` it ran on.
    """
    payload = {"schema": 1, "trajectory": []}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    cores = float(os.cpu_count() or 1)
    block = {key: round(value, 4) for key, value in sorted(measurements.items())}
    block["cores"] = cores
    payload["online_detection"] = block
    entry = {
        "pr": pr,
        "throughput_alerts_per_sec": round(
            measurements["detect_alerts_per_sec"]
        ),
        "detection_overhead_ratio": round(
            measurements["detection_overhead_ratio"], 3
        ),
        "cores": cores,
    }
    trajectory = [row for row in payload.get("trajectory", [])
                  if row.get("pr") != pr]
    trajectory.append(entry)
    trajectory.sort(key=lambda row: row["pr"])
    payload["schema"] = 1
    payload["trajectory"] = trajectory
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def test_online_detection_overhead(benchmark, topology):
    trace = build_multi_region_storm(StormConfig(seed=42), topology)
    graph = topology.graph

    by_config = run_detection_sweep(trace, graph, repeats=_REPEATS)
    learn = by_config["learn"]["alerts_per_sec"]
    detect = by_config["learn+detect"]["alerts_per_sec"]
    ratio = detect / learn
    assert ratio >= DETECTION_OVERHEAD_FLOOR, (
        f"learn+detect ran at {learn / detect:.2f}x the learner-only "
        f"gateway's cost; budget is {MAX_DETECTION_OVERHEAD}x"
    )

    # The timed figure-of-record: the full learning + detection path.
    _gateway, stats = benchmark(lambda: run_detection_config(
        trace, graph, learn_rules=True, detect=True,
    ))
    assert stats.input_alerts == len(trace)
    assert stats.detection["strategies"] > 0

    rows = []
    for label, metrics in by_config.items():
        verdicts = ""
        if "findings" in metrics:
            verdicts = (
                f"  findings {metrics['findings']:.0f}"
                f"  sketch-R4 {metrics['sketch_flags']:.0f}"
            )
        rows.append(ComparisonRow(
            f"{label:>12}", f"({len(trace):,} storm alerts)",
            f"{metrics['alerts_per_sec']:>9,.0f} alerts/s  "
            f"p50 {metrics['latency_p50_us']:.1f} us  "
            f"p99 {metrics['latency_p99_us']:.1f} us" + verdicts,
        ))
    rows.append(ComparisonRow(
        f"{'overhead':>12}", "(learn+detect vs learn)",
        f"ratio {ratio:.4f}  floor {DETECTION_OVERHEAD_FLOOR:.4f} "
        f"(budget {MAX_DETECTION_OVERHEAD}x)",
    ))
    record_report("online_detection", render_comparison(
        f"Online detection over {len(trace):,} multi-region storm alerts",
        rows,
    ))

    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / "online_detection.json").write_text(json.dumps({
        "trace_alerts": len(trace),
        "configs": by_config,
        "detection_overhead_ratio": ratio,
    }, indent=2, sort_keys=True))
    write_bench_artifact({
        "alerts": float(len(trace)),
        "plain_alerts_per_sec": by_config["plain"]["alerts_per_sec"],
        "learn_alerts_per_sec": learn,
        "detect_alerts_per_sec": detect,
        "detection_overhead_ratio": ratio,
        "strategies": by_config["learn+detect"]["strategies"],
        "findings": by_config["learn+detect"]["findings"],
        "sketch_flags": by_config["learn+detect"]["sketch_flags"],
    })
