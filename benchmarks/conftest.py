"""Shared fixtures and reporting for the benchmark harness.

Every benchmark registers a paper-vs-measured comparison via
:func:`record_report`; the tables are printed in the terminal summary and
written to ``benchmarks/results/`` so the artefacts survive output
capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.topology import TopologyConfig, generate_topology
from repro.workload import TraceConfig, generate_trace

_REPORTS: list[tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"


def record_report(name: str, text: str) -> None:
    """Register a bench report for terminal summary and persist it."""
    _REPORTS.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper-vs-measured reports")
    for name, text in _REPORTS:
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def topology():
    """The paper-scale cloud shared by all benches."""
    return generate_topology(TopologyConfig(seed=42))


@pytest.fixture(scope="session")
def trace(topology):
    """The default 60-day trace shared by all benches."""
    return generate_trace(TraceConfig(seed=42), topology)


@pytest.fixture(scope="session")
def rulebook(trace):
    """A 60 %-coverage strategy-dependency rule book."""
    return rulebook_from_ground_truth(trace, coverage=0.6)
