"""STATS — §III quantitative frame: the candidate-mining pipeline.

The paper analyses >4 M alerts over two years from 2010 strategies on a
cloud of 11 services / 192 microservices, selects individual candidates
from the top 30 % of mean processing time, collective candidates from
>200 alerts/hour/region groups, and confirms 4 individual + 2 collective
anti-patterns.  This bench runs the identical pipeline on the
rate-preserving scaled-down trace and reports the same frame.
"""

from benchmarks.conftest import record_report
from repro.analysis import paper_reference as paper
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.antipatterns import run_mining_pipeline
from repro.workload.calibration import TraceScale


def test_stats_full_mining_pipeline(benchmark, trace, topology):
    report = benchmark(lambda: run_mining_pipeline(trace, topology.graph))

    found_individual = report.individual_patterns_found
    found_collective = report.collective_patterns_found
    assert found_individual == ["A1", "A2", "A3", "A4"]
    assert found_collective == ["A5", "A6"]
    assert report.candidate_enrichment > report.population_antipattern_rate

    scale = TraceScale.default()
    table = render_comparison("paper vs measured (rate-preserving scale-down)", [
        ComparisonRow("study span (days)", paper.STUDY_YEARS * 365, scale.days,
                      "scaled"),
        ComparisonRow("strategies", paper.N_STRATEGIES, scale.n_strategies, "scaled"),
        ComparisonRow("total alerts", paper.N_ALERTS_TOTAL, len(trace), "scaled"),
        ComparisonRow("alerts/strategy/day",
                      round(paper.N_ALERTS_TOTAL / 730 / paper.N_STRATEGIES, 2),
                      round(len(trace) / scale.days / scale.n_strategies, 2),
                      "the scale-invariant rate"),
        ComparisonRow("services / microservices",
                      f"{paper.N_SERVICES} / {paper.N_MICROSERVICES}",
                      f"{len(topology.services)} / {len(topology.microservices)}"),
        ComparisonRow("individual candidate rule",
                      f"top {paper.TOP_PROCESSING_FRACTION:.0%} processing time",
                      f"{len(report.individual_candidates)} of "
                      f"{len(report.mean_processing)} strategies"),
        ComparisonRow("individual patterns confirmed", paper.INDIVIDUAL_CONFIRMED,
                      len(found_individual), "A1-A4"),
        ComparisonRow("collective patterns confirmed", paper.COLLECTIVE_CONFIRMED,
                      len(found_collective), "A5, A6"),
        ComparisonRow("collective candidate groups",
                      f"> {paper.COLLECTIVE_CANDIDATE_THRESHOLD}/h/region",
                      len(report.collective_groups)),
        ComparisonRow("candidate anti-pattern enrichment",
                      "(not reported)",
                      f"{report.candidate_enrichment:.0%} vs "
                      f"{report.population_antipattern_rate:.0%} base"),
    ])
    quality = "\n".join(
        f"  {pattern}: precision {s['precision']:.2f}  recall {s['recall']:.2f}"
        for pattern, s in sorted(report.full_scores.items())
    )
    record_report(
        "STATS",
        f"{table}\n\ndetector quality vs injected ground truth:\n{quality}",
    )
