"""AVOID — §III-D / RQ4: preventative guidelines and periodic review.

Finding 4: "The preventative guidelines could reduce the anti-patterns
and assist in alert diagnosis if they are carefully designed and strictly
obeyed."  The paper reports 88.9 % of OCEs agreeing that strict
compliance would ease diagnosis — here the claim is measured directly by
sweeping the review-compliance knob and recording residual anti-patterns
and mean diagnosis time.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_report
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.governance import GuidelineChecker, PeriodicReview
from repro.oce.engineer import build_panel
from repro.oce.processing import ProcessingModel
from repro.workload import StrategyFactory

_PREVENTABLE = {"A1", "A3", "A4"}  # what static guidelines can catch


@pytest.fixture(scope="module")
def population(topology):
    return StrategyFactory(topology, seed=42).build(400)


def test_avoidance_compliance_sweep(benchmark, topology, population):
    checker = GuidelineChecker(topology)
    model = ProcessingModel(seed=1)
    senior = build_panel()[0]

    def measure(strategies):
        residual = sum(
            1 for s in strategies if s.injected_antipatterns() & _PREVENTABLE
        )
        diagnosis = float(np.mean([
            model.expected_seconds(s, senior) for s in strategies
        ]))
        return residual, diagnosis

    base_residual, base_diagnosis = measure(population)
    review = PeriodicReview(topology, compliance=1.0, seed=1)
    outcome = benchmark(lambda: review.run(population))
    strict_residual, strict_diagnosis = measure(outcome.strategies)

    rows = [
        ComparisonRow("OCEs agreeing strict compliance helps", "16/18 (88.9%)",
                      f"{1 - strict_diagnosis / base_diagnosis:.0%} faster diagnosis"),
        ComparisonRow("guideline aspects", "Target, Timing, Presentation",
                      ", ".join(sorted(checker.review(population).by_aspect()))),
        ComparisonRow("preventable anti-pattern strategies",
                      "(goal: reduced)", f"{base_residual} -> {strict_residual}"),
        ComparisonRow("mean diagnosis time (senior OCE)", "(goal: easier)",
                      f"{base_diagnosis / 60:.1f} -> {strict_diagnosis / 60:.1f} min"),
    ]
    for compliance in (0.25, 0.5, 0.75):
        partial = PeriodicReview(topology, compliance=compliance, seed=1).run(population)
        residual, diagnosis = measure(partial.strategies)
        rows.append(ComparisonRow(
            f"ablation: compliance {compliance:.0%}",
            "'not strictly obeyed in practice'",
            f"{residual} anti-pattern strategies, {diagnosis / 60:.1f} min",
        ))
    record_report("AVOID", render_comparison(
        "preventative guidelines (Finding 4)", rows,
    ))

    assert strict_residual < base_residual * 0.2
    assert strict_diagnosis < base_diagnosis


def test_compliance_monotonicity(topology, population):
    """More compliance -> fewer residual anti-patterns, faster diagnosis."""
    model = ProcessingModel(seed=1)
    senior = build_panel()[0]
    residuals, diagnoses = [], []
    for compliance in (0.0, 0.5, 1.0):
        outcome = PeriodicReview(topology, compliance=compliance, seed=1).run(population)
        residuals.append(sum(
            1 for s in outcome.strategies
            if s.injected_antipatterns() & _PREVENTABLE
        ))
        diagnoses.append(float(np.mean([
            model.expected_seconds(s, senior) for s in outcome.strategies
        ])))
    assert residuals[0] > residuals[1] > residuals[2]
    assert diagnoses[0] > diagnoses[1] > diagnoses[2]
