"""Streaming gateway throughput across execution backends and shard counts.

The gateway's pitch is hardware-speed online mitigation: this bench
replays a storm-heavy trace (three stacked Figure 3 storms — repeats,
cascade, long tail) through every execution backend:

* ``serial`` per-event ingestion — the PR-1 baseline and its ceiling;
* ``serial`` batched ingestion — the amortised hot loop, same core;
* ``thread`` / ``process`` — the pooled backends at 4 workers.

plus a shard-count sweep (1/4/16) on the batched serial path, recording
alerts/sec and p50/p99 per-event latency, and verifies along the way
that every configuration still reconciles exactly with the batch
pipeline.  The headline acceptance check: a pooled backend at 4+ workers
must clear 2x the per-event serial baseline.  Results land in the usual
text report plus ``benchmarks/results/streaming_throughput.json``.

``run_config``/``run_backend_sweep`` are importable — the fast smoke
test under ``tests/`` drives them with a small trace so this script
cannot silently bit-rot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import record_report
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.streaming import AlertGateway
from repro.workload import StormConfig, build_representative_storm

_SHARD_COUNTS = (1, 4, 16)
_N_WORKERS = 4
_RESULTS_DIR = Path(__file__).parent / "results"

#: (label, gateway-backend, per-event?, flush size or None for default)
BACKEND_CONFIGS = (
    ("serial/event", "serial", True, None),
    ("serial/batch", "serial", False, 512),
    ("thread/batch", "thread", False, 512),
    ("process/batch", "process", False, 1024),
)


@pytest.fixture(scope="module")
def storm_heavy(topology):
    """Three consecutive storms merged into one ~8k-alert flood trace."""
    base = build_representative_storm(StormConfig(seed=42), topology)
    trace = base
    # Same seed on later days: identical strategy population (so routing
    # keys agree across storms), three distinct flood windows.
    for day in (11, 12):
        follow_up = build_representative_storm(StormConfig(seed=42, day=day), topology)
        follow_up.strategies = {}  # merge() requires identical strategy objects
        trace = trace.merge(follow_up, label="storm-heavy")
    return trace


def run_config(
    trace,
    topology,
    blocker,
    rulebook,
    backend: str = "serial",
    n_shards: int = 4,
    per_event: bool = False,
    flush_size: int | None = None,
    n_workers: int = _N_WORKERS,
):
    """One gateway run; returns its end-of-run ``GatewayStats``."""
    gateway = AlertGateway(
        topology.graph,
        blocker=blocker,
        rulebook=rulebook,
        n_shards=n_shards,
        backend=backend,
        n_workers=n_workers,
        flush_size=flush_size,
        retain_artifacts=False,
    )
    if per_event:
        gateway.ingest_many(trace.iter_ordered())
    else:
        gateway.ingest_batch(trace.iter_ordered())
    return gateway.drain()


def _measure(stats) -> dict[str, float]:
    return {
        "alerts_per_sec": stats.throughput,
        "latency_p50_us": stats.latency.quantile(0.50) * 1e6,
        "latency_p99_us": stats.latency.quantile(0.99) * 1e6,
        "latency_mean_us": stats.latency.mean * 1e6,
    }


def run_backend_sweep(
    trace, topology, blocker, rulebook, report, n_shards: int = 4,
) -> dict[str, dict[str, float]]:
    """Run every backend config, asserting exact batch parity for each."""
    measurements: dict[str, dict[str, float]] = {}
    for label, backend, per_event, flush_size in BACKEND_CONFIGS:
        stats = run_config(
            trace, topology, blocker, rulebook,
            backend=backend, n_shards=n_shards,
            per_event=per_event, flush_size=flush_size,
        )
        assert stats.reconcile(report) == {}, f"{label} must stay exact"
        measurements[label] = _measure(stats)
    return measurements


def test_streaming_throughput_scaling(benchmark, storm_heavy, topology):
    trace = storm_heavy
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
        trace, blocker=blocker
    )

    by_shards: dict[int, dict[str, float]] = {}
    for n_shards in _SHARD_COUNTS:
        stats = run_config(
            trace, topology, blocker, rulebook,
            n_shards=n_shards, flush_size=512,
        )
        assert stats.reconcile(report) == {}, "gateway must stay exact at scale"
        by_shards[n_shards] = _measure(stats)

    by_backend = run_backend_sweep(trace, topology, blocker, rulebook, report)

    # The acceptance bar: batching + a worker pool must at least double
    # the per-event serial baseline (the serial backend's default
    # configuration), even on a single core — where the gain is
    # amortisation, not parallelism.  The pooled-vs-serial/batch ratio
    # goes into the JSON artefact so a pool that stops parallelising on
    # multi-core machines is still visible.
    baseline = by_backend["serial/event"]["alerts_per_sec"]
    best_pooled = max(
        by_backend["thread/batch"]["alerts_per_sec"],
        by_backend["process/batch"]["alerts_per_sec"],
    )
    assert best_pooled >= 2.0 * baseline, (
        f"pooled backend at {_N_WORKERS} workers reached only "
        f"{best_pooled / baseline:.2f}x the per-event serial baseline"
    )

    # The timed figure-of-record: thread backend, 4 shards, end-to-end.
    stats = benchmark(lambda: run_config(
        trace, topology, blocker, rulebook, backend="thread", flush_size=512,
    ))
    assert stats.input_alerts == len(trace)

    rows = [
        ComparisonRow("online == batch volume accounting", "(exact)", "verified"),
    ]
    for label, m in by_backend.items():
        rows.append(ComparisonRow(
            f"{label:>13}", f"(4 shards, {_N_WORKERS} workers)",
            f"{m['alerts_per_sec']:>9,.0f} alerts/s  "
            f"p50 {m['latency_p50_us']:.1f} us  p99 {m['latency_p99_us']:.1f} us",
        ))
    for n_shards, m in by_shards.items():
        rows.append(ComparisonRow(
            f"{n_shards:>2} shard(s)", "(serial/batch)",
            f"{m['alerts_per_sec']:>9,.0f} alerts/s  "
            f"p50 {m['latency_p50_us']:.1f} us  p99 {m['latency_p99_us']:.1f} us",
        ))
    record_report("streaming_throughput", render_comparison(
        f"Streaming gateway over {len(trace):,} storm alerts", rows,
    ))

    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / "streaming_throughput.json").write_text(json.dumps({
        "trace_alerts": len(trace),
        "batch_clusters": len(report.clusters),
        "backends": by_backend,
        "shards": {str(k): v for k, v in by_shards.items()},
        "speedup_vs_per_event": best_pooled / baseline,
        "speedup_vs_serial_batch":
            best_pooled / by_backend["serial/batch"]["alerts_per_sec"],
    }, indent=2, sort_keys=True))
