"""Streaming gateway throughput across backends, shard counts, and planes.

The gateway's pitch is hardware-speed online mitigation: this bench
replays two storm-heavy traces through the full configuration matrix:

* a single-region trace (three stacked Figure 3 storms — repeats,
  cascade, long tail) through every execution backend and a shard-count
  sweep — the PR-2 axes;
* a **multi-region** trace (four concurrent Figure 3 storms, one per
  region, merged alert-by-alert — the adversarial interleaving for any
  region-keyed reaction) through a **plane-count sweep (1/2/4)** — the
  PR-3 axis.  With one plane the whole R3/R4 chain serialises on a
  single execution context, which is exactly the PR-2 gateway-serial
  architecture; with one plane per region the chain partitions, R4 sees
  contiguous per-region runs instead of interleavings, and on
  multi-core machines the planes run concurrently.

Assertions along the way: every configuration reconciles *exactly* with
the batch pipeline; a pooled backend still clears 2x the per-event
serial baseline (the PR-2 bar); and the plane-parallel path beats the
gateway-serial (one-plane pooled) path on the multi-region trace.
Results land in the usual text report plus
``benchmarks/results/streaming_throughput.json``.

For the record, on the 1-core reference container this PR was built on,
the multi-region trace measured: PR-2 pooled code 392k alerts/s → this
tree, 1 plane ~600k (batched R4 + R1 fast path) → 4 planes 650-780k
(region-run locality), i.e. ≥1.5x the PR-2 pooled baseline before any
parallelism; multi-core machines add concurrent plane execution on top.

``run_config``/``run_backend_sweep``/``run_plane_sweep`` are importable
— the fast smoke test under ``tests/`` drives them with small traces so
this script cannot silently bit-rot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import record_report
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.streaming import AlertGateway
from repro.workload import (
    StormConfig,
    build_multi_region_storm,
    build_representative_storm,
)

_SHARD_COUNTS = (1, 4, 16)
_PLANE_COUNTS = (1, 2, 4)
_N_WORKERS = 4
_RESULTS_DIR = Path(__file__).parent / "results"

#: (label, gateway-backend, per-event?, flush size or None for default)
BACKEND_CONFIGS = (
    ("serial/event", "serial", True, None),
    ("serial/batch", "serial", False, 512),
    ("thread/batch", "thread", False, 512),
    ("process/batch", "process", False, 1024),
)


@pytest.fixture(scope="module")
def storm_heavy(topology):
    """Three consecutive storms merged into one ~8k-alert flood trace."""
    base = build_representative_storm(StormConfig(seed=42), topology)
    trace = base
    # Same seed on later days: identical strategy population (so routing
    # keys agree across storms), three distinct flood windows.
    for day in (11, 12):
        follow_up = build_representative_storm(StormConfig(seed=42, day=day), topology)
        follow_up.strategies = {}  # merge() requires identical strategy objects
        trace = trace.merge(follow_up, label="storm-heavy")
    return trace


@pytest.fixture(scope="module")
def multi_region_storm(topology):
    """Four concurrent single-region storms merged into one ~11k trace."""
    return build_multi_region_storm(StormConfig(seed=42), topology)


def run_config(
    trace,
    topology,
    blocker,
    rulebook,
    backend: str = "serial",
    n_shards: int = 4,
    n_planes: int = 1,
    per_event: bool = False,
    flush_size: int | None = None,
    n_workers: int = _N_WORKERS,
):
    """One gateway run; returns its end-of-run ``GatewayStats``."""
    gateway = AlertGateway(
        topology.graph,
        blocker=blocker,
        rulebook=rulebook,
        n_shards=n_shards,
        n_planes=n_planes,
        backend=backend,
        n_workers=n_workers,
        flush_size=flush_size,
        retain_artifacts=False,
    )
    if per_event:
        gateway.ingest_many(trace.iter_ordered())
    else:
        gateway.ingest_batch(trace.iter_ordered())
    return gateway.drain()


def _measure(stats) -> dict[str, float]:
    return {
        "alerts_per_sec": stats.throughput,
        "latency_p50_us": stats.latency.quantile(0.50) * 1e6,
        "latency_p99_us": stats.latency.quantile(0.99) * 1e6,
        "latency_mean_us": stats.latency.mean * 1e6,
    }


def run_backend_sweep(
    trace, topology, blocker, rulebook, report, n_shards: int = 4,
) -> dict[str, dict[str, float]]:
    """Run every backend config, asserting exact batch parity for each."""
    measurements: dict[str, dict[str, float]] = {}
    for label, backend, per_event, flush_size in BACKEND_CONFIGS:
        stats = run_config(
            trace, topology, blocker, rulebook,
            backend=backend, n_shards=n_shards,
            per_event=per_event, flush_size=flush_size,
        )
        assert stats.reconcile(report) == {}, f"{label} must stay exact"
        measurements[label] = _measure(stats)
    return measurements


def run_scale_probe(
    trace,
    topology,
    blocker,
    rulebook,
    report,
    backend: str = "thread",
    n_planes: int = 4,
    flush_size: int = 512,
    rounds: int = 3,
) -> dict[str, float]:
    """Measure live plane scale-out against the fixed-topology run.

    Replays the trace twice per round: once on ``n_planes`` from the
    start, once starting on one plane and calling
    ``gateway.scale_planes(n_planes)`` at the midpoint — migrating every
    region's whole plane state mid-stream.  Both runs must reconcile
    exactly with the batch pipeline (scale invisibility).  The headline
    comparison times the *second half* of each run — the segment where
    both gateways run ``n_planes`` planes — so the number isolates what
    scaling *to* a topology costs versus having started on it, instead
    of blending in the deliberately-slower one-plane warm-up half.
    Best-of-``rounds`` everywhere; also returns the best observed wall
    cost of the ``scale_planes`` barrier itself and of one ordinary
    flush cycle, the budget the smoke test holds the migration to.
    """
    import time

    alerts = list(trace.iter_ordered())
    # Scale at a flush boundary so the timed barrier cost is the
    # migration itself, not the ordinary processing of a half-full
    # buffer the barrier would have flushed anyway.
    midpoint = max((len(alerts) // 2) // flush_size * flush_size, flush_size)
    second_half = len(alerts) - midpoint
    fixed_best = 0.0
    scaled_best = 0.0
    scale_wall_best = float("inf")
    flush_wall_best = float("inf")
    for _ in range(rounds):
        fixed = AlertGateway(
            topology.graph, blocker=blocker, rulebook=rulebook,
            n_shards=4, n_planes=n_planes, backend=backend,
            n_workers=_N_WORKERS, flush_size=flush_size,
            retain_artifacts=False,
        )
        fixed.ingest_batch(alerts[:midpoint])
        started = time.perf_counter()
        fixed.ingest_batch(alerts[midpoint:])
        fixed_stats = fixed.drain()
        fixed_best = max(
            fixed_best, second_half / (time.perf_counter() - started)
        )
        assert fixed_stats.reconcile(report) == {}, (
            "fixed-topology run must stay exact"
        )

        gateway = AlertGateway(
            topology.graph, blocker=blocker, rulebook=rulebook,
            n_shards=4, n_planes=1, backend=backend, n_workers=_N_WORKERS,
            flush_size=flush_size, retain_artifacts=False,
        )
        gateway.ingest_batch(alerts[:midpoint])
        started = time.perf_counter()
        gateway.scale_planes(n_planes)
        scale_wall = time.perf_counter() - started
        # One full flush cycle, timed the same way the scale was.
        started = time.perf_counter()
        gateway.ingest_batch(alerts[midpoint:midpoint + flush_size])
        flush_wall = time.perf_counter() - started
        started = time.perf_counter() - flush_wall  # fold the cycle back in
        gateway.ingest_batch(alerts[midpoint + flush_size:])
        scaled_stats = gateway.drain()
        scaled_best = max(
            scaled_best, second_half / (time.perf_counter() - started)
        )
        assert scaled_stats.reconcile(report) == {}, "scaled run must stay exact"
        scale_wall_best = min(scale_wall_best, scale_wall)
        flush_wall_best = min(flush_wall_best, flush_wall)
    return {
        "fixed_alerts_per_sec": fixed_best,
        "scaled_alerts_per_sec": scaled_best,
        "scaled_vs_fixed": scaled_best / fixed_best if fixed_best else 0.0,
        "scale_wall_s": scale_wall_best,
        "flush_wall_s": flush_wall_best,
    }


def run_plane_sweep(
    trace, topology, blocker, rulebook, report,
    plane_counts=_PLANE_COUNTS, n_shards: int = 4, flush_size: int = 512,
) -> dict[str, dict[str, float]]:
    """Sweep plane counts on serial and pooled execution, asserting parity.

    Returns measurements keyed ``{backend}/p{planes}``; ``thread/p1`` is
    the PR-2 gateway-serial equivalent (R3/R4 on one execution context).
    """
    measurements: dict[str, dict[str, float]] = {}
    for backend in ("serial", "thread"):
        for n_planes in plane_counts:
            stats = run_config(
                trace, topology, blocker, rulebook,
                backend=backend, n_shards=n_shards, n_planes=n_planes,
                flush_size=flush_size,
            )
            label = f"{backend}/p{n_planes}"
            assert stats.reconcile(report) == {}, f"{label} must stay exact"
            measurements[label] = _measure(stats)
    return measurements


def test_streaming_throughput_scaling(
    benchmark, storm_heavy, multi_region_storm, topology,
):
    trace = storm_heavy
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
        trace, blocker=blocker
    )

    by_shards: dict[int, dict[str, float]] = {}
    for n_shards in _SHARD_COUNTS:
        stats = run_config(
            trace, topology, blocker, rulebook,
            n_shards=n_shards, flush_size=512,
        )
        assert stats.reconcile(report) == {}, "gateway must stay exact at scale"
        by_shards[n_shards] = _measure(stats)

    by_backend = run_backend_sweep(trace, topology, blocker, rulebook, report)

    # The PR-2 acceptance bar, still enforced: batching + a worker pool
    # must at least double the per-event serial baseline, even on a
    # single core — where the gain is amortisation, not parallelism.
    baseline = by_backend["serial/event"]["alerts_per_sec"]
    best_pooled = max(
        by_backend["thread/batch"]["alerts_per_sec"],
        by_backend["process/batch"]["alerts_per_sec"],
    )
    assert best_pooled >= 2.0 * baseline, (
        f"pooled backend at {_N_WORKERS} workers reached only "
        f"{best_pooled / baseline:.2f}x the per-event serial baseline"
    )

    # The PR-3 axis: plane count on the multi-region flood.
    mr_trace = multi_region_storm
    mr_rulebook = rulebook_from_ground_truth(mr_trace, coverage=0.6)
    mr_blocker = MitigationPipeline.derive_blocker(mr_trace)
    mr_report = MitigationPipeline(topology.graph, rulebook=mr_rulebook).run(
        mr_trace, blocker=mr_blocker
    )
    by_planes = run_plane_sweep(
        mr_trace, topology, mr_blocker, mr_rulebook, mr_report,
    )
    # Plane-parallel R3/R4 must beat the gateway-serial architecture even
    # with zero extra cores: per-region run locality alone buys it.  The
    # head-to-head takes best-of-3 per config — noise only ever slows a
    # run, so best-of approximates true speed and keeps the single-digit
    # locality margin assertable on shared runners.
    def _best_of(backend: str, n_planes: int, rounds: int = 3) -> float:
        return max(
            run_config(
                mr_trace, topology, mr_blocker, mr_rulebook,
                backend=backend, n_planes=n_planes, flush_size=512,
            ).throughput
            for _ in range(rounds)
        )

    gateway_serial = _best_of("thread", 1)
    best_planes = max(_best_of("serial", 4), _best_of("thread", 4))
    assert best_planes > gateway_serial, (
        f"4-plane execution reached only {best_planes / gateway_serial:.2f}x "
        f"the one-plane (PR-2 gateway-serial) path on the multi-region trace"
    )

    # Live plane scale-out: a gateway that starts on one plane and
    # scales to 4 mid-stream (migrating every region's plane state) must
    # land within 10% of the planes=4-from-the-start throughput — the
    # elasticity acceptance bar.  Best-of-3 on both sides: noise only
    # ever slows a run down.
    scale_probe = run_scale_probe(
        mr_trace, topology, mr_blocker, mr_rulebook, mr_report,
    )
    assert scale_probe["scaled_vs_fixed"] >= 0.9, (
        f"planes=4-after-scale reached only "
        f"{scale_probe['scaled_vs_fixed']:.2f}x the planes=4-from-start "
        f"throughput on the multi-region trace"
    )
    locality = (
        by_planes["serial/p4"]["alerts_per_sec"]
        / by_planes["serial/p1"]["alerts_per_sec"]
    )

    # The timed figure-of-record: thread backend, 4 planes, end-to-end.
    stats = benchmark(lambda: run_config(
        mr_trace, topology, mr_blocker, mr_rulebook,
        backend="thread", n_planes=4, flush_size=512,
    ))
    assert stats.input_alerts == len(mr_trace)

    rows = [
        ComparisonRow("online == batch volume accounting", "(exact)", "verified"),
    ]
    for label, m in by_backend.items():
        rows.append(ComparisonRow(
            f"{label:>13}", f"(4 shards, {_N_WORKERS} workers)",
            f"{m['alerts_per_sec']:>9,.0f} alerts/s  "
            f"p50 {m['latency_p50_us']:.1f} us  p99 {m['latency_p99_us']:.1f} us",
        ))
    for n_shards, m in by_shards.items():
        rows.append(ComparisonRow(
            f"{n_shards:>2} shard(s)", "(serial/batch)",
            f"{m['alerts_per_sec']:>9,.0f} alerts/s  "
            f"p50 {m['latency_p50_us']:.1f} us  p99 {m['latency_p99_us']:.1f} us",
        ))
    for label, m in by_planes.items():
        rows.append(ComparisonRow(
            f"{label:>10}", "(multi-region storm)",
            f"{m['alerts_per_sec']:>9,.0f} alerts/s  "
            f"p50 {m['latency_p50_us']:.1f} us  p99 {m['latency_p99_us']:.1f} us",
        ))
    rows.append(ComparisonRow(
        "scale 1->4 mid-stream", "(vs planes=4 fixed)",
        f"{scale_probe['scaled_vs_fixed']:.2f}x throughput  "
        f"scale {scale_probe['scale_wall_s'] * 1e3:.2f} ms  "
        f"(one flush {scale_probe['flush_wall_s'] * 1e3:.2f} ms)",
    ))
    record_report("streaming_throughput", render_comparison(
        f"Streaming gateway over {len(trace):,} storm alerts "
        f"(+{len(mr_trace):,} multi-region)", rows,
    ))

    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / "streaming_throughput.json").write_text(json.dumps({
        "trace_alerts": len(trace),
        "multi_region_alerts": len(mr_trace),
        "batch_clusters": len(report.clusters),
        "backends": by_backend,
        "shards": {str(k): v for k, v in by_shards.items()},
        "planes": by_planes,
        "speedup_vs_per_event": best_pooled / baseline,
        "speedup_vs_serial_batch":
            best_pooled / by_backend["serial/batch"]["alerts_per_sec"],
        "plane_speedup_vs_gateway_serial": best_planes / gateway_serial,
        "plane_locality_speedup": locality,
        "scale_probe": scale_probe,
    }, indent=2, sort_keys=True))
