"""Streaming gateway throughput and per-event latency across shard counts.

The gateway's pitch is hardware-speed online mitigation: this bench
replays a storm-heavy trace (three stacked Figure 3 storms — repeats,
cascade, long tail) through the gateway at 1, 4, and 16 shards,
recording alerts/sec and p50/p99 per-event latency, and verifies along
the way that every configuration still reconciles exactly with the
batch pipeline.  Results land in the usual text report plus
``benchmarks/results/streaming_throughput.json`` for machines.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.conftest import record_report
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.streaming import AlertGateway
from repro.workload import StormConfig, build_representative_storm

_SHARD_COUNTS = (1, 4, 16)
_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def storm_heavy(topology):
    """Three consecutive storms merged into one ~8k-alert flood trace."""
    base = build_representative_storm(StormConfig(seed=42), topology)
    trace = base
    # Same seed on later days: identical strategy population (so routing
    # keys agree across storms), three distinct flood windows.
    for day in (11, 12):
        follow_up = build_representative_storm(StormConfig(seed=42, day=day), topology)
        follow_up.strategies = {}  # merge() requires identical strategy objects
        trace = trace.merge(follow_up, label="storm-heavy")
    return trace


def _run_gateway(trace, topology, blocker, rulebook, n_shards):
    gateway = AlertGateway(
        topology.graph,
        blocker=blocker,
        rulebook=rulebook,
        n_shards=n_shards,
        retain_artifacts=False,
    )
    gateway.ingest_many(trace.iter_ordered())
    return gateway.drain()


def test_streaming_throughput_scaling(benchmark, storm_heavy, topology):
    trace = storm_heavy
    rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
    blocker = MitigationPipeline.derive_blocker(trace)
    report = MitigationPipeline(topology.graph, rulebook=rulebook).run(
        trace, blocker=blocker
    )

    measurements: dict[int, dict[str, float]] = {}
    for n_shards in _SHARD_COUNTS:
        stats = _run_gateway(trace, topology, blocker, rulebook, n_shards)
        assert stats.reconcile(report) == {}, "gateway must stay exact at scale"
        measurements[n_shards] = {
            "alerts_per_sec": stats.throughput,
            "latency_p50_us": stats.latency.quantile(0.50) * 1e6,
            "latency_p99_us": stats.latency.quantile(0.99) * 1e6,
            "latency_mean_us": stats.latency.mean * 1e6,
        }

    # The timed figure-of-record: the 4-shard configuration end-to-end.
    stats = benchmark(
        lambda: _run_gateway(trace, topology, blocker, rulebook, 4)
    )
    assert stats.input_alerts == len(trace)

    rows = [
        ComparisonRow("online == batch volume accounting", "(exact)", "verified"),
    ]
    for n_shards, m in measurements.items():
        rows.append(ComparisonRow(
            f"{n_shards:>2} shard(s)", "(streaming, new)",
            f"{m['alerts_per_sec']:>9,.0f} alerts/s  "
            f"p50 {m['latency_p50_us']:.1f} us  p99 {m['latency_p99_us']:.1f} us",
        ))
    record_report("streaming_throughput", render_comparison(
        f"Streaming gateway over {len(trace):,} storm alerts", rows,
    ))

    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / "streaming_throughput.json").write_text(json.dumps({
        "trace_alerts": len(trace),
        "batch_clusters": len(report.clusters),
        "shards": {str(k): v for k, v in measurements.items()},
    }, indent=2, sort_keys=True))
