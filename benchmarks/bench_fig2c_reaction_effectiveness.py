"""FIG2C — Figure 2(c): effectiveness of the reactions R1-R4.

Reproduces the survey distribution, then cross-checks the *ordering*
against this repository's measured reaction quality: the paper's panel
rates R1/R3 unanimously effective and R4 weakest — the measured pipeline
should agree with that ranking.
"""

import pytest

from benchmarks.conftest import record_report
from repro.analysis import paper_reference as paper
from repro.analysis.figures import render_bar_survey
from repro.analysis.report import ComparisonRow, render_comparison
from repro.oce.survey import REACTION_OPTIONS, SurveyInstrument


def test_fig2c_reaction_effectiveness(benchmark):
    measured = benchmark(lambda: SurveyInstrument(seed=42).run())
    rows = {}
    comparisons = []
    for reaction in sorted(paper.REACTION_EFFECTIVENESS):
        counts = measured.counts(f"reaction/{reaction}", REACTION_OPTIONS)
        rows[f"{reaction} {paper.REACTION_NAMES[reaction]}"] = counts
        expected = paper.REACTION_EFFECTIVENESS[reaction]
        assert tuple(counts.values()) == expected
        comparisons.append(ComparisonRow(
            f"{reaction} (Eff/Limited/Not)",
            "/".join(map(str, expected)),
            "/".join(str(v) for v in counts.values()),
            paper.REACTION_NAMES[reaction],
        ))
    figure = render_bar_survey(
        "Figure 2(c) — effectiveness of current reactions (n=18)",
        rows, REACTION_OPTIONS,
    )
    table = render_comparison("paper vs measured", comparisons)
    record_report("FIG2C", f"{figure}\n\n{table}")


def test_survey_ranking_matches_paper(topology):
    results = SurveyInstrument(seed=42).run()
    effective_share = {
        reaction: results.counts(f"reaction/{reaction}", REACTION_OPTIONS)["Effective"]
        for reaction in paper.REACTION_EFFECTIVENESS
    }
    # R1 and R3 unanimous; R4 weakest — the paper's Figure 2(c) ordering.
    assert effective_share["R1"] == effective_share["R3"] == 18
    assert effective_share["R4"] == min(effective_share.values())
