"""Serving durability cost: checkpoint write/restore latency + overhead.

The serving layer's pitch is durability that is close to free at steady
state: write-ahead journalling plus barrier-aligned snapshots must not
meaningfully tax the gateway's throughput, and recovery (newest
snapshot + journal-tail replay) must land in well under a second for
realistic checkpoint cadences.  This bench measures, on the
multi-region storm trace (four concurrent Figure 3 storms — the
adversarial interleaving for any region-keyed reaction):

* **checkpoint-free throughput** — the plain gateway, no serving layer;
* **checkpointed throughput** — the same trace through a real
  :class:`~repro.serving.service.AlertGatewayService` (lazy-tier
  journal, snapshots every ``checkpoint_every`` events), asserted to
  hold >= 0.85x the checkpoint-free rate;
* **checkpoint write latency** — mean/max wall cost of one snapshot
  (capture + encode + fsync + rename), from the service's own runtime
  metrics;
* **restore latency** — cold :meth:`start` on the populated service
  directory, including journal-tail replay.

Every run is also held to exactness: the drained accounting of the
checkpointed run must equal the checkpoint-free run's bit for bit.

``run_checkpoint_probe`` is importable — the fast smoke test under
``tests/serving/`` drives it with a small trace so this script cannot
silently bit-rot.  Results land in
``benchmarks/results/serving_checkpoint.json`` *and* in the standing
repo-root artifact ``BENCH_streaming.json`` (the per-PR performance
trajectory).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import pytest

from benchmarks.conftest import record_report
from repro.core.mitigation import MitigationPipeline
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import rulebook_from_ground_truth
from repro.serving import AlertGatewayService
from repro.streaming import AlertGateway
from repro.workload import StormConfig, build_multi_region_storm

_RESULTS_DIR = Path(__file__).parent / "results"
_REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_ARTIFACT = _REPO_ROOT / "BENCH_streaming.json"

#: The steady-state durability bar: checkpointed throughput must stay
#: within 15 % of checkpoint-free on the multi-region storm trace.
OVERHEAD_FLOOR = 0.85


def run_checkpoint_probe(
    trace,
    topology,
    blocker,
    rulebook,
    backend: str = "serial",
    n_planes: int = 4,
    flush_size: int = 512,
    checkpoint_every: int = 32768,
    rounds: int = 5,
    waves: int = 3,
) -> dict[str, float]:
    """Measure durability overhead and checkpoint/restore latency.

    Apples to apples by construction: both runs ingest the identical
    chunk schedule and the timed window is the steady-state ingest path
    for both (the drain — end-of-stream, not steady state — happens
    outside it).  The two pipelines are *interleaved per chunk* inside
    one shared window — chunk N goes through the checkpoint-free
    gateway, then immediately through the checkpointed service — so a
    noisy-neighbour phase on a shared box (which lasts tens of
    milliseconds, longer than a whole run) taxes both sides almost
    equally instead of landing on whichever run it overlapped.  The
    reported overhead ratio is the median per-round ratio of the paired
    sums: the median discards the round where a scheduler stall still
    landed inside a single chunk of one side.  The checkpointed run's
    drained accounting is asserted equal to the checkpoint-free run's.

    The measured stream is the storm trace played as *consecutive
    time-shifted waves* (fresh alert ids per wave): snapshot cost is
    fixed per tick, so the steady-state overhead fraction is governed
    by the cadence-to-throughput ratio and the stream must be long
    enough for one full cadence to elapse inside the window.  Even so
    the default cadence here — one snapshot per 32k events, ~60 ms of
    gateway work — checkpoints orders of magnitude more often than
    production stream processors do.
    """
    first = list(trace.iter_ordered())
    stride = first[-1].occurred_at - first[0].occurred_at + 60.0
    alerts = list(first)
    for wave in range(1, waves):
        shift = stride * wave
        alerts += [
            replace(
                alert,
                alert_id=f"{alert.alert_id}/w{wave + 1}",
                fault_id=(
                    f"{alert.fault_id}/w{wave + 1}"
                    if alert.fault_id is not None else None
                ),
                occurred_at=alert.occurred_at + shift,
                cleared_at=(
                    alert.cleared_at + shift
                    if alert.cleared_at is not None else None
                ),
            )
            for alert in first
        ]
    chunks = [
        alerts[cursor:cursor + flush_size]
        for cursor in range(0, len(alerts), flush_size)
    ]

    def counts(stats):
        return (stats.input_alerts, stats.blocked_alerts,
                stats.aggregates_emitted, stats.clusters_finalized,
                stats.storm_episodes, stats.emerging_flags)

    free_best = 0.0
    checkpointed_best = 0.0
    ratios: list[float] = []
    free_counts = None
    write_summary: dict[str, float] = {}
    checkpoints = 0
    restore_wall = float("inf")
    perf = time.perf_counter
    data_dir = Path(tempfile.mkdtemp(prefix="bench-serving-"))
    try:
        for round_index in range(rounds):
            gateway = AlertGateway(
                topology.graph, blocker=AlertBlocker(blocker.rules),
                rulebook=rulebook, n_shards=4, n_planes=n_planes,
                backend=backend, flush_size=flush_size,
                retain_artifacts=False,
            )
            round_dir = data_dir / f"round-{round_index}"
            service = AlertGatewayService(
                topology.graph, round_dir, blocker=AlertBlocker(blocker.rules),
                rulebook=rulebook, checkpoint_every=checkpoint_every,
                n_shards=4, n_planes=n_planes, backend=backend,
                flush_size=flush_size, retain_artifacts=False,
            )
            service.start()
            free_elapsed = 0.0
            elapsed = 0.0
            for chunk in chunks:
                t0 = perf()
                gateway.ingest_batch(chunk)
                t1 = perf()
                service.ingest(chunk)
                free_elapsed += t1 - t0
                elapsed += perf() - t1
            free_counts = counts(gateway.drain())
            free_best = max(free_best, len(alerts) / free_elapsed)
            checkpointed_best = max(checkpointed_best, len(alerts) / elapsed)
            ratios.append(free_elapsed / elapsed)
            snapshot = service.metrics.snapshot()
            timer = snapshot["timers"].get("checkpoint_write_seconds")
            if timer and (not write_summary
                          or timer["mean"] < write_summary["mean"]):
                write_summary = dict(timer)
            checkpoints = max(checkpoints, service.checkpoints_written)
            # Stop WITHOUT draining, so the directory stays resumable
            # for the cold-restore measurement.
            service.stop()

            revived = AlertGatewayService(
                topology.graph, round_dir, blocker=AlertBlocker(blocker.rules),
                rulebook=rulebook, checkpoint_every=checkpoint_every,
                n_shards=4, n_planes=n_planes, backend=backend,
                flush_size=flush_size, retain_artifacts=False,
            )
            started = time.perf_counter()
            outcome = revived.start()
            restore_wall = min(restore_wall, time.perf_counter() - started)
            assert outcome == "restored"
            assert revived.input_alerts == len(alerts)
            checkpointed_counts = counts(revived.gateway.drain())
            assert checkpointed_counts == free_counts, (
                "checkpointed run must stay exact: "
                f"{checkpointed_counts} != {free_counts}"
            )
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    assert checkpoints >= 1, "probe must actually write checkpoints"
    ratios.sort()
    return {
        "alerts": float(len(alerts)),
        "free_alerts_per_sec": free_best,
        "checkpointed_alerts_per_sec": checkpointed_best,
        "overhead_ratio": ratios[len(ratios) // 2],
        "checkpoints_written": float(checkpoints),
        "checkpoint_write_ms_mean": write_summary.get("mean", 0.0) * 1e3,
        "checkpoint_write_ms_max": write_summary.get("max", 0.0) * 1e3,
        "restore_ms": restore_wall * 1e3,
    }


def write_bench_artifact(measurements: dict[str, float], pr: int = 6,
                         path: Path = BENCH_ARTIFACT) -> dict:
    """Update the standing repo-root artifact with this run's numbers.

    The artifact keeps one ``current`` block (overwritten each run) and
    an append-only per-PR ``trajectory`` (one entry per PR, newest
    measurement wins), so review can see the performance history at a
    glance without digging through CI logs.
    """
    payload = {"schema": 1, "trajectory": []}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            pass
    entry = {
        "pr": pr,
        "throughput_alerts_per_sec": round(
            measurements["checkpointed_alerts_per_sec"]
        ),
        "checkpoint_write_ms_mean": round(
            measurements["checkpoint_write_ms_mean"], 3,
        ),
        "restore_ms": round(measurements["restore_ms"], 3),
        "overhead_ratio": round(measurements["overhead_ratio"], 4),
    }
    trajectory = [row for row in payload.get("trajectory", [])
                  if row.get("pr") != pr]
    trajectory.append(entry)
    trajectory.sort(key=lambda row: row["pr"])
    payload.update({
        "schema": 1,
        "trace": "multi-region storm (4 concurrent Figure 3 storms), "
                 "three consecutive waves",
        "current": {key: round(value, 4) for key, value in measurements.items()},
        "trajectory": trajectory,
    })
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.fixture(scope="module")
def multi_region_storm(topology):
    """Four concurrent single-region storms merged into one ~11k trace."""
    return build_multi_region_storm(StormConfig(seed=42), topology)


class TestServingCheckpointBench:
    def test_checkpoint_overhead_and_latency(self, multi_region_storm, topology):
        trace = multi_region_storm
        rulebook = rulebook_from_ground_truth(trace, coverage=0.6)
        blocker = MitigationPipeline.derive_blocker(trace)
        measurements = run_checkpoint_probe(
            trace, topology, blocker, rulebook,
        )
        lines = [
            f"trace: multi-region storm, {measurements['alerts']:,.0f} alerts",
            f"checkpoint-free:      {measurements['free_alerts_per_sec']:>12,.0f} alerts/s",
            f"checkpointed:         {measurements['checkpointed_alerts_per_sec']:>12,.0f} alerts/s "
            f"({measurements['overhead_ratio']:.1%} of checkpoint-free, "
            f"{measurements['checkpoints_written']:.0f} snapshots)",
            f"checkpoint write:     {measurements['checkpoint_write_ms_mean']:>9.2f} ms mean "
            f"/ {measurements['checkpoint_write_ms_max']:.2f} ms max",
            f"cold restore+replay:  {measurements['restore_ms']:>9.2f} ms",
        ]
        record_report("serving_checkpoint", "\n".join(lines))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "serving_checkpoint.json").write_text(
            json.dumps(measurements, indent=2, sort_keys=True) + "\n"
        )
        write_bench_artifact(measurements)
        assert measurements["overhead_ratio"] >= OVERHEAD_FLOOR, (
            f"durable serving costs too much: checkpointed throughput is "
            f"{measurements['overhead_ratio']:.1%} of checkpoint-free "
            f"(floor {OVERHEAD_FLOOR:.0%})"
        )
