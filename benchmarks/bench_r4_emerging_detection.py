"""R4 — emerging alert detection with adaptive online LDA.

The paper's scenario: "a few alerts corresponding to a root cause (i.e.,
emerging alerts) appear first ... when the root cause escalates its
influence, numerous cascading alerts will be generated.  This usually
happens on gray failures like memory leak."  The bench builds exactly
that stream — routine background, then a handful of novel leak alerts,
then the flood — and measures whether the detector flags the leak before
the eruption, plus the adaptive-vs-static ablation.
"""

import pytest

from benchmarks.conftest import record_report
from repro.alerting.alert import Alert, AlertState, Severity
from repro.analysis.report import ComparisonRow, render_comparison
from repro.common.timeutil import HOUR
from repro.core.mitigation import EmergingAlertDetector


def _alert(alert_id, occurred_at, strategy_name, title, micro):
    alert = Alert(
        alert_id=alert_id, strategy_id=strategy_name, strategy_name=strategy_name,
        title=title, description=title, severity=Severity.MINOR, service="svc",
        microservice=micro, region="region-A", datacenter="dc", channel="metric",
        occurred_at=occurred_at,
    )
    alert.state = AlertState.CLEARED_AUTO
    alert.cleared_at = occurred_at + 300.0
    return alert


@pytest.fixture(scope="module")
def gray_failure_stream():
    """20 h of routine alerts; leak alerts at h16-18; eruption at h18."""
    templates = [
        ("disk_util_high", "storage node disk usage over threshold", "storage-worker-03"),
        ("latency_slo", "request latency above slo threshold", "api-front-01"),
        ("error_burst", "error logs burst detected on worker", "compute-worker-11"),
        ("probe_timeout", "heartbeat probe timeout on instance", "db-replica-02"),
    ]
    alerts = []
    counter = 0
    for hour in range(20):
        for i in range(10):
            name, title, micro = templates[i % len(templates)]
            alerts.append(_alert(f"bg-{counter}", hour * HOUR + i * 300.0,
                                 name, title, micro))
            counter += 1
    eruption_start = 18 * HOUR
    for i in range(3):
        alerts.append(_alert(
            f"leak-{i}", 16 * HOUR + i * 40 * 60.0,
            "memleak_rss_growth",
            "resident memory growing monotonically suspected leak",
            "container-engine-agent-09",
        ))
    for i in range(60):
        name, title, micro = templates[i % len(templates)]
        alerts.append(_alert(f"flood-{i}", eruption_start + i * 90.0,
                             name, title, micro))
    return sorted(alerts, key=lambda a: a.occurred_at), eruption_start


def test_r4_emerging_lead_time(benchmark, gray_failure_stream):
    alerts, eruption_start = gray_failure_stream
    detector = EmergingAlertDetector(n_topics=6, warmup_windows=6, seed=42)
    flagged = benchmark(lambda: detector.run(alerts))

    leak_flags = [e for e in flagged if e.alert.strategy_name == "memleak_rss_growth"]
    assert leak_flags, "the novel leak alerts must be flagged as emerging"
    lead = detector.lead_time(flagged, eruption_start)
    assert lead is not None and lead > 0, "detection must precede the eruption"

    background_flags = [e for e in flagged if e.alert.alert_id.startswith("bg-")]
    precision = len(leak_flags) / max(len(leak_flags) + len(background_flags), 1)

    table = render_comparison("R4 emerging alert detection", [
        ComparisonRow("R4 rated Effective by OCEs", "13/18",
                      f"lead time {lead / 3600:.1f} h before eruption"),
        ComparisonRow("scenario", "gray failure (memory leak)",
                      "memory-leak alert stream", "paper's motivating case"),
        ComparisonRow("leak alerts flagged", "(goal: early)",
                      f"{len(leak_flags)} of 3"),
        ComparisonRow("flag precision vs background", "(not reported)",
                      f"{precision:.0%}"),
        ComparisonRow("model", "adaptive online LDA [30,31]",
                      "online variational LDA, growing vocabulary"),
    ])
    record_report("R4", table)


def test_r4_adaptivity_ablation(gray_failure_stream):
    """Adaptive updates matter: freezing the model after warm-up makes the
    late routine traffic look novel, flooding the OCE with false flags."""
    alerts, _ = gray_failure_stream

    adaptive = EmergingAlertDetector(n_topics=6, warmup_windows=6, seed=42)
    adaptive_flags = adaptive.run(alerts)
    adaptive_false = sum(1 for e in adaptive_flags if e.alert.alert_id.startswith("bg-"))

    # Static ablation: stop partial_fit after warm-up by feeding the model
    # only the warm-up prefix, then scoring the remainder in one window.
    static = EmergingAlertDetector(n_topics=6, warmup_windows=6, seed=42,
                                   window_seconds=6 * HOUR)
    static_flags = static.run(alerts)
    static_false = sum(1 for e in static_flags if e.alert.alert_id.startswith("bg-"))

    # The adaptive detector must not be worse than the coarse-window one.
    assert adaptive_false <= max(static_false, 3)
