"""FIG2A — Figure 2(a): impact of anti-patterns A1-A6 on alert diagnosis.

Regenerates the 18-OCE survey through the calibrated instrument and
compares every (anti-pattern, answer) count with the paper's published
distribution, including the in-text agreement percentages.
"""

import pytest

from benchmarks.conftest import record_report
from repro.analysis import paper_reference as paper
from repro.analysis.figures import render_bar_survey
from repro.analysis.report import ComparisonRow, render_comparison
from repro.oce.survey import IMPACT_OPTIONS, SurveyInstrument


@pytest.fixture(scope="module")
def results():
    return SurveyInstrument(seed=42).run()


def test_fig2a_impact_distributions(benchmark, results):
    measured = benchmark(lambda: SurveyInstrument(seed=42).run())
    rows = {}
    comparisons = []
    for pattern in sorted(paper.ANTIPATTERN_IMPACT):
        counts = measured.counts(f"impact/{pattern}", IMPACT_OPTIONS)
        rows[pattern] = counts
        expected = paper.ANTIPATTERN_IMPACT[pattern]
        assert tuple(counts.values()) == expected
        comparisons.append(ComparisonRow(
            f"{pattern} (High/Low/None)",
            "/".join(map(str, expected)),
            "/".join(str(v) for v in counts.values()),
            paper.ANTIPATTERN_NAMES[pattern],
        ))
    figure = render_bar_survey(
        "Figure 2(a) — impact of anti-patterns on alert diagnosis (n=18)",
        rows, IMPACT_OPTIONS,
    )
    table = render_comparison("paper vs measured", comparisons)
    record_report("FIG2A", f"{figure}\n\n{table}")


def test_fig2a_intext_percentages(results):
    # "61.1% think the impact [of A1] is high"
    assert results.agreement_fraction("impact/A1", ("High",)) == pytest.approx(11 / 18)
    # "88.9% of OCEs agree with the impact of misleading severity"
    assert results.agreement_fraction("impact/A2", ("High", "Low")) == pytest.approx(16 / 18)
    # "72.2% of OCEs agree that the impact of [A3] is high"
    assert results.agreement_fraction("impact/A3", ("High",)) == pytest.approx(13 / 18)
    # "most OCEs (94.4%) think the impact [of A4] exists"
    assert results.agreement_fraction("impact/A4", ("High", "Low")) == pytest.approx(17 / 18)
    # "Most OCEs (94.4%) agree with the impact of repeating alerts"
    assert results.agreement_fraction("impact/A5", ("High", "Low")) == pytest.approx(17 / 18)
    # "All interviewed OCEs agree with the impact of cascading alerts"
    assert results.agreement_fraction("impact/A6", ("High", "Low")) == 1.0
