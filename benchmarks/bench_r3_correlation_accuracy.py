"""R3 — ablation: alert-correlation root-cause accuracy.

The paper describes two exogenous evidence sources (strategy-dependency
rules and service topology) and claims OCEs "can quickly pinpoint the
root cause of a large number of alerts by following the topological
correlation".  This bench measures root-inference accuracy per storm
against the injected ground truth, ablated over the evidence sources.
"""

import pytest

from benchmarks.conftest import record_report
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.antipatterns import detect_storms
from repro.core.mitigation import CorrelationAnalyzer, DependencyRuleBook
from repro.core.mitigation.pipeline import evaluate_root_inference


def _storm_clusters(trace, analyzer):
    clusters = []
    for storm in detect_storms(trace):
        alerts = [a for a in trace.alerts_in(storm.window) if a.region == storm.region]
        clusters.extend(analyzer.correlate(alerts))
    return clusters


@pytest.fixture(scope="module")
def variants(trace, topology, rulebook):
    return {
        "rules only": CorrelationAnalyzer(
            topology.graph, rulebook=rulebook, use_topology=False,
        ),
        "topology only": CorrelationAnalyzer(
            topology.graph, rulebook=DependencyRuleBook(),
        ),
        "rules + topology": CorrelationAnalyzer(topology.graph, rulebook=rulebook),
    }


def test_r3_correlation_accuracy(benchmark, trace, topology, variants):
    full = variants["rules + topology"]
    clusters = benchmark(lambda: _storm_clusters(trace, full))
    scores = evaluate_root_inference(clusters, trace, min_cluster_size=10,
                                     service_of=topology.service_of)
    assert scores["clusters_evaluated"] > 0
    assert scores["achievable_hit_rate"] >= 0.5
    assert scores["service_hit_rate"] >= 0.5

    rows = [
        ComparisonRow("R3 rated Effective by OCEs", "18/18",
                      f"{scores['hit_rate']:.0%} exact-root hit rate"),
        ComparisonRow("achievable hit rate (root alerted)", "(not reported)",
                      f"{scores['achievable_hit_rate']:.0%}"),
        ComparisonRow("service-level hit rate", "(paging granularity)",
                      f"{scores['service_hit_rate']:.0%}"),
        ComparisonRow("clusters evaluated", "(not reported)",
                      int(scores["clusters_evaluated"])),
    ]
    for name, analyzer in variants.items():
        if name == "rules + topology":
            continue
        ablated = evaluate_root_inference(
            _storm_clusters(trace, analyzer), trace, min_cluster_size=10,
            service_of=topology.service_of,
        )
        rows.append(ComparisonRow(
            f"ablation: {name}", "(design choice)",
            f"service hit {ablated['service_hit_rate']:.0%} on "
            f"{ablated['clusters_evaluated']:.0f} clusters",
        ))
    record_report("R3", render_comparison("R3 alert correlation analysis", rows))


def test_rules_alone_fragment_clusters(trace, topology, variants):
    """The paper's motivation for R4: rule books have coverage gaps.

    With only 60 % of the true strategy dependencies codified, the
    correlation fragments each storm into more, smaller clusters than the
    topology-backed analyzer does — the uncovered links are exactly the
    implicit dependencies R4 is built to catch.
    """
    combined_clusters = _storm_clusters(trace, variants["rules + topology"])
    rules_clusters = _storm_clusters(trace, variants["rules only"])
    assert len(rules_clusters) > len(combined_clusters)
    mean_combined = sum(c.size for c in combined_clusters) / len(combined_clusters)
    mean_rules = sum(c.size for c in rules_clusters) / len(rules_clusters)
    assert mean_rules < mean_combined
