"""Perf-regression guard over the standing ``BENCH_streaming.json``.

The benches *measure* and refuse to report numbers for configurations
that break parity; this script is the other half of the contract — it
fails CI when the **recorded** ratios in the repo-root artifact drop
below the floors the benches enforce locally.  A PR that quietly
regresses checkpoint overhead or the ring hand-off and re-records the
artifact now trips here, in the diff that caused it, instead of in the
next person's bench run.

Floors are imported from the benches that own them, so there is exactly
one place each number lives:

* ``current.overhead_ratio`` — checkpointed throughput as a fraction of
  checkpoint-free (``bench_serving_checkpoint.OVERHEAD_FLOOR``);
* ``ring_transport.ring_vs_pipe_handoff_x`` — the zero-copy ring's
  hand-off advantage at the largest swept batch
  (``bench_ingress_lanes.HANDOFF_FLOOR``; holds on one core);
* ``ingress_lanes.scaling_x`` — 4-lane scaling over single-lane
  (``bench_ingress_lanes.SCALING_FLOOR``), gated on the ``cores`` the
  row was *recorded* on, because lane scaling needs real cores under
  the lane threads;
* ``worker_recovery.recovery_overhead_ratio`` — throughput retained
  with fleet recovery (journal + snapshot cadence) on
  (``bench_worker_recovery.RECOVERY_OVERHEAD_FLOOR``);
* ``online_detection.detection_overhead_ratio`` — throughput retained
  with the online A1-A3 detectors + R4 sketch on, relative to the
  learner-only gateway
  (``bench_online_detection.DETECTION_OVERHEAD_FLOOR``).

Blocks a PR has not recorded yet are skipped, not failed — the guard
polices regressions, it does not demand every bench has run on every
box.  Run as a script (exits 1 on any violation) or import
:func:`check_floors` for the smoke test.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# CI invokes this as a plain script (`python benchmarks/check_bench_floors.py`),
# which puts benchmarks/ — not the repo root — on sys.path; src/ covers
# running from a checkout where `repro` is not pip-installed.
_REPO_ROOT = Path(__file__).resolve().parents[1]
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from benchmarks.bench_ingress_lanes import (
    HANDOFF_FLOOR,
    MIN_CORES_FOR_SCALING,
    SCALING_FLOOR,
)
from benchmarks.bench_online_detection import DETECTION_OVERHEAD_FLOOR
from benchmarks.bench_serving_checkpoint import OVERHEAD_FLOOR
from benchmarks.bench_worker_recovery import RECOVERY_OVERHEAD_FLOOR

BENCH_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_streaming.json"


def check_floors(payload: dict) -> list[str]:
    """Every floor violation in the artifact, as human-readable lines."""
    violations: list[str] = []

    current = payload.get("current", {})
    overhead = current.get("overhead_ratio")
    if overhead is not None and overhead < OVERHEAD_FLOOR:
        violations.append(
            f"current.overhead_ratio {overhead:.4f} is below the "
            f"{OVERHEAD_FLOOR} floor: checkpointing costs more than "
            f"{1 - OVERHEAD_FLOOR:.0%} of throughput"
        )

    transport = payload.get("ring_transport", {})
    handoff = transport.get("ring_vs_pipe_handoff_x")
    if handoff is not None and handoff < HANDOFF_FLOOR:
        violations.append(
            f"ring_transport.ring_vs_pipe_handoff_x {handoff:.3f} is below "
            f"the {HANDOFF_FLOOR} floor: the zero-copy ring no longer beats "
            f"the pipe hand-off"
        )

    lanes = payload.get("ingress_lanes", {})
    scaling = lanes.get("scaling_x")
    cores = lanes.get("cores")
    if (
        scaling is not None
        and cores is not None
        and cores >= MIN_CORES_FOR_SCALING
        and scaling < SCALING_FLOOR
    ):
        violations.append(
            f"ingress_lanes.scaling_x {scaling:.3f} is below the "
            f"{SCALING_FLOOR} floor despite {cores:.0f} recorded cores"
        )

    recovery = payload.get("worker_recovery", {})
    retained = recovery.get("recovery_overhead_ratio")
    if retained is not None and retained < RECOVERY_OVERHEAD_FLOOR:
        violations.append(
            f"worker_recovery.recovery_overhead_ratio {retained:.3f} is "
            f"below the {RECOVERY_OVERHEAD_FLOOR} floor: fleet recovery "
            f"costs more than {1 - RECOVERY_OVERHEAD_FLOOR:.0%} of throughput"
        )

    detection = payload.get("online_detection", {})
    detect_ratio = detection.get("detection_overhead_ratio")
    if detect_ratio is not None and detect_ratio < DETECTION_OVERHEAD_FLOOR:
        violations.append(
            f"online_detection.detection_overhead_ratio {detect_ratio:.4f} "
            f"is below the {DETECTION_OVERHEAD_FLOOR:.4f} floor: the "
            f"detector+sketch pass costs more than its 1.3x budget"
        )

    for row in payload.get("trajectory", []):
        if "cores" not in row:
            violations.append(
                f"trajectory row for PR {row.get('pr')} records no 'cores' — "
                f"its multi-core floors cannot be gated"
            )

    return violations


def main(path: Path = BENCH_ARTIFACT) -> int:
    if not path.exists():
        print(f"floors guard: no artifact at {path}; nothing to check")
        return 0
    payload = json.loads(path.read_text())
    violations = check_floors(payload)
    if violations:
        print(f"floors guard: {len(violations)} violation(s) in {path.name}:")
        for line in violations:
            print(f"  - {line}")
        return 1
    print(
        f"floors guard: {path.name} holds every floor "
        f"(overhead >= {OVERHEAD_FLOOR}, ring hand-off >= {HANDOFF_FLOOR}x, "
        f"lane scaling >= {SCALING_FLOOR}x on >= {MIN_CORES_FOR_SCALING} "
        f"cores, recovery retention >= {RECOVERY_OVERHEAD_FLOOR}, "
        f"detection retention >= {DETECTION_OVERHEAD_FLOOR:.4f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
