"""FIG4 — Figure 4: Q1 answers by OCE working experience.

The paper's cross-tab fact: every OCE with more than three years of
experience answered "Limited Help", making up 71.4 % of all Limited
answers.
"""

import pytest

from benchmarks.conftest import record_report
from repro.analysis import paper_reference as paper
from repro.analysis.figures import render_table
from repro.analysis.report import ComparisonRow, render_comparison
from repro.oce.engineer import ExperienceBand
from repro.oce.survey import SOP_OPTIONS, SurveyInstrument


def test_fig4_experience_crosstab(benchmark):
    results = benchmark(lambda: SurveyInstrument(seed=42).run())
    crosstab = results.crosstab("sop/Q1")

    rows = []
    for band in (ExperienceBand.GT3, ExperienceBand.Y2TO3,
                 ExperienceBand.Y1TO2, ExperienceBand.LT1):
        answers = crosstab.get(band, {})
        rows.append((band.label,) + tuple(
            answers.get(option, 0) for option in SOP_OPTIONS
        ))
    figure = render_table(("experience",) + SOP_OPTIONS, rows)

    senior = crosstab[ExperienceBand.GT3]
    limited_total = sum(row.get("Limited Help", 0) for row in crosstab.values())
    senior_limited = senior.get("Limited Help", 0)

    assert senior == {"Limited Help": 10}
    assert senior_limited / limited_total == pytest.approx(paper.Q1_LIMITED_GT3_SHARE)

    table = render_comparison("paper vs measured", [
        ComparisonRow(">3y OCEs answering Limited", paper.Q1_LIMITED_GT3_COUNT,
                      senior_limited, "all of them"),
        ComparisonRow(">3y share of Limited answers",
                      paper.Q1_LIMITED_GT3_SHARE, senior_limited / limited_total),
        ComparisonRow("total Limited answers", 14, limited_total),
    ])
    record_report("FIG4", f"Figure 4 — Q1 helpfulness by experience\n{figure}\n\n{table}")
