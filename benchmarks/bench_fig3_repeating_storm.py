"""FIG3 — Figure 3: repeating alerts in the representative storm.

Regenerates the 7:00-11:59 storm (2751 alerts, 200 effective strategies)
and prints the per-hour series the figure plots: the HAProxy strategy at
~30 % of every hour, Kafka second, everything else as "Others".
"""

import pytest

from benchmarks.conftest import record_report
from repro.analysis import paper_reference as paper
from repro.analysis.figures import render_hourly_series
from repro.analysis.report import ComparisonRow, render_comparison
from repro.common.timeutil import hour_bucket
from repro.workload.storms import StormConfig, build_representative_storm


@pytest.fixture(scope="module")
def storm(topology):
    return build_representative_storm(StormConfig(seed=42), topology)


def test_fig3_storm_shape(benchmark, storm, topology):
    config = StormConfig(seed=42)
    benchmark(lambda: build_representative_storm(config, topology))

    first_hour = config.day * 24 + config.start_hour
    hours = list(range(first_hour, first_hour + config.n_hours))
    series = {"HAProxy": [], "Kafka": [], "Others": []}
    haproxy_shares = []
    for hour in hours:
        bucket = [a for a in storm.alerts if hour_bucket(a.occurred_at) == hour]
        haproxy = sum(1 for a in bucket
                      if a.strategy_name == paper.STORM_EXAMPLE["top_strategy"])
        kafka = sum(1 for a in bucket if a.strategy_name == "kafka_consumer_lag_high")
        series["HAProxy"].append(haproxy)
        series["Kafka"].append(kafka)
        series["Others"].append(len(bucket) - haproxy - kafka)
        haproxy_shares.append(haproxy / len(bucket))

    by_strategy = storm.by_strategy()
    top_id = max(by_strategy, key=lambda sid: len(by_strategy[sid]))
    top = storm.strategies[top_id]

    # Shape assertions mirroring the figure and its caption text.
    assert len(storm) == paper.STORM_EXAMPLE["total_alerts"]
    assert len(by_strategy) == paper.STORM_EXAMPLE["effective_strategies"]
    assert top.name == paper.STORM_EXAMPLE["top_strategy"]
    assert top.severity.name == paper.STORM_EXAMPLE["top_severity"]
    for share in haproxy_shares:
        assert share == pytest.approx(paper.STORM_EXAMPLE["top_share_per_hour"],
                                      abs=0.06)

    figure = render_hourly_series(
        "Figure 3 — repeating alerts in an alert storm (# alerts per hour)",
        [h % 24 for h in hours], series,
    )
    table = render_comparison("paper vs measured", [
        ComparisonRow("total alerts", paper.STORM_EXAMPLE["total_alerts"], len(storm)),
        ComparisonRow("effective strategies",
                      paper.STORM_EXAMPLE["effective_strategies"], len(by_strategy)),
        ComparisonRow("top strategy", paper.STORM_EXAMPLE["top_strategy"], top.name),
        ComparisonRow("top severity", paper.STORM_EXAMPLE["top_severity"],
                      top.severity.name, "the lowest level"),
        ComparisonRow("top share / hour",
                      paper.STORM_EXAMPLE["top_share_per_hour"],
                      sum(haproxy_shares) / len(haproxy_shares),
                      "~30% in each hour"),
        ComparisonRow("second strategy", paper.STORM_EXAMPLE["second_strategy_display"],
                      "Kafka"),
    ])
    record_report("FIG3", f"{figure}\n\n{table}")


def test_fig3_both_collective_antipatterns_observable(storm, topology):
    """§III-A2: 'we observed both collective anti-patterns' in this storm."""
    from repro.core.antipatterns import (
        CascadingAlertsDetector,
        RepeatingAlertsDetector,
    )

    alerts = storm.alerts
    repeating = RepeatingAlertsDetector().detect_in_group(alerts, "fig3")
    assert any(f.subject == "strategy-haproxy" for f in repeating)
    cascade = CascadingAlertsDetector(topology.graph).detect_in_group(alerts, "fig3")
    assert cascade is not None
