"""R1R2 — ablation: blocking and aggregation volume reduction.

The paper reports R1/R2 effectiveness only through the survey; this bench
quantifies them on the synthetic trace, including the two design choices
DESIGN.md calls out — blocking scope (strategy vs strategy+region) and
the aggregation window (5/15/60 minutes).  The headline expectation:
noise blocking plus aggregation removes an order of magnitude of OCE
load without touching the root-cause-carrying alerts.
"""

from benchmarks.conftest import record_report
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.antipatterns import DetectorThresholds
from repro.core.antipatterns.collective import RepeatingAlertsDetector
from repro.core.antipatterns.individual import TransientTogglingDetector
from repro.core.mitigation import AlertAggregator, AlertBlocker
from repro.core.mitigation.blocking import BlockingRule


def _noise_findings(trace):
    thresholds = DetectorThresholds()
    findings = TransientTogglingDetector(thresholds).detect(trace)
    findings += RepeatingAlertsDetector(thresholds).detect(trace)
    return findings


def test_r1_blocking_reduction(benchmark, trace):
    findings = _noise_findings(trace)
    blocker = AlertBlocker.from_findings(findings)
    passed, blocked = benchmark(lambda: blocker.apply(trace))

    reduction = len(blocked) / len(trace)
    assert reduction > 0.08, "chronic noise must be a visible share of volume"

    # Root-cause preservation: the share of fault-attributed alerts that
    # survive blocking must stay high — blocking noise, not signal.
    attributed = [a for a in trace.alerts if a.fault_id is not None]
    surviving = [a for a in passed.alerts if a.fault_id is not None]
    preservation = len(surviving) / len(attributed)
    assert preservation > 0.6, "blocking must not silence incident alerts"

    rows = [
        ComparisonRow("R1 rated Effective by OCEs", "18/18",
                      f"{reduction:.0%} volume blocked"),
        ComparisonRow("blocking rules derived", "(manual in paper)",
                      len(blocker.rules), "from A4/A5 findings"),
        ComparisonRow("incident-alert preservation", "(goal: keep signal)",
                      f"{preservation:.0%}"),
    ]

    # Ablation: strategy-scoped vs (strategy, region)-scoped rules.
    region_rules = [
        BlockingRule(rule.strategy_id, region=region, reason=rule.reason)
        for rule in blocker.rules
        for region in ("region-A",)
    ]
    narrow = AlertBlocker(region_rules)
    rows.append(ComparisonRow(
        "ablation: region-scoped rules", "(design choice)",
        f"{narrow.reduction(trace):.0%} blocked vs {reduction:.0%} strategy-scoped",
    ))
    record_report("R1", render_comparison("R1 alert blocking", rows))


def test_r2_aggregation_windows(benchmark, trace):
    findings = _noise_findings(trace)
    passed, _ = AlertBlocker.from_findings(findings).apply(trace)

    aggregator = AlertAggregator(window_seconds=900.0)
    aggregates = benchmark(lambda: aggregator.aggregate(passed.alerts))
    base_ratio = len(passed.alerts) / len(aggregates)

    rows = [
        ComparisonRow("R2 rated Effective by OCEs", "16/18",
                      f"{base_ratio:.1f}x compression at 15 min"),
        ComparisonRow("count kept as feature", "yes",
                      f"{sum(1 for a in aggregates if a.is_group)} groups carry counts"),
    ]
    for minutes in (5, 60):
        ratio = AlertAggregator(minutes * 60.0).compression_ratio(passed.alerts)
        rows.append(ComparisonRow(
            f"ablation: {minutes}-min window", "(design choice)",
            f"{ratio:.1f}x compression",
        ))
    record_report("R2", render_comparison("R2 alert aggregation", rows))

    ratio_5 = AlertAggregator(300.0).compression_ratio(passed.alerts)
    ratio_60 = AlertAggregator(3600.0).compression_ratio(passed.alerts)
    assert ratio_5 <= base_ratio <= ratio_60


def test_r1_r2_combined_reduction(trace):
    """R1+R2 roughly halve the item count while keeping incident signal;
    the rest of the order-of-magnitude cut comes from R3's clustering
    (see the pipeline report)."""
    findings = _noise_findings(trace)
    passed, _ = AlertBlocker.from_findings(findings).apply(trace)
    aggregates = AlertAggregator(900.0).aggregate(passed.alerts)
    assert len(trace) / len(aggregates) > 1.5
