"""TAB2 — Table II: sample reliability alerts of a cascading failure.

Runs the telemetry-driven path end to end: a disk-full fault on block
storage cascades into the database ("Failed to commit changes") and
beyond; the monitoring engine turns the perturbed telemetry into alerts
whose rows reproduce the table's shape — storage alert first, database
commit alerts minutes later, same region.
"""

import pytest

from benchmarks.conftest import record_report
from repro.alerting import AlertBook, MonitoringEngine
from repro.analysis.figures import render_table
from repro.analysis.report import ComparisonRow, render_comparison
from repro.common.timeutil import HOUR, MINUTE, format_timestamp
from repro.faults import CascadeModel, FaultInjector, disk_full_cascade
from repro.sim import SimulationEngine
from repro.telemetry import TelemetryHub
from repro.workload import StrategyFactory
from repro.workload.strategies import StrategyMixConfig


@pytest.fixture(scope="module")
def cascade_run(topology):
    hub = TelemetryHub(topology, seed=42)
    injector = FaultInjector(hub)
    cascade = CascadeModel(topology, injector, seed=42)
    root, children = disk_full_cascade(topology, injector, cascade, start=2 * HOUR)
    factory = StrategyFactory(topology, seed=42,
                              mix=StrategyMixConfig(a4_rate=0.0, a5_rate=0.0))
    strategies = []
    for micro in [root.microservice] + [c.microservice for c in children]:
        strategies.extend(factory.build_for(micro, count=2))
    book = AlertBook()
    engine = MonitoringEngine(hub, book, fault_attribution=injector.fault_at)
    engine.register_all(strategies)
    sim = SimulationEngine()
    engine.attach(sim, end_time=root.window.end + HOUR)
    sim.run_until(root.window.end + HOUR)
    return topology, root, children, book


def test_table2_cascading_sample(benchmark, cascade_run):
    topology, root, children, book = cascade_run
    regional = sorted(
        (a for a in book.alerts if a.region == root.region),
        key=lambda a: a.occurred_at,
    )
    benchmark(lambda: sorted(
        (a for a in book.alerts if a.region == root.region),
        key=lambda a: a.occurred_at,
    ))
    assert regional, "the cascade must generate alerts"

    storage_alerts = [a for a in regional if a.service == "block-storage"]
    database_alerts = [a for a in regional if a.service == "database"]
    assert storage_alerts, "block storage itself must alert"
    assert database_alerts, "the dependent database must alert"

    first_storage = min(a.occurred_at for a in storage_alerts)
    first_database = min(a.occurred_at for a in database_alerts)
    gap_minutes = (first_database - first_storage) / MINUTE
    # Table II: the database commit failures follow the storage alert by
    # a couple of minutes; give the simulated path a generous bound.
    assert gap_minutes > 0, "storage must alert before the database"
    assert gap_minutes < 30

    rows = []
    for index, alert in enumerate(regional[:6], start=1):
        rows.append((
            index, alert.severity.label, format_timestamp(alert.occurred_at),
            alert.service, alert.title[:46],
            "-" if alert.cleared_at is None
            else f"{(alert.cleared_at - alert.occurred_at) / 60:.0f} min",
            f"Region={alert.region};DC={alert.datacenter}",
        ))
    figure = render_table(
        ("No.", "Severity", "Time", "Service", "Alert Title", "Duration", "Location"),
        rows,
    )
    table = render_comparison("paper vs measured", [
        ComparisonRow("storage alerts before database", "yes",
                      "yes" if gap_minutes > 0 else "no"),
        ComparisonRow("storage -> database onset gap", "2-3 min",
                      f"{gap_minutes:.1f} min"),
        ComparisonRow("services in cascade", ">= 2",
                      len({a.service for a in regional})),
        ComparisonRow("same region", "yes",
                      "yes" if len({a.region for a in regional}) == 1 else "no"),
    ])
    record_report("TAB2", f"Table II — sample cascading alerts\n{figure}\n\n{table}")
