"""QOA — §IV: automatic Quality-of-Alerts evaluation.

Implements the paper's proposed future direction end to end: OCE labels
(simulated, noisy) train per-criterion models whose low predictions flag
anti-patterns automatically.  Reported: per-criterion accuracy vs the
majority baseline, flag agreement with the injected ground truth, and the
feature-set ablation DESIGN.md calls out (text-only vs behaviour-only vs
full).
"""

import numpy as np
import pytest

from benchmarks.conftest import record_report
from repro.analysis.paper_reference import QOA_CRITERIA
from repro.analysis.report import ComparisonRow, render_comparison
from repro.core.qoa import evaluate_qoa_pipeline
from repro.core.qoa.features import FEATURE_NAMES, StrategyFeatureExtractor
from repro.core.qoa.labeling import simulate_oce_labels
from repro.core.qoa.model import QoAModel, train_test_split

_TEXT_FEATURES = ("clarity", "vagueness", "title_length")
_BEHAVIOUR_FEATURES = (
    "alerts_per_day", "transient_share", "manual_share", "log_mean_duration",
    "incident_overlap", "mean_processing_minutes", "severity_impact_gap",
)


def test_qoa_pipeline(benchmark, trace):
    report = benchmark(lambda: evaluate_qoa_pipeline(trace, seed=42))

    rows = [ComparisonRow("criteria", "indicativeness, precision, handleability",
                          ", ".join(QOA_CRITERIA), "same three")]
    for criterion in QOA_CRITERIA:
        accuracy = report.accuracy[criterion]
        baseline = report.majority_baseline[criterion]
        assert accuracy >= baseline - 0.03, criterion
        rows.append(ComparisonRow(
            f"{criterion} accuracy", "(proposed, not evaluated)",
            f"{accuracy:.2f} (baseline {baseline:.2f})",
        ))
    for criterion, agreement in report.antipattern_agreement.items():
        rows.append(ComparisonRow(
            f"low-{criterion} -> anti-pattern flags", "(proposed)",
            f"precision {agreement['precision']:.2f} recall {agreement['recall']:.2f}",
        ))
    record_report("QOA", render_comparison("QoA evaluation (paper SIV)", rows))


@pytest.fixture(scope="module")
def design(trace):
    ids, features = StrategyFeatureExtractor(trace).extract(min_alerts=5)
    labels_by_sid = simulate_oce_labels(trace, ids, noise=0.08, seed=42)
    labels = {
        criterion: np.array([labels_by_sid[sid][criterion] for sid in ids], dtype=float)
        for criterion in QOA_CRITERIA
    }
    return ids, features, labels


def _subset_accuracy(features, labels, columns):
    indices = [FEATURE_NAMES.index(name) for name in columns]
    subset = features[:, indices]
    train, test = train_test_split(len(subset), seed=42)
    model = QoAModel().fit(subset[train], {c: labels[c][train] for c in QOA_CRITERIA})
    return model.accuracy(subset[test], {c: labels[c][test] for c in QOA_CRITERIA})


def test_qoa_feature_ablation(design):
    """Text features carry handleability; behaviour carries indicativeness."""
    _, features, labels = design
    text_acc = _subset_accuracy(features, labels, _TEXT_FEATURES)
    behaviour_acc = _subset_accuracy(features, labels, _BEHAVIOUR_FEATURES)
    full_acc = _subset_accuracy(features, labels, FEATURE_NAMES)

    rows = []
    for criterion in QOA_CRITERIA:
        rows.append(ComparisonRow(
            f"{criterion}",
            "(design-choice ablation)",
            f"text {text_acc[criterion]:.2f} / behaviour "
            f"{behaviour_acc[criterion]:.2f} / full {full_acc[criterion]:.2f}",
        ))
    record_report("QOA-ablation", render_comparison("QoA feature ablation", rows))

    assert text_acc["handleability"] > behaviour_acc["handleability"]
    assert behaviour_acc["indicativeness"] > text_acc["indicativeness"]
    for criterion in QOA_CRITERIA:
        assert full_acc[criterion] >= max(text_acc[criterion],
                                          behaviour_acc[criterion]) - 0.05
