"""Simulation integration: drive a gateway as a periodic process.

The discrete-event kernel already runs the monitoring engine and fault
injector as processes; :func:`drive_gateway` adds the mitigation gateway
to the same loop.  Every ``interval`` simulated seconds the driver pulls
all alerts whose occurrence time has been reached from a time-ordered
source and ingests them as one micro-batch — exactly how a collector
tails an alert bus.  When the source is exhausted the process stops
itself (and optionally drains the gateway).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.alerting.alert import Alert
from repro.sim.engine import SimulationEngine
from repro.sim.events import PeriodicProcess
from repro.streaming.gateway import AlertGateway

__all__ = ["drive_gateway"]

#: Called after each micro-batch: (gateway, sim_time, batch_size).
BatchHook = Callable[[AlertGateway, float, int], None]


def drive_gateway(
    engine: SimulationEngine,
    gateway: AlertGateway,
    alerts: Iterable[Alert],
    interval: float = 60.0,
    start: float | None = None,
    drain_on_exhaust: bool = False,
    on_batch: BatchHook | None = None,
    label: str = "alert-gateway",
) -> PeriodicProcess:
    """Register the gateway as a periodic ingestion process.

    Returns the :class:`PeriodicProcess` so callers can stop it early.
    """
    iterator: Iterator[Alert] = iter(alerts)
    pending: list[Alert] = []  # one-element pushback buffer

    def tick(time: float, _: object) -> None:
        batch = 0
        while True:
            if pending:
                alert = pending.pop()
            else:
                alert = next(iterator, None)
                if alert is None:
                    process.stop()
                    if drain_on_exhaust:
                        gateway.drain()
                    break
            if alert.occurred_at > time:
                pending.append(alert)
                break
            gateway.ingest(alert)
            batch += 1
        if on_batch is not None:
            on_batch(gateway, time, batch)

    process = PeriodicProcess(
        interval=interval,
        callback=tick,
        start=engine.now if start is None else start,
        label=label,
    )
    engine.add_periodic(process)
    return process
