"""Online anti-pattern detection: A1-A3 and sketch-R4 at the barriers.

The batch detectors (:mod:`repro.core.antipatterns`) need a *finished*
trace.  This module closes that gap for the definition-level
anti-patterns the stream itself reveals: every plane ships a compact
**detection digest** at each flush barrier (strategy catalog rows, A2
lifecycle statistics, hashed R4 documents —
:func:`~repro.streaming.wire.pack_detection`), and the gateway folds the
digests into one :class:`StreamingDetectorSuite` that can answer at any
barrier:

* **A1 (unclear title)** — the :class:`~repro.core.antipatterns.text.
  TitleQualityScorer` over the catalog's title/description, the same
  scorer and cutoff the batch detector applies to strategy metadata;
* **A2 (misconfigured severity)** — the batch detector's impact-proxy
  pipeline reconstructed from per-(strategy, region, hour) counters:
  storm hours excluded by the same >100 volume rule, transient- and
  repeat-dominated strategies excluded by the same gates, class centers
  from the same medians.  The repeat-window check stays *exact* because
  each hour bucket either retains every raw event time (when it holds
  fewer than ``repeat_window_count``) or is itself proof of a
  repeat-sized run (``repeat_window_count`` events within one hour
  always fit inside ``repeat_window``; the suite requires
  ``repeat_window >= 1h`` for this argument to hold);
* **A3 (stale/duplicate definition)** — the shared
  :func:`~repro.core.antipatterns.definitions.definition_findings`
  rule over catalog-derived records;
* **R4 (emerging alerts)** — the LDA-free
  :class:`~repro.ml.sketch.SketchWindowScorer`, advanced by the
  gateway's event-time watermark and closed at drain.

Because A1/A3 funnel through the exact batch code and A2 reconstructs
the batch statistics (float summation order is the only difference),
``tests/streaming/test_differential.py`` can assert online-vs-batch
verdict parity on golden traces; the suite's full dynamic state exports
JSON-safe for the serving checkpoints.
"""

from __future__ import annotations

import numpy as np

from repro.alerting.alert import Severity
from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR
from repro.core.antipatterns.base import AntiPatternFinding, DetectorThresholds
from repro.core.antipatterns.definitions import DefinitionRecord, definition_findings
from repro.core.antipatterns.text import TitleQualityScorer
from repro.ml.sketch import DEFAULT_SKETCH_BUCKETS, SketchWindowScorer

__all__ = ["STORM_HOUR_THRESHOLD", "StreamingDetectorSuite"]

#: Same flood-volume cut as :func:`~repro.core.antipatterns.base.
#: storm_hour_keys` — an (hour, region) bucket above this is a storm.
STORM_HOUR_THRESHOLD = 100


class StreamingDetectorSuite:
    """Folds per-plane detection digests into online A1-A3/R4 verdicts."""

    def __init__(
        self,
        thresholds: DetectorThresholds | None = None,
        sketch_buckets: int = DEFAULT_SKETCH_BUCKETS,
        sketch_smoothing: float = 0.5,
        window_seconds: float = 1 * HOUR,
        warmup_windows: int = 6,
        novelty_quantile: float = 0.99,
        min_novelty_gap: float = 1.0,
    ) -> None:
        self._thresholds = thresholds or DetectorThresholds()
        if self._thresholds.repeat_window < HOUR:
            raise ValidationError(
                "streaming A2 needs repeat_window >= one hour: a full "
                "hour bucket is its proof of a repeat-sized run"
            )
        self._scorer = TitleQualityScorer()
        #: sid -> [first_at, first_alert_id, title, description,
        #: severity_int, service, last_at]
        self._catalog: dict[str, list] = {}
        #: (sid, region, hour bucket) -> [count, transient,
        #: steady_manual, steady_cleared, steady_duration_sum, times]
        self._stats: dict[tuple[str, str, int], list] = {}
        self.sketch = SketchWindowScorer(
            n_buckets=sketch_buckets,
            smoothing=sketch_smoothing,
            window_seconds=window_seconds,
            warmup_windows=warmup_windows,
            novelty_quantile=novelty_quantile,
            min_novelty_gap=min_novelty_gap,
        )

    # ------------------------------------------------------------------
    # ingestion (flush/drain barriers)
    # ------------------------------------------------------------------
    def observe(self, digest, watermark: float | None = None) -> None:
        """Fold one plane's unpacked digest; advance the R4 watermark.

        ``digest`` is the ``(catalog, stats, docs, doc_rows)`` tuple
        :func:`~repro.streaming.wire.unpack_detection` returns.
        """
        catalog_rows, stat_rows, docs, doc_rows = digest
        catalog = self._catalog
        for sid, first_at, first_id, title, description, severity, service, last_at in catalog_rows:
            row = catalog.get(sid)
            if row is None:
                catalog[sid] = [
                    first_at, first_id, title, description,
                    severity, service, last_at,
                ]
            else:
                # First-seen metadata wins deterministically: smallest
                # (event time, alert id) across every plane and flush.
                if (first_at, first_id) < (row[0], row[1]):
                    row[0], row[1] = first_at, first_id
                    row[2], row[3] = title, description
                    row[4], row[5] = severity, service
                row[6] = max(row[6], last_at)
        stats = self._stats
        cap = self._thresholds.repeat_window_count
        for sid, region, bucket, count, transient, manual, cleared, duration_sum, times in stat_rows:
            key = (sid, region, bucket)
            row = stats.get(key)
            if row is None:
                stats[key] = [
                    count, transient, manual, cleared, duration_sum,
                    list(times[:cap]),
                ]
            else:
                row[0] += count
                row[1] += transient
                row[2] += manual
                row[3] += cleared
                row[4] += duration_sum
                # Below the cap every contribution is complete, so the
                # merged list holds *all* of the bucket's event times;
                # at the cap the count alone settles the repeat check.
                if len(row[5]) < cap:
                    row[5].extend(times)
                    del row[5][cap:]
        self.sketch.add_rows(docs, doc_rows)
        self.sketch.advance(watermark)

    def finish(self, watermark: float | None = None) -> None:
        """End of stream: close the R4 sketch's final partial window."""
        self.sketch.advance(watermark)
        self.sketch.finish()

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    @property
    def strategies(self) -> int:
        """Number of distinct strategies the stream has revealed."""
        return len(self._catalog)

    @property
    def stream_end(self) -> float:
        """Latest alert event time any digest carried."""
        if not self._catalog:
            return 0.0
        return max(row[6] for row in self._catalog.values())

    def findings(self) -> dict[str, list[AntiPatternFinding]]:
        """Current A1-A3 findings, recomputed from the folded state."""
        return {
            "A1": self._title_findings(),
            "A2": self._severity_findings(),
            "A3": self._definition_findings(),
        }

    def _title_findings(self) -> list[AntiPatternFinding]:
        """A1 over the catalog — the batch detector's exact rule."""
        cutoff = self._thresholds.unclear_title_cutoff
        findings = []
        for sid in sorted(self._catalog):
            row = self._catalog[sid]
            clarity = self._scorer.clarity(row[2], row[3])
            if clarity < cutoff:
                findings.append(AntiPatternFinding(
                    pattern="A1",
                    subject=sid,
                    score=min(1.0, (cutoff - clarity) / cutoff + 0.2),
                    evidence=f"estimated clarity {clarity:.2f} < {cutoff} "
                             f"for title {row[2]!r}",
                    details={"clarity": clarity},
                ))
        return findings

    def _definition_findings(self) -> list[AntiPatternFinding]:
        """A3 over catalog-derived records — the shared batch rule."""
        records = [
            DefinitionRecord(
                strategy_id=sid,
                service=row[5],
                title=row[2],
                description=row[3],
                last_seen=row[6],
            )
            for sid, row in sorted(self._catalog.items())
        ]
        return definition_findings(records, self.stream_end, self._thresholds)

    def _storm_hours(self) -> set[tuple[int, str]]:
        """(hour bucket, region) keys carrying flood-level volume."""
        totals: dict[tuple[int, str], int] = {}
        for (_sid, region, bucket), row in self._stats.items():
            key = (bucket, region)
            totals[key] = totals.get(key, 0) + row[0]
        return {
            key for key, count in totals.items()
            if count > STORM_HOUR_THRESHOLD
        }

    def _severity_findings(self) -> list[AntiPatternFinding]:
        """A2 reconstructed from the lifecycle statistics."""
        thresholds = self._thresholds
        storm_hours = self._storm_hours()
        # Per sid over non-storm buckets: totals plus the per-region
        # bucket evidence the repeat check needs.
        folded: dict[str, list] = {}
        regions_of: dict[str, dict[str, list[tuple[int, list[float]]]]] = {}
        for (sid, region, bucket), row in sorted(self._stats.items()):
            if (bucket, region) in storm_hours:
                continue
            totals = folded.get(sid)
            if totals is None:
                totals = folded[sid] = [0, 0, 0, 0, 0.0]
            totals[0] += row[0]
            totals[1] += row[1]
            totals[2] += row[2]
            totals[3] += row[3]
            totals[4] += row[4]
            regions_of.setdefault(sid, {}).setdefault(region, []).append(
                (row[0], row[5])
            )
        proxies: dict[str, float] = {}
        for sid, totals in folded.items():
            total, transient, manual, cleared, duration_sum = totals
            if not total:
                continue
            if transient / total >= thresholds.transient_fraction:
                continue
            if self._is_repeat_dominated(regions_of[sid]):
                continue
            steady = total - transient
            if steady < thresholds.severity_min_alerts:
                continue
            manual_share = manual / steady
            mean_duration = duration_sum / cleared if cleared else 0.0
            proxies[sid] = (
                0.60 * manual_share + 0.40 * min(mean_duration / 7200.0, 1.0)
            )
        if not proxies:
            return []
        by_class: dict[Severity, list[float]] = {}
        for sid, proxy in proxies.items():
            severity = Severity(self._catalog[sid][4])
            by_class.setdefault(severity, []).append(proxy)
        centers = {
            severity: float(np.median(values))
            for severity, values in by_class.items()
            if len(values) >= 3
        }
        if len(centers) < 2:
            return []
        findings = []
        for sid, proxy in proxies.items():
            configured = Severity(self._catalog[sid][4])
            if configured not in centers:
                continue
            own_distance = abs(proxy - centers[configured])
            nearest = min(centers, key=lambda sev: abs(proxy - centers[sev]))
            if nearest is configured:
                continue
            margin = own_distance - abs(proxy - centers[nearest])
            if margin <= thresholds.severity_class_margin:
                continue
            if own_distance < thresholds.severity_min_distance:
                continue
            direction = (
                "overstated" if nearest.value > configured.value
                else "understated"
            )
            findings.append(AntiPatternFinding(
                pattern="A2",
                subject=sid,
                score=min(1.0, 0.5 + margin),
                evidence=(
                    f"configured {configured.label} but impact proxy "
                    f"{proxy:.2f} matches {nearest.label} "
                    f"(center {centers[nearest]:.2f}); "
                    f"severity {direction}"
                ),
                details={
                    "proxy": proxy,
                    "nearest": nearest.label,
                    "margin": margin,
                },
            ))
        return findings

    def _is_repeat_dominated(
        self, by_region: dict[str, list[tuple[int, list[float]]]],
    ) -> bool:
        """Exact repeat-window check from the bucketed evidence."""
        thresholds = self._thresholds
        cap = thresholds.repeat_window_count
        for buckets in by_region.values():
            # A bucket at the cap is itself a repeat-sized run (the cap
            # many events inside one hour <= repeat_window).
            if any(count >= cap for count, _ in buckets):
                return True
            times = sorted(
                at for _, bucket_times in buckets for at in bucket_times
            )
            left = 0
            for right in range(len(times)):
                while times[right] - times[left] > thresholds.repeat_window:
                    left += 1
                if right - left + 1 >= cap:
                    return True
        return False

    # ------------------------------------------------------------------
    # snapshots and checkpointing
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Compact counters plus current finding counts (ops views)."""
        findings = self.findings()
        return {
            "strategies": self.strategies,
            "stat_rows": len(self._stats),
            "emerging": self.sketch.emerging_count,
            "findings": {
                pattern: len(items) for pattern, items in findings.items()
            },
        }

    def export_state(self) -> dict:
        """Complete dynamic state, JSON-safe (checkpointing)."""
        return {
            "catalog": [
                [sid, *row] for sid, row in sorted(self._catalog.items())
            ],
            "stats": [
                [sid, region, bucket, *row[:5], list(row[5])]
                for (sid, region, bucket), row in sorted(self._stats.items())
            ],
            "sketch": self.sketch.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Adopt state captured by :meth:`export_state` (exact)."""
        self._catalog = {
            str(sid): [
                float(first_at), str(first_id), str(title),
                str(description), int(severity), str(service),
                float(last_at),
            ]
            for sid, first_at, first_id, title, description, severity,
                service, last_at in state["catalog"]
        }
        self._stats = {
            (str(sid), str(region), int(bucket)): [
                int(count), int(transient), int(manual), int(cleared),
                float(duration_sum), [float(at) for at in times],
            ]
            for sid, region, bucket, count, transient, manual, cleared,
                duration_sum, times in state["stats"]
        }
        self.sketch.restore_state(state["sketch"])
