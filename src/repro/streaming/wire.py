"""Struct-packed wire encoding for the process plane backend.

The PR-2 process backend pickled whole :class:`~repro.alerting.alert.Alert`
objects per event — the serialisation tax ROADMAP called out.  This
module replaces that with a compact tuple/columnar format:

* a **string table** with dictionary encoding: every distinct string
  (region, service, strategy id, title, ...) is stored once and
  referenced by a fixed-width index — alert streams repeat their
  vocabulary heavily, so the table collapses most of the payload;
* **columnar arrays** for the per-record fields: one ``array`` of u32
  string references per attribute plus packed severity/state bytes and
  f64 timestamps, instead of per-object pickle opcodes;
* shared framing for the three payloads that cross the process
  boundary: raw ``Alert`` batches (gateway → worker, every flush) and
  the end-of-run aggregate/cluster snapshots (worker → gateway, once at
  drain when artifacts are retained).

Encoding is byte-deterministic for a given input, versioned by a magic
header, and validated by round-trip tests in
``tests/streaming/test_wire.py``.
"""

from __future__ import annotations

import struct
from array import array
from operator import attrgetter
from typing import Sequence

from repro.alerting.alert import Alert, AlertState, Severity
from repro.common.errors import ValidationError
from repro.common.timeutil import TimeWindow
from repro.core.mitigation.aggregation import AggregatedAlert
from repro.core.mitigation.blocking import BlockingRule
from repro.core.mitigation.correlation import AlertCluster

__all__ = [
    "AlertBatchBuilder",
    "pack_alerts",
    "unpack_alerts",
    "pack_aggregates",
    "unpack_aggregates",
    "pack_clusters",
    "unpack_clusters",
    "pack_rules",
    "unpack_rules",
    "pack_detection",
    "unpack_detection",
    "pack_plane_state",
    "unpack_plane_state",
]

_MAGIC_ALERTS = b"RWA1"
_MAGIC_AGGREGATES = b"RWG1"
_MAGIC_CLUSTERS = b"RWC1"
_MAGIC_RULES = b"RWR1"
_MAGIC_DETECTION = b"RWD1"
_MAGIC_PLANE = b"RWP1"

#: u32 sentinel for "no string" (optional fields like ``fault_id``).
_NONE_REF = 0xFFFFFFFF
#: f64 sentinel for "not cleared" (real clear times are >= occurred_at >= 0).
_NO_TIME = -1.0

_STATES = tuple(AlertState)
_STATE_INDEX = {state: index for index, state in enumerate(_STATES)}
_SEVERITIES = tuple(sorted(Severity, key=lambda s: s.value))

_HEADER = struct.Struct("<I")


class _Writer:
    """Accumulates length-prefixed sections plus a shared string table."""

    def __init__(self, magic: bytes) -> None:
        self._parts: list[bytes] = [magic]
        self._strings: list[str] = []
        self._index: dict[str, int] = {}

    def ref(self, value: str) -> int:
        """Dictionary-encode one string; returns its table index."""
        index = self._index.get(value)
        if index is None:
            index = len(self._strings)
            self._index[value] = index
            self._strings.append(value)
        return index

    def ref_or_none(self, value: str | None) -> int:
        return _NONE_REF if value is None else self.ref(value)

    def section(self, payload: bytes) -> None:
        """Append one length-prefixed section."""
        self._parts.append(_HEADER.pack(len(payload)))
        self._parts.append(payload)

    def finish(self) -> bytes:
        """Serialise: magic, string table, then the queued sections."""
        pack = _HEADER.pack
        table = [pack(len(self._strings))]
        extend = table.extend
        for value in self._strings:
            raw = value.encode("utf-8")
            extend((pack(len(raw)), raw))
        return b"".join([self._parts[0], b"".join(table), *self._parts[1:]])


class _Reader:
    """Walks the sections written by :class:`_Writer`.

    ``data`` may be any bytes-like buffer — ``bytes`` off a pipe or a
    ``memoryview`` over a shared-memory ring slot.  Sections come back
    as slices of the input, so a memoryview input decodes zero-copy:
    nothing here materialises the payload as ``bytes``.
    """

    def __init__(self, data, magic: bytes) -> None:
        if data[:4] != magic:
            raise ValidationError(
                f"wire payload has magic {bytes(data[:4])!r}, "
                f"expected {magic!r}"
            )
        self._data = data
        self._offset = 4
        count = self._u32()
        self.strings: list[str] = []
        for _ in range(count):
            length = self._u32()
            end = self._offset + length
            self.strings.append(str(data[self._offset:end], "utf-8"))
            self._offset = end

    def _u32(self) -> int:
        value = _HEADER.unpack_from(self._data, self._offset)[0]
        self._offset += 4
        return value

    def section(self) -> bytes:
        length = self._u32()
        end = self._offset + length
        payload = self._data[self._offset:end]
        self._offset = end
        return payload

    def string_or_none(self, ref: int) -> str | None:
        return None if ref == _NONE_REF else self.strings[ref]


def _array_bytes(typecode: str, values: list) -> bytes:
    return array(typecode, values).tobytes()


def _read_array(typecode: str, payload: bytes) -> array:
    values = array(typecode)
    values.frombytes(payload)
    return values


# ----------------------------------------------------------------------
# alerts
# ----------------------------------------------------------------------
_ALERT_STRING_FIELDS = (
    "alert_id", "strategy_id", "strategy_name", "title", "description",
    "service", "microservice", "region", "datacenter", "channel",
)
#: One C-level tuple fetch per alert instead of ten Python getattrs —
#: this block is the serialisation hot path for both the journal and
#: plane-state snapshots.
_ALERT_STRINGS = attrgetter(*_ALERT_STRING_FIELDS)


def _write_alert_block(writer: _Writer, alerts: Sequence[Alert]) -> None:
    # The string interning is inlined (vs calling writer.ref) because it
    # runs ten times per alert; output stays byte-identical.
    index_of = writer._index
    strings = writer._strings
    columns: list[list[int]] = [[] for _ in _ALERT_STRING_FIELDS]
    appends = [column.append for column in columns]
    fault_refs: list[int] = []
    severities = bytearray()
    states = bytearray()
    occurred: list[float] = []
    cleared: list[float] = []
    tags: list[int] = []  # flat (alert_index, key_ref, value_ref) triples
    for index, alert in enumerate(alerts):
        for append, value in zip(appends, _ALERT_STRINGS(alert)):
            ref = index_of.get(value)
            if ref is None:
                ref = index_of[value] = len(strings)
                strings.append(value)
            append(ref)
        fault_refs.append(writer.ref_or_none(alert.fault_id))
        severities.append(alert.severity.value)
        states.append(_STATE_INDEX[alert.state])
        occurred.append(alert.occurred_at)
        cleared.append(_NO_TIME if alert.cleared_at is None else alert.cleared_at)
        if alert.tags:
            ref_of = writer.ref
            for key, value in alert.tags.items():
                tags.extend((index, ref_of(key), ref_of(value)))
    writer.section(_HEADER.pack(len(alerts)))
    for column in columns:
        writer.section(_array_bytes("I", column))
    writer.section(_array_bytes("I", fault_refs))
    writer.section(bytes(severities))
    writer.section(bytes(states))
    writer.section(_array_bytes("d", occurred))
    writer.section(_array_bytes("d", cleared))
    writer.section(_array_bytes("I", tags))


def _read_alert_block(reader: _Reader) -> list[Alert]:
    count = _HEADER.unpack(reader.section())[0]
    strings = reader.strings
    columns = [_read_array("I", reader.section()) for _ in _ALERT_STRING_FIELDS]
    fault_refs = _read_array("I", reader.section())
    severities = reader.section()
    states = reader.section()
    occurred = _read_array("d", reader.section())
    cleared = _read_array("d", reader.section())
    tag_triples = _read_array("I", reader.section())
    tags_of: dict[int, dict[str, str]] = {}
    for position in range(0, len(tag_triples), 3):
        index, key_ref, value_ref = tag_triples[position:position + 3]
        tags_of.setdefault(index, {})[strings[key_ref]] = strings[value_ref]
    alerts: list[Alert] = []
    append = alerts.append
    ids, strategies, names, titles, descriptions, services, micros, \
        regions, datacenters, channels = columns
    tags_get = tags_of.get
    for index in range(count):
        cleared_at = cleared[index]
        fault_ref = fault_refs[index]
        # Positional in dataclass field order: the decode hot loop skips
        # keyword-dict construction entirely.
        append(Alert(
            strings[ids[index]],
            strings[strategies[index]],
            strings[names[index]],
            strings[titles[index]],
            strings[descriptions[index]],
            _SEVERITIES[severities[index]],
            strings[services[index]],
            strings[micros[index]],
            strings[regions[index]],
            strings[datacenters[index]],
            strings[channels[index]],
            occurred[index],
            _STATES[states[index]],
            None if cleared_at == _NO_TIME else cleared_at,
            None if fault_ref == _NONE_REF else strings[fault_ref],
            tags_get(index) or {},
        ))
    return alerts


class AlertBatchBuilder:
    """Reusable append-only encoder for one alert batch.

    The partitioned ingest lanes encode their per-plane batches *at the
    lane* — one column write per event as it is routed — so the gateway
    never re-walks the batch and the ``process`` backend ships the
    finished bytes straight to its worker.  :meth:`finish` emits exactly
    the bytes :func:`pack_alerts` would produce for the same alerts
    (``unpack_alerts``-compatible, pinned by a byte-identity test) and
    resets the builder for the next batch, so one instance serves a
    lane's whole lifetime without reallocating its interning tables.
    """

    __slots__ = (
        "_strings", "_index", "_columns", "_fault_refs", "_severities",
        "_states", "_occurred", "_cleared", "_tags", "_count",
    )

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._strings: list[str] = []
        self._index: dict[str, int] = {}
        self._columns: list[list[int]] = [[] for _ in _ALERT_STRING_FIELDS]
        self._fault_refs: list[int] = []
        self._severities = bytearray()
        self._states = bytearray()
        self._occurred: list[float] = []
        self._cleared: list[float] = []
        self._tags: list[int] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _ref(self, value: str) -> int:
        ref = self._index.get(value)
        if ref is None:
            ref = self._index[value] = len(self._strings)
            self._strings.append(value)
        return ref

    def append(self, alert: Alert) -> None:
        """Encode one alert into the open batch (column writes only)."""
        # Interning order matches _write_alert_block exactly — the ten
        # string fields, then fault_id, then tags, per alert — so the
        # string table (and therefore every byte) comes out identical.
        index_of = self._index
        strings = self._strings
        for column, value in zip(self._columns, _ALERT_STRINGS(alert)):
            ref = index_of.get(value)
            if ref is None:
                ref = index_of[value] = len(strings)
                strings.append(value)
            column.append(ref)
        fault_id = alert.fault_id
        self._fault_refs.append(
            _NONE_REF if fault_id is None else self._ref(fault_id)
        )
        self._severities.append(alert.severity.value)
        self._states.append(_STATE_INDEX[alert.state])
        self._occurred.append(alert.occurred_at)
        cleared_at = alert.cleared_at
        self._cleared.append(_NO_TIME if cleared_at is None else cleared_at)
        if alert.tags:
            ref = self._ref
            for key, value in alert.tags.items():
                self._tags.extend((self._count, ref(key), ref(value)))
        self._count += 1

    def extend(self, alerts: Sequence[Alert]) -> None:
        """Encode a run of alerts in order."""
        append = self.append
        for alert in alerts:
            append(alert)

    def reset(self) -> None:
        """Discard the open batch without emitting it (crash recovery)."""
        self._reset()

    def finish_parts(self) -> list[bytes]:
        """Emit the batch as an ordered list of buffers, then reset.

        The concatenation of the returned parts is byte-identical to
        :meth:`finish` (and therefore to :func:`pack_alerts`).  The
        shared-memory ring transport writes these parts straight into a
        ring slot — skipping the ``b"".join`` that :meth:`finish` pays —
        so the encoded batch is materialised exactly once, in place.
        """
        pack = _HEADER.pack
        table = [pack(len(self._strings))]
        extend = table.extend
        for value in self._strings:
            raw = value.encode("utf-8")
            extend((pack(len(raw)), raw))
        parts = [_MAGIC_ALERTS, b"".join(table)]
        append = parts.append
        sections = [
            pack(self._count),
            *(_array_bytes("I", column) for column in self._columns),
            _array_bytes("I", self._fault_refs),
            bytes(self._severities),
            bytes(self._states),
            _array_bytes("d", self._occurred),
            _array_bytes("d", self._cleared),
            _array_bytes("I", self._tags),
        ]
        for payload in sections:
            append(pack(len(payload)))
            append(payload)
        self._reset()
        return parts

    def finish(self) -> bytes:
        """Emit the batch (``pack_alerts``-identical bytes) and reset."""
        return b"".join(self.finish_parts())


def pack_alerts(alerts: Sequence[Alert]) -> bytes:
    """Encode one in-order alert batch for the worker pipe."""
    writer = _Writer(_MAGIC_ALERTS)
    _write_alert_block(writer, alerts)
    return writer.finish()


def unpack_alerts(data) -> list[Alert]:
    """Decode a batch produced by :func:`pack_alerts`.

    ``data`` is any bytes-like buffer; a ``memoryview`` over a
    shared-memory ring slot decodes without copying the payload.
    """
    return _read_alert_block(_Reader(data, _MAGIC_ALERTS))


# ----------------------------------------------------------------------
# aggregates (R2 snapshots shipped back at drain)
# ----------------------------------------------------------------------
_AGGREGATE_FIXED = struct.Struct("<IIIBddI")


def pack_aggregates(aggregates: Sequence[AggregatedAlert]) -> bytes:
    """Encode an aggregate snapshot; representatives share one alert block."""
    writer = _Writer(_MAGIC_AGGREGATES)
    _write_alert_block(writer, [a.representative for a in aggregates])
    fixed = bytearray()
    id_offsets: list[int] = []
    id_refs: list[int] = []
    for aggregate in aggregates:
        fixed += _AGGREGATE_FIXED.pack(
            writer.ref(aggregate.strategy_id),
            writer.ref(aggregate.strategy_name),
            writer.ref(aggregate.region),
            aggregate.severity.value,
            aggregate.window.start,
            aggregate.window.end,
            aggregate.count,
        )
        id_offsets.append(len(id_refs))
        id_refs.extend(writer.ref(alert_id) for alert_id in aggregate.alert_ids)
    id_offsets.append(len(id_refs))
    writer.section(bytes(fixed))
    writer.section(_array_bytes("I", id_offsets))
    writer.section(_array_bytes("I", id_refs))
    return writer.finish()


def unpack_aggregates(data: bytes) -> list[AggregatedAlert]:
    """Decode a snapshot produced by :func:`pack_aggregates`."""
    reader = _Reader(data, _MAGIC_AGGREGATES)
    representatives = _read_alert_block(reader)
    fixed = reader.section()
    id_offsets = _read_array("I", reader.section())
    id_refs = _read_array("I", reader.section())
    strings = reader.strings
    aggregates: list[AggregatedAlert] = []
    for index, row in enumerate(_AGGREGATE_FIXED.iter_unpack(fixed)):
        strategy_ref, name_ref, region_ref, severity, start, end, count = row
        ids = tuple(
            strings[ref]
            for ref in id_refs[id_offsets[index]:id_offsets[index + 1]]
        )
        aggregates.append(AggregatedAlert(
            strategy_id=strings[strategy_ref],
            strategy_name=strings[name_ref],
            region=strings[region_ref],
            severity=Severity(severity),
            window=TimeWindow(start, end),
            count=count,
            representative=representatives[index],
            alert_ids=ids,
        ))
    return aggregates


# ----------------------------------------------------------------------
# clusters (R3 snapshots shipped back at drain)
# ----------------------------------------------------------------------
_CLUSTER_FIXED = struct.Struct("<iId")


def pack_clusters(clusters: Sequence[AlertCluster]) -> bytes:
    """Encode a cluster snapshot; all member alerts share one alert block."""
    writer = _Writer(_MAGIC_CLUSTERS)
    members: list[Alert] = []
    rows: list[tuple[int, str | None, float]] = []
    offsets: list[int] = []
    for cluster in clusters:
        offsets.append(len(members))
        root_index = -1
        for position, alert in enumerate(cluster.alerts):
            if alert is cluster.root_alert:
                root_index = position
        rows.append((
            root_index,
            cluster.root_microservice,
            cluster.coverage,
        ))
        members.extend(cluster.alerts)
    offsets.append(len(members))
    _write_alert_block(writer, members)
    fixed = bytearray()
    for root_index, root_micro, coverage in rows:
        fixed += _CLUSTER_FIXED.pack(
            root_index, writer.ref_or_none(root_micro), coverage,
        )
    writer.section(bytes(fixed))
    writer.section(_array_bytes("I", offsets))
    return writer.finish()


def unpack_clusters(data: bytes) -> list[AlertCluster]:
    """Decode a snapshot produced by :func:`pack_clusters`."""
    reader = _Reader(data, _MAGIC_CLUSTERS)
    members = _read_alert_block(reader)
    fixed = reader.section()
    offsets = _read_array("I", reader.section())
    clusters: list[AlertCluster] = []
    for index, (root_index, micro_ref, coverage) in enumerate(
        _CLUSTER_FIXED.iter_unpack(fixed)
    ):
        alerts = members[offsets[index]:offsets[index + 1]]
        clusters.append(AlertCluster(
            alerts=alerts,
            root_alert=alerts[root_index] if root_index >= 0 else None,
            root_microservice=reader.string_or_none(micro_ref),
            coverage=coverage,
        ))
    return clusters


# ----------------------------------------------------------------------
# blocking rules (R1 rule deltas shipped to plane workers)
# ----------------------------------------------------------------------
_RULE_FIXED = struct.Struct("<IIId")


def pack_rules(rules: Sequence[BlockingRule]) -> bytes:
    """Encode an R1 rule table (learner deltas crossing the worker pipe)."""
    writer = _Writer(_MAGIC_RULES)
    fixed = bytearray()
    for rule in rules:
        fixed += _RULE_FIXED.pack(
            writer.ref(rule.strategy_id),
            writer.ref_or_none(rule.region),
            writer.ref(rule.reason),
            _NO_TIME if rule.expires_at is None else rule.expires_at,
        )
    writer.section(bytes(fixed))
    return writer.finish()


def unpack_rules(data: bytes) -> list[BlockingRule]:
    """Decode a rule table produced by :func:`pack_rules`."""
    reader = _Reader(data, _MAGIC_RULES)
    strings = reader.strings
    rules: list[BlockingRule] = []
    for strategy_ref, region_ref, reason_ref, expires_at in (
        _RULE_FIXED.iter_unpack(reader.section())
    ):
        rules.append(BlockingRule(
            strategy_id=strings[strategy_ref],
            region=None if region_ref == _NONE_REF else strings[region_ref],
            reason=strings[reason_ref],
            expires_at=None if expires_at == _NO_TIME else expires_at,
        ))
    return rules


# ----------------------------------------------------------------------
# detection digests (per-flush observation feed for the online A1-A3/R4
# detector suite)
# ----------------------------------------------------------------------
#: sid, first_at, first_alert_id, title, description, severity, service,
#: last_at.
_CATALOG_FIXED = struct.Struct("<IdIIIBId")
#: sid, region, hour bucket, count, transient, steady_manual,
#: steady_cleared, steady duration sum.
_DETSTAT_FIXED = struct.Struct("<IIqqqqqd")
#: occurred_at, sid, doc index.
_DOCROW_FIXED = struct.Struct("<dII")


def pack_detection(catalog, stats, docs, doc_rows) -> bytes:
    """Encode one plane's per-flush detection digest.

    The payload is deliberately plain tuples/lists (no dataclasses) so
    this codec has no import path into the detector suite:

    * ``catalog`` — ``(sid, first_at, first_alert_id, title,
      description, severity_int, service, last_at)`` rows: the strategy
      metadata the stream revealed this flush (A1/A3/A2 classes);
    * ``stats`` — ``(sid, region, hour_bucket, count, transient,
      steady_manual, steady_cleared, steady_duration_sum, times)`` rows:
      the A2 lifecycle statistics, with up to the first
      ``repeat_window_count`` raw event times per bucket;
    * ``docs`` — deduplicated ``(bucket ids, counts)`` hashed documents;
    * ``doc_rows`` — ``(occurred_at, sid, doc_index)`` references into
      ``docs``: the R4 sketch feed.
    """
    writer = _Writer(_MAGIC_DETECTION)
    fixed = bytearray()
    for sid, first_at, first_id, title, description, severity, service, last_at in catalog:
        fixed += _CATALOG_FIXED.pack(
            writer.ref(sid), first_at, writer.ref(first_id),
            writer.ref(title), writer.ref(description), severity,
            writer.ref(service), last_at,
        )
    writer.section(bytes(fixed))
    fixed = bytearray()
    time_offsets: list[int] = [0]
    flat_times: list[float] = []
    for sid, region, bucket, count, transient, manual, cleared, duration_sum, times in stats:
        fixed += _DETSTAT_FIXED.pack(
            writer.ref(sid), writer.ref(region), bucket,
            count, transient, manual, cleared, duration_sum,
        )
        flat_times.extend(times)
        time_offsets.append(len(flat_times))
    writer.section(bytes(fixed))
    writer.section(_array_bytes("I", time_offsets))
    writer.section(_array_bytes("d", flat_times))
    doc_offsets: list[int] = [0]
    flat_ids: list[int] = []
    flat_counts: list[int] = []
    for ids, counts in docs:
        flat_ids.extend(ids)
        flat_counts.extend(counts)
        doc_offsets.append(len(flat_ids))
    writer.section(_array_bytes("I", doc_offsets))
    writer.section(_array_bytes("I", flat_ids))
    writer.section(_array_bytes("I", flat_counts))
    fixed = bytearray()
    for occurred_at, sid, doc_index in doc_rows:
        fixed += _DOCROW_FIXED.pack(occurred_at, writer.ref(sid), doc_index)
    writer.section(bytes(fixed))
    return writer.finish()


def unpack_detection(data):
    """Decode a digest produced by :func:`pack_detection`.

    Returns the same plain ``(catalog, stats, docs, doc_rows)`` tuple
    structure the packer consumed (``times``, ``ids``, ``counts`` come
    back as tuples).
    """
    reader = _Reader(data, _MAGIC_DETECTION)
    strings = reader.strings
    catalog = [
        (
            strings[sid_ref], first_at, strings[first_id_ref],
            strings[title_ref], strings[desc_ref], severity,
            strings[service_ref], last_at,
        )
        for sid_ref, first_at, first_id_ref, title_ref, desc_ref,
            severity, service_ref, last_at
        in _CATALOG_FIXED.iter_unpack(reader.section())
    ]
    stat_fixed = reader.section()
    time_offsets = _read_array("I", reader.section())
    flat_times = _read_array("d", reader.section())
    stats = [
        (
            strings[sid_ref], strings[region_ref], bucket,
            count, transient, manual, cleared, duration_sum,
            tuple(flat_times[time_offsets[index]:time_offsets[index + 1]]),
        )
        for index, (sid_ref, region_ref, bucket, count, transient,
                    manual, cleared, duration_sum)
        in enumerate(_DETSTAT_FIXED.iter_unpack(stat_fixed))
    ]
    doc_offsets = _read_array("I", reader.section())
    flat_ids = _read_array("I", reader.section())
    flat_counts = _read_array("I", reader.section())
    docs = [
        (
            tuple(flat_ids[doc_offsets[index]:doc_offsets[index + 1]]),
            tuple(flat_counts[doc_offsets[index]:doc_offsets[index + 1]]),
        )
        for index in range(len(doc_offsets) - 1)
    ]
    doc_rows = [
        (occurred_at, strings[sid_ref], doc_index)
        for occurred_at, sid_ref, doc_index
        in _DOCROW_FIXED.iter_unpack(reader.section())
    ]
    return catalog, stats, docs, doc_rows


# ----------------------------------------------------------------------
# plane-state snapshots (whole-region migration for live plane scale-out)
# ----------------------------------------------------------------------
_SESSION_FIXED = struct.Struct("<IIddI")
#: bucket_seconds, head, total, episode_started_at, episode_peak_rate,
#: episode_count, emerging_count, ingested.
_STORM_FIXED = struct.Struct("<dqqddqqq")

_PLANE_FLAG_STORM = 1
_PLANE_FLAG_COUNTER = 2
_PLANE_FLAG_EPISODE = 4
_PLANE_FLAG_HEAD = 8


def pack_plane_state(state) -> bytes:
    """Encode one region's whole plane state (a migration snapshot).

    ``state`` is a :class:`~repro.streaming.plane.PlaneRegionState`:
    open R2 sessions, open R3 components (member representatives plus
    union-find grouping), the R4 region state, the region's lifetime
    counter slice, retained artifacts, and the live R1 rule table (TTLs
    included).  Sessions and components share the outer string table;
    the artifact and rule payloads are embedded as their own framed
    blobs so the battle-tested aggregate/cluster/rule codecs are reused
    verbatim.  Byte-deterministic for a given input, like every wire
    payload.
    """
    storm = state.storm
    writer = _Writer(_MAGIC_PLANE)
    flags = 0
    if storm is not None:
        flags |= _PLANE_FLAG_STORM
        if storm.counts is not None:
            flags |= _PLANE_FLAG_COUNTER
        if storm.episode_started_at is not None:
            flags |= _PLANE_FLAG_EPISODE
        if storm.head is not None:
            flags |= _PLANE_FLAG_HEAD
    writer.section(struct.pack(
        "<IBqqqq",
        writer.ref(state.region),
        flags,
        *state.counters,
    ))
    # -- open R2 sessions ------------------------------------------------
    _write_alert_block(writer, [s.representative for s in state.sessions])
    fixed = bytearray()
    id_offsets: list[int] = []
    id_refs: list[int] = []
    id_refs_append = id_refs.append
    index_of = writer._index
    strings = writer._strings
    for session in state.sessions:
        fixed += _SESSION_FIXED.pack(
            writer.ref(session.strategy_id),
            writer.ref(session.region),
            session.first_at,
            session.last_at,
            session.count,
        )
        id_offsets.append(len(id_refs))
        # Inlined interning: alert-id lists dominate the session payload.
        for alert_id in session.alert_ids:
            ref = index_of.get(alert_id)
            if ref is None:
                ref = index_of[alert_id] = len(strings)
                strings.append(alert_id)
            id_refs_append(ref)
    id_offsets.append(len(id_refs))
    writer.section(bytes(fixed))
    writer.section(_array_bytes("I", id_offsets))
    writer.section(_array_bytes("I", id_refs))
    # -- open R3 components ---------------------------------------------
    members: list[Alert] = []
    offsets: list[int] = []
    max_times: list[float] = []
    for alerts, max_time in state.components:
        offsets.append(len(members))
        members.extend(alerts)
        max_times.append(max_time)
    offsets.append(len(members))
    _write_alert_block(writer, members)
    writer.section(_array_bytes("I", offsets))
    writer.section(_array_bytes("d", max_times))
    # -- R4 region state -------------------------------------------------
    if storm is not None:
        writer.section(_STORM_FIXED.pack(
            storm.bucket_seconds,
            storm.head if storm.head is not None else 0,
            storm.total,
            storm.episode_started_at
            if storm.episode_started_at is not None else 0.0,
            storm.episode_peak_rate,
            storm.episode_count,
            storm.emerging_count,
            storm.ingested,
        ))
        writer.section(_array_bytes("q", storm.counts or []))
        strategies = sorted(storm.last_seen)
        writer.section(_array_bytes(
            "I", [writer.ref(strategy) for strategy in strategies]
        ))
        writer.section(_array_bytes(
            "d", [storm.last_seen[strategy] for strategy in strategies]
        ))
    # -- embedded artifact/rule blobs ------------------------------------
    writer.section(pack_aggregates(state.retained_aggregates))
    writer.section(pack_clusters(state.retained_clusters))
    writer.section(pack_rules(state.rules))
    # -- sticky strategy -> shard pins -----------------------------------
    pins = sorted(state.shard_pins.items())
    writer.section(_array_bytes(
        "I", [writer.ref(strategy) for strategy, _ in pins]
    ))
    writer.section(_array_bytes("I", [shard for _, shard in pins]))
    return writer.finish()


def unpack_plane_state(data: bytes):
    """Decode a snapshot produced by :func:`pack_plane_state`."""
    from repro.streaming.dedup import OpenSession
    from repro.streaming.plane import PlaneRegionState
    from repro.streaming.storm import RegionStormState

    reader = _Reader(data, _MAGIC_PLANE)
    strings = reader.strings
    region_ref, flags, *counters = struct.unpack("<IBqqqq", reader.section())
    representatives = _read_alert_block(reader)
    session_fixed = reader.section()
    id_offsets = _read_array("I", reader.section())
    id_refs = _read_array("I", reader.section())
    sessions: list = []
    for index, row in enumerate(_SESSION_FIXED.iter_unpack(session_fixed)):
        strategy_ref, session_region_ref, first_at, last_at, count = row
        sessions.append(OpenSession(
            strategy_id=strings[strategy_ref],
            region=strings[session_region_ref],
            first_at=first_at,
            last_at=last_at,
            count=count,
            representative=representatives[index],
            alert_ids=[
                strings[ref]
                for ref in id_refs[id_offsets[index]:id_offsets[index + 1]]
            ],
        ))
    members = _read_alert_block(reader)
    offsets = _read_array("I", reader.section())
    max_times = _read_array("d", reader.section())
    components = [
        (members[offsets[index]:offsets[index + 1]], max_times[index])
        for index in range(len(max_times))
    ]
    storm = None
    if flags & _PLANE_FLAG_STORM:
        (bucket_seconds, head, total, episode_started_at, episode_peak_rate,
         episode_count, emerging_count, ingested) = _STORM_FIXED.unpack(
            reader.section()
        )
        counts = list(_read_array("q", reader.section()))
        strategy_refs = _read_array("I", reader.section())
        times = _read_array("d", reader.section())
        storm = RegionStormState(
            region=strings[region_ref],
            bucket_seconds=bucket_seconds,
            counts=counts if flags & _PLANE_FLAG_COUNTER else None,
            total=total,
            head=head if flags & _PLANE_FLAG_HEAD else None,
            episode_started_at=(
                episode_started_at if flags & _PLANE_FLAG_EPISODE else None
            ),
            episode_peak_rate=episode_peak_rate,
            last_seen={
                strings[ref]: times[index]
                for index, ref in enumerate(strategy_refs)
            },
            episode_count=episode_count,
            emerging_count=emerging_count,
            ingested=ingested,
        )
    retained_aggregates = unpack_aggregates(reader.section())
    retained_clusters = unpack_clusters(reader.section())
    rules = unpack_rules(reader.section())
    pin_refs = _read_array("I", reader.section())
    pin_shards = _read_array("I", reader.section())
    return PlaneRegionState(
        region=strings[region_ref],
        counters=list(counters),
        sessions=sessions,
        components=components,
        storm=storm,
        retained_aggregates=retained_aggregates,
        retained_clusters=retained_clusters,
        rules=rules,
        shard_pins={
            strings[ref]: pin_shards[index]
            for index, ref in enumerate(pin_refs)
        },
    )
