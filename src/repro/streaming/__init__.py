"""Online alert gateway: sharded ingestion + incremental mitigation.

The streaming counterpart of the batch mitigation pipeline (paper
§III-C run continuously, as the production system the paper studies
does): alerts enter one at a time, are routed across shards on a
consistent-hash ring, and flow through incremental versions of the
reaction chain — R1 blocking and R2 session-window dedup per shard, R3
windowed correlation over the merged representative stream, R4
storm/emerging detection on ring-buffer counters.  End-of-run volume
accounting reconciles exactly with
:class:`~repro.core.mitigation.pipeline.MitigationReport` on the same
in-order trace.
"""

from repro.streaming.correlator import OnlineCorrelator
from repro.streaming.dedup import OnlineAggregator, OpenSession
from repro.streaming.driver import drive_gateway
from repro.streaming.gateway import AlertGateway, GatewaySnapshot
from repro.streaming.processor import StreamProcessor
from repro.streaming.routing import ShardRouter, shard_key, template_of
from repro.streaming.sources import iter_jsonl_alerts, merge_ordered
from repro.streaming.stats import GatewayStats
from repro.streaming.storm import EmergingSignal, OnlineStormDetector, StormEpisode
from repro.streaming.windows import LatencyReservoir, RingCounter

__all__ = [
    "AlertGateway",
    "GatewaySnapshot",
    "GatewayStats",
    "StreamProcessor",
    "ShardRouter",
    "shard_key",
    "template_of",
    "OnlineAggregator",
    "OpenSession",
    "OnlineCorrelator",
    "OnlineStormDetector",
    "StormEpisode",
    "EmergingSignal",
    "RingCounter",
    "LatencyReservoir",
    "drive_gateway",
    "iter_jsonl_alerts",
    "merge_ordered",
]
