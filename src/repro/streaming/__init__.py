"""Online alert gateway: sharded ingestion + incremental mitigation.

The streaming counterpart of the batch mitigation pipeline (paper
§III-C run continuously, as the production system the paper studies
does): alerts enter one at a time or in micro-batches, are routed
across shards on a consistent-hash ring, and flow through incremental
versions of the reaction chain — R1 blocking and R2 session-window
dedup per shard, R3 windowed correlation over the merged representative
stream, R4 storm/emerging detection on ring-buffer counters.  End-of-run
volume accounting reconciles exactly with
:class:`~repro.core.mitigation.pipeline.MitigationReport` on the same
in-order trace — for every backend, shard count, and flush size.

Choosing a backend (``AlertGateway(backend=...)``):

* ``serial`` (default) — shards run inline.  Lowest latency per event,
  zero moving parts; right for tests, simulations, and modest volumes.
  Pair with ``ingest_batch`` + ``flush_size`` ≥ 256 to amortise
  per-event overhead (~2-4x throughput on one core).
* ``thread`` — shards of each flush cycle run on a worker pool.  Shard
  state stays in-process, so rebalancing and draining stay cheap; the
  batched path plus overlap across cores makes this the default choice
  for sustained high-volume replay.
* ``process`` — shards partitioned across worker processes; event
  batches are pickled over.  Escapes the GIL entirely, so it wins when
  per-event reaction work dominates serialisation (large windows, heavy
  rule sets, many cores); prefer big ``flush_size`` (≥ 1024) to keep
  the pickling amortised.

Tuning ``flush_size``: bigger flushes amortise routing/hand-off but
delay emission visibility by at most one flush (accounting is unchanged
— ``drain`` always reconciles exactly).  ``flush_interval`` bounds that
staleness in event time.  ``rebalance(n)`` re-shards a live gateway
without losing window state.
"""

from repro.streaming.backends import (
    BACKEND_NAMES,
    BatchResult,
    ProcessBackend,
    SerialBackend,
    ShardBackend,
    ShardDrainResult,
    ThreadBackend,
    make_backend,
)
from repro.streaming.correlator import OnlineCorrelator
from repro.streaming.dedup import OnlineAggregator, OpenSession
from repro.streaming.driver import drive_gateway
from repro.streaming.gateway import AlertGateway, GatewaySnapshot
from repro.streaming.processor import StreamProcessor
from repro.streaming.routing import ShardRouter, shard_key, template_of
from repro.streaming.sources import iter_jsonl_alerts, merge_ordered
from repro.streaming.stats import GatewayStats
from repro.streaming.storm import EmergingSignal, OnlineStormDetector, StormEpisode
from repro.streaming.windows import LatencyReservoir, RingCounter

__all__ = [
    "AlertGateway",
    "GatewaySnapshot",
    "GatewayStats",
    "StreamProcessor",
    "BACKEND_NAMES",
    "BatchResult",
    "ShardBackend",
    "ShardDrainResult",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "ShardRouter",
    "shard_key",
    "template_of",
    "OnlineAggregator",
    "OpenSession",
    "OnlineCorrelator",
    "OnlineStormDetector",
    "StormEpisode",
    "EmergingSignal",
    "RingCounter",
    "LatencyReservoir",
    "drive_gateway",
    "iter_jsonl_alerts",
    "merge_ordered",
]
