"""Online alert gateway: region-partitioned planes + incremental mitigation.

The streaming counterpart of the batch mitigation pipeline (paper
§III-C run continuously, as the production system the paper studies
does): alerts enter one at a time or in micro-batches and flow through a
two-level partition — regions map to execution planes, keys map to
shards within a plane — running incremental versions of the whole
reaction chain *inside the planes*: R1 blocking and R2 session-window
dedup per shard, R3 windowed correlation over each plane's merged
representative stream, R4 storm/emerging detection on each plane's
ring-buffer counters.  End-of-run volume accounting reconciles exactly
with :class:`~repro.core.mitigation.pipeline.MitigationReport` on the
same in-order trace — for every backend, plane count, shard count, and
flush size.

Choosing a backend (``AlertGateway(backend=...)``):

* ``serial`` (default) — planes run inline.  Lowest latency per event,
  zero moving parts; right for tests, simulations, and modest volumes.
  Pair with ``ingest_batch`` + ``flush_size`` ≥ 256 to amortise
  per-event overhead; on multi-region streams add planes so R4 sees
  contiguous per-region runs instead of interleavings.
* ``thread`` — planes of each flush cycle run on a worker pool.  Plane
  state stays in-process, so rebalancing and draining stay cheap; R3/R4
  execute on pool threads, off the gateway loop.
* ``process`` — planes partitioned across worker processes; batches
  cross the pipe in the struct-packed :mod:`~repro.streaming.wire`
  format and flush replies are bare counters.  Escapes the GIL
  entirely; parallelism scales with ``n_planes`` (the distribution
  unit), so pair it with as many planes as you have busy regions and
  prefer big ``flush_size`` (≥ 1024).

Tuning ``n_planes``: planes partition by region, shards by alert key —
add planes to parallelise R3 correlation and R4 detection (they are
plane-local), add shards to spread R1/R2 key skew within a plane.
``flush_size`` trades emission staleness for amortisation exactly as
before; ``flush_interval`` bounds staleness in event time.
``rebalance(n)`` re-shards every live plane without losing window state.
``ingress_lanes=N`` (with ``n_planes >= N``) moves the buffered ingest
path onto partitioned lane threads (:mod:`~repro.streaming.lanes`) so
the feed itself stops being the bottleneck — identical end-of-run
accounting, near-linear multi-core scaling on the ``process`` backend.
On the ``process`` backend lanes hand encoded batches to workers over
zero-copy shared-memory rings (:mod:`~repro.streaming.rings`;
``lane_transport="pipe"`` restores the classic pickled hand-off), and
rule learning / streaming QoA compose with lanes through the gateway's
lane-aware flush barrier — identical learned timelines to one lane.
"""

from repro.streaming.backends import (
    BACKEND_NAMES,
    LANE_TRANSPORTS,
    PlaneBackend,
    ProcessPlaneBackend,
    SerialPlaneBackend,
    ThreadPlaneBackend,
    make_backend,
)
from repro.streaming.correlator import OnlineCorrelator
from repro.streaming.dedup import OnlineAggregator, OpenSession
from repro.streaming.detectors import STORM_HOUR_THRESHOLD, StreamingDetectorSuite
from repro.streaming.driver import drive_gateway
from repro.streaming.fleet import (
    CircuitBreaker,
    FleetError,
    WorkerDiedError,
    WorkerTimeoutError,
)
from repro.streaming.gateway import AlertGateway, GatewaySnapshot
from repro.streaming.lanes import LANE_JOIN_TIMEOUT, LaneIngress
from repro.streaming.learning import (
    LearnerConfig,
    OnlineRuleLearner,
    RuleDelta,
    RuleEvent,
    rule_set_divergence,
)
from repro.streaming.qoa import StreamQoA, StreamQoAScorer, measure_stream_qoa
from repro.streaming.plane import (
    PlaneConfig,
    PlaneDrainResult,
    PlaneFlushResult,
    PlaneRegionState,
    PlaneSnapshot,
    RegionPlane,
)
from repro.streaming.processor import StreamProcessor
from repro.streaming.rings import RingError, SpscRing
from repro.streaming.routing import PlaneRouter, ShardRouter, shard_key, template_of
from repro.streaming.sources import (
    iter_jsonl_alerts,
    merge_ordered,
    partition_by_region,
    partition_jsonl_by_region,
)
from repro.streaming.stats import GatewayStats
from repro.streaming.storm import (
    EmergingSignal,
    OnlineStormDetector,
    RegionStormState,
    StormEpisode,
)
from repro.streaming.windows import LatencyReservoir, RingCounter
from repro.streaming.wire import (
    AlertBatchBuilder,
    pack_aggregates,
    pack_alerts,
    pack_clusters,
    pack_detection,
    pack_plane_state,
    unpack_aggregates,
    unpack_alerts,
    unpack_clusters,
    unpack_detection,
    unpack_plane_state,
)

__all__ = [
    "AlertGateway",
    "GatewaySnapshot",
    "GatewayStats",
    "StreamProcessor",
    "BACKEND_NAMES",
    "PlaneBackend",
    "SerialPlaneBackend",
    "ThreadPlaneBackend",
    "ProcessPlaneBackend",
    "make_backend",
    "PlaneConfig",
    "PlaneFlushResult",
    "PlaneSnapshot",
    "PlaneDrainResult",
    "PlaneRegionState",
    "RegionPlane",
    "PlaneRouter",
    "ShardRouter",
    "shard_key",
    "template_of",
    "OnlineAggregator",
    "OpenSession",
    "OnlineCorrelator",
    "StreamingDetectorSuite",
    "STORM_HOUR_THRESHOLD",
    "LearnerConfig",
    "OnlineRuleLearner",
    "RuleDelta",
    "RuleEvent",
    "rule_set_divergence",
    "StreamQoA",
    "StreamQoAScorer",
    "measure_stream_qoa",
    "OnlineStormDetector",
    "StormEpisode",
    "EmergingSignal",
    "RegionStormState",
    "RingCounter",
    "LatencyReservoir",
    "drive_gateway",
    "FleetError",
    "WorkerDiedError",
    "WorkerTimeoutError",
    "CircuitBreaker",
    "LaneIngress",
    "LANE_JOIN_TIMEOUT",
    "LANE_TRANSPORTS",
    "SpscRing",
    "RingError",
    "iter_jsonl_alerts",
    "merge_ordered",
    "partition_by_region",
    "partition_jsonl_by_region",
    "AlertBatchBuilder",
    "pack_alerts",
    "unpack_alerts",
    "pack_aggregates",
    "unpack_aggregates",
    "pack_clusters",
    "unpack_clusters",
    "pack_detection",
    "unpack_detection",
    "pack_plane_state",
    "unpack_plane_state",
]
