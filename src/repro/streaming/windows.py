"""Bounded sliding-window primitives for the streaming processors.

Everything here is O(1) memory in stream length: a time-bucketed ring
counter (the R4 rate window), and a fixed-capacity reservoir for latency
percentiles.  These are the building blocks the ISSUE's "bounded deques
and incremental counters" requirement refers to — no structure in this
module ever grows with the number of events ingested.
"""

from __future__ import annotations

import math

from repro.common.validation import require_positive

__all__ = ["RingCounter", "LatencyReservoir"]


class RingCounter:
    """Event counts over a sliding time window of ``n_buckets`` buckets.

    Advancing to a new bucket zeroes every bucket skipped since the last
    event, so sparse streams cost O(buckets skipped), never O(elapsed
    time).  ``total()`` is maintained incrementally.
    """

    def __init__(self, bucket_seconds: float = 60.0, n_buckets: int = 60) -> None:
        require_positive(bucket_seconds, "bucket_seconds")
        require_positive(n_buckets, "n_buckets")
        self._bucket_seconds = float(bucket_seconds)
        self._n = int(n_buckets)
        self._counts = [0] * self._n
        self._total = 0
        self._head: int | None = None  # absolute bucket index of the newest bucket

    @property
    def window_seconds(self) -> float:
        """The span the counter covers."""
        return self._bucket_seconds * self._n

    def _bucket_of(self, time: float) -> int:
        return int(math.floor(time / self._bucket_seconds))

    def export_state(self) -> tuple[float, list[int], int, int | None]:
        """The counter's full state: (bucket_seconds, counts, total, head).

        Together with :meth:`restore` this is what lets a plane
        migration move a region's rate window intact — the counts list
        is copied, so the exported state is immune to further ingestion
        on this instance.
        """
        return self._bucket_seconds, list(self._counts), self._total, self._head

    @classmethod
    def restore(
        cls,
        bucket_seconds: float,
        counts: list[int],
        total: int,
        head: int | None,
    ) -> "RingCounter":
        """Rebuild a counter from :meth:`export_state` output."""
        counter = cls(bucket_seconds, len(counts))
        counter._counts = list(counts)
        counter._total = int(total)
        counter._head = head
        return counter

    def add(self, time: float, count: int = 1) -> None:
        """Count ``count`` events at ``time`` (non-decreasing times)."""
        bucket = self._bucket_of(time)
        if self._head is None:
            self._head = bucket
        elif bucket > self._head:
            steps = min(bucket - self._head, self._n)
            for offset in range(1, steps + 1):
                slot = (self._head + offset) % self._n
                self._total -= self._counts[slot]
                self._counts[slot] = 0
            self._head = bucket
        elif bucket < self._head - self._n + 1:
            return  # older than the window: nothing to record
        self._counts[bucket % self._n] += count
        self._total += count

    def total(self, now: float | None = None) -> int:
        """Events within the window ending at ``now`` (default: newest seen)."""
        if self._head is None:
            return 0
        if now is not None:
            bucket = self._bucket_of(now)
            if bucket > self._head:
                # Expire buckets that fell out of the window without mutating.
                expired = min(bucket - self._head, self._n)
                stale = sum(
                    self._counts[(self._head + offset) % self._n]
                    for offset in range(1, expired + 1)
                )
                return self._total - stale
        return self._total

    def rate_per_hour(self, now: float | None = None) -> float:
        """Current windowed count scaled to an hourly rate."""
        return self.total(now) * 3600.0 / self.window_seconds

    def add_and_rate(self, time: float) -> float:
        """``add(time)`` then ``rate_per_hour(time)`` in one bucket pass.

        The R4 detector does both on every event; fusing them computes
        the bucket index once and skips the second expiry scan (after
        ``add``, ``time``'s bucket is the head, so no bucket is stale).
        """
        self.add(time)
        return self._total * 3600.0 / self.window_seconds

    def add_run(self, times: list[float], start: int, stop: int,
                out: list[float]) -> None:
        """``add_and_rate`` for a run ``times[start:stop]``, appending to ``out``.

        The run-compressed R4 batch path: all counter state is bound to
        locals once per run instead of once per event, which is where a
        region-partitioned plane wins on interleaved multi-region streams
        — its batches are contiguous per-region runs.  Times within the
        run must be non-decreasing (the per-region sub-stream is).
        """
        bucket_seconds = self._bucket_seconds
        n = self._n
        counts = self._counts
        total = self._total
        head = self._head
        scale = 3600.0 / (bucket_seconds * n)
        append = out.append
        for index in range(start, stop):
            # int() == floor for the non-negative times Alert validates.
            bucket = int(times[index] / bucket_seconds)
            if head is None:
                head = bucket
            elif bucket > head:
                steps = bucket - head
                if steps > n:
                    steps = n
                for offset in range(1, steps + 1):
                    slot = (head + offset) % n
                    total -= counts[slot]
                    counts[slot] = 0
                head = bucket
            elif bucket < head - n + 1:
                append(total * scale)  # older than the window: not recorded
                continue
            counts[bucket % n] += 1
            total += 1
            append(total * scale)
        self._total = total
        self._head = head


class LatencyReservoir:
    """Fixed-capacity sample of per-event latencies.

    Keeps running count/sum exactly and a bounded sample for percentile
    estimates; once full, new observations overwrite round-robin so the
    sample tracks the recent regime.
    """

    def __init__(self, capacity: int = 8192) -> None:
        require_positive(capacity, "capacity")
        self._capacity = int(capacity)
        self._samples: list[float] = []
        self._cursor = 0
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        self.count += 1
        self.total += seconds
        self._sample(seconds)

    def observe_batch(self, total_seconds: float, events: int) -> None:
        """Record a flush cycle of ``events`` taking ``total_seconds``.

        The count and the exact mean cover every event; the percentile
        sample receives one entry — the cycle's per-event mean — so
        quantiles report amortised per-event latency rather than the
        cycle wall time.
        """
        if events <= 0:
            return
        self.count += events
        self.total += total_seconds
        self._sample(total_seconds / events)

    def _sample(self, seconds: float) -> None:
        if len(self._samples) < self._capacity:
            self._samples.append(seconds)
        else:
            self._samples[self._cursor] = seconds
            self._cursor = (self._cursor + 1) % self._capacity

    @property
    def mean(self) -> float:
        """Exact mean over every observation."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the retained sample."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]
