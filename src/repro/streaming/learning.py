"""Online R1 rule learning: streaming A4/A5 detection drives the blocker.

The batch pipeline derives blocking rules once, from a finished trace
(:meth:`~repro.core.mitigation.pipeline.MitigationPipeline.derive_blocker`).
In production the alert population drifts: strategies turn noisy, get
fixed, and turn noisy again — so the rules must be *learned while the
stream runs* and retired when their evidence fades, the "when to
invalidate these rules" problem the paper's §IV raises.

:class:`OnlineRuleLearner` closes that loop at the gateway:

* every flush cycle, the planes report **observation digests** — per
  ``(strategy, region)`` counts of alerts seen, R1-blocked, and transient
  (short-lived auto-cleared) events, computed over the *pre-blocking*
  stream so the learner's evidence is independent of its own rules;
* the learner folds digests into per-key sliding windows and runs the
  streaming analogues of the A4 (transient/toggling) and A5 (repeating)
  noise detectors over them;
* strategies crossing a promotion threshold become live
  :class:`~repro.core.mitigation.blocking.BlockingRule` entries with a
  TTL (``expires_at = watermark + ttl``); every flush the evidence
  persists, the rule is **renewed** (its expiry pushed out), so a rule
  stays live exactly as long as its noise does, plus one TTL;
* rules whose strategy goes *clean* while still under observation are
  **demoted** (removed before expiry — precision decay); rules whose
  strategy merely goes quiet age out at their ``expires_at``.

The learner emits a :class:`RuleDelta` per flush; the gateway ships it
to the execution backend, which applies it to every plane's blocker
before the next flush — so the rule a flush learns first blocks alerts
in the flush after it, at the identical stream position on every
backend.  Every promotion/renewal/demotion/expiry is recorded as a
:class:`RuleEvent` with its stream position (``at_input``), which makes
the whole learned timeline replayable: applying the recorded deltas to a
plain batch :class:`AlertBlocker` at the recorded positions reproduces
the gateway's blocked count exactly (the property
``tests/properties/test_prop_learning.py`` pins down).

Renewal is unconditional (every flush with evidence), which is what
makes rule lifetime *monotone in TTL*: a rule is live at time ``t`` iff
some evidence flush ``d <= t`` exists with ``t < d + ttl`` and no
demotion signal in between — so a larger TTL can only grow the set of
blocked alerts, never shrink it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.validation import require_fraction, require_positive
from repro.core.mitigation.blocking import (
    AlertBlocker,
    BlockingRule,
    rule_from_dict,
    rule_to_dict,
)

__all__ = [
    "LearnerConfig",
    "Observation",
    "RuleEvent",
    "RuleDelta",
    "OnlineRuleLearner",
    "rule_set_divergence",
]

#: One plane-reported observation row:
#: ``(strategy_id, region, service, seen, blocked, transient, groups)``
#: — counts over one flush batch, ``seen``/``transient`` measured
#: *before* R1; ``service`` keys the adaptive per-(service, region)
#: threshold baselines.
Observation = tuple[str, str, str, int, int, int, int]


@dataclass(frozen=True, slots=True)
class LearnerConfig:
    """Thresholds of the streaming A4/A5 noise detectors.

    The promotion thresholds are deliberately *stricter* than the batch
    detectors' (:class:`~repro.core.antipatterns.base.DetectorThresholds`
    flags transient share >= 0.30 and 8-alert repeats): the online
    learner judges a sliding window, not a finished trace, so it trades
    recall for precision — the differential harness holds it to >= 0.9
    precision against the batch-derived rule set on stationary noise.
    """

    #: Sliding observation window (seconds of event time).
    window_seconds: float = 3600.0
    #: Minimum window volume before a strategy is judged at all.
    min_alerts: int = 20
    #: A4 promotion: transient share of the strategy's window volume.
    transient_fraction: float = 0.5
    #: A5 promotion: alerts of one (strategy, region) within the window.
    repeat_count: int = 30
    #: Rule time-to-live (event-time seconds past the promoting flush).
    rule_ttl: float = 4 * 3600.0
    #: Demotion: a live rule's strategy whose noisy-evidence score falls
    #: below this *fraction of promotion grade* — while still producing
    #: ``min_alerts``, so the verdict is evidence-of-clean, not absence
    #: of data — is retired before its TTL.  A strategy still repeating
    #: in one region scores at least ``min_alerts / repeat_count``, so
    #: ambiguous single-region volume is left to TTL expiry instead.
    demote_fraction: float = 0.2
    #: Per-(service, region) adaptive promotion thresholds.  When on,
    #: the learner tracks an EWMA baseline of each cell's transient
    #: share and repeat rate; cells whose baseline noise is high get
    #: their effective ``min_alerts`` / ``transient_fraction`` /
    #: ``repeat_count`` interpolated from the global values down toward
    #: the floors below, so chronic noise promotes earlier while quiet
    #: cells keep the strict global thresholds.  Off by default: the
    #: static judgment (and its golden timelines) is bit-unchanged.
    adaptive: bool = False
    #: EWMA step applied to a cell baseline per observing flush.
    baseline_decay: float = 0.5
    #: Hard floors the adaptive interpolation can never cross — the
    #: global-config guardrails that keep low-volume strategies in a
    #: noisy cell (a clean service sharing a region with a flapper)
    #: from being promoted on ambient evidence alone.
    min_alerts_floor: int = 8
    transient_fraction_floor: float = 0.3
    repeat_count_floor: int = 12

    def __post_init__(self) -> None:
        require_positive(self.window_seconds, "window_seconds")
        require_positive(self.min_alerts, "min_alerts")
        require_fraction(self.transient_fraction, "transient_fraction")
        require_positive(self.repeat_count, "repeat_count")
        require_positive(self.rule_ttl, "rule_ttl")
        require_fraction(self.demote_fraction, "demote_fraction")
        require_fraction(self.baseline_decay, "baseline_decay")
        require_positive(self.min_alerts_floor, "min_alerts_floor")
        require_fraction(self.transient_fraction_floor, "transient_fraction_floor")
        require_positive(self.repeat_count_floor, "repeat_count_floor")
        if self.adaptive:
            if self.min_alerts_floor > self.min_alerts:
                raise ValidationError("min_alerts_floor must not exceed min_alerts")
            if self.transient_fraction_floor > self.transient_fraction:
                raise ValidationError(
                    "transient_fraction_floor must not exceed transient_fraction"
                )
            if self.repeat_count_floor > self.repeat_count:
                raise ValidationError(
                    "repeat_count_floor must not exceed repeat_count"
                )


@dataclass(frozen=True, slots=True)
class RuleEvent:
    """One entry of the learned-rule timeline (the reviewable audit log)."""

    kind: str                     # promote | renew | demote | expire
    strategy_id: str
    at_input: int                 # gateway input_alerts when the delta applied
    at_time: float                # watermark at the learning flush
    expires_at: float | None      # rule expiry after this event (None = gone)
    reason: str = ""

    _KINDS = ("promote", "renew", "demote", "expire")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValidationError(f"kind must be one of {self._KINDS}, got {self.kind!r}")


@dataclass(slots=True)
class RuleDelta:
    """Rule-table changes of one learning step (shipped to the planes).

    ``removed`` holds the learner's *exact* retiring rule objects, not
    strategy ids: a strategy may also carry operator-configured rules,
    which must survive a learned rule's renewal, demotion, or expiry.
    """

    added: list[BlockingRule] = field(default_factory=list)
    removed: list[BlockingRule] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def apply_to(self, blocker: AlertBlocker) -> None:
        """Apply this delta to a blocker (removals first: renew = replace)."""
        for rule in self.removed:
            blocker.remove_rule(rule)
        blocker.add_rules(self.added)


@dataclass(slots=True)
class _KeyWindow:
    """Sliding per-(strategy, region) counters: (time, seen, transient)."""

    entries: list[tuple[float, int, int]] = field(default_factory=list)
    seen: int = 0
    transient: int = 0

    def add(self, at: float, seen: int, transient: int) -> None:
        self.entries.append((at, seen, transient))
        self.seen += seen
        self.transient += transient

    def prune(self, horizon: float) -> None:
        """Drop every entry before ``horizon``, wherever it sits.

        Entries arrive in watermark order on the live flush path, but
        nothing guarantees that in general (late out-of-order folds,
        hand-built windows in tests) — a positional cutoff that stops at
        the first in-window entry would strand stale pre-horizon counts
        forever, silently inflating A4/A5 evidence.
        """
        entries = self.entries
        if not any(entry[0] < horizon for entry in entries):
            return
        kept = [entry for entry in entries if entry[0] >= horizon]
        self.seen = sum(entry[1] for entry in kept)
        self.transient = sum(entry[2] for entry in kept)
        self.entries = kept


class OnlineRuleLearner:
    """Sliding-window A4/A5 detection promoting live R1 blocking rules."""

    def __init__(self, config: LearnerConfig | None = None) -> None:
        self.config = config or LearnerConfig()
        #: strategy -> region -> sliding window.  Strategy-major so one
        #: strategy's evidence is an O(its regions) lookup, and emptied
        #: windows are evicted, bounding memory to keys active within
        #: one window on the unbounded stream.
        self._windows: dict[str, dict[str, _KeyWindow]] = {}
        #: Live learned rules by strategy (the learner's intended table).
        self._live: dict[str, BlockingRule] = {}
        self.events: list[RuleEvent] = []
        self.promoted = 0
        self.renewed = 0
        self.demoted = 0
        self.expired = 0
        #: Every strategy ever promoted (the differential harness compares
        #: this set against the batch-derived rule set).
        self.ever_promoted: set[str] = set()
        #: Stream positions (``input_alerts``) of plane-topology changes
        #: (:meth:`note_topology_change`), for timeline alignment.
        self.scale_positions: list[int] = []
        #: Adaptive-threshold state (``config.adaptive``): per-(service,
        #: region) EWMA baselines ``[transient_share, repeat_rate]`` and
        #: the service each strategy last reported under.
        self._baselines: dict[tuple[str, str], list[float]] = {}
        self._service_of: dict[str, str] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def live_rules(self) -> list[BlockingRule]:
        """The currently-live learned rules (deterministic order)."""
        return [self._live[strategy] for strategy in sorted(self._live)]

    @property
    def active_rules(self) -> int:
        """Number of live learned rules."""
        return len(self._live)

    def counters(self) -> dict[str, int]:
        """Lifetime learner accounting (feeds ``GatewayStats``)."""
        return {
            "rules_promoted": self.promoted,
            "rules_renewed": self.renewed,
            "rules_demoted": self.demoted,
            "rules_expired": self.expired,
            "rules_active": self.active_rules,
        }

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """The learner's complete dynamic state, JSON-safe (checkpointing).

        Everything a restored learner needs to continue judging at the
        identical stream positions: sliding windows (totals are
        recomputed from the entries), live rules, the full event
        timeline, lifetime counters, and the promotion/scale history.
        The configuration is *not* included — it is construction-time,
        like the gateway's own topology.
        """
        return {
            "windows": {
                strategy_id: {
                    region: [list(entry) for entry in window.entries]
                    for region, window in regions.items()
                }
                for strategy_id, regions in self._windows.items()
            },
            "live": [
                [strategy_id, rule_to_dict(self._live[strategy_id])]
                for strategy_id in sorted(self._live)
            ],
            "events": [
                [e.kind, e.strategy_id, e.at_input, e.at_time, e.expires_at,
                 e.reason]
                for e in self.events
            ],
            "promoted": self.promoted,
            "renewed": self.renewed,
            "demoted": self.demoted,
            "expired": self.expired,
            "ever_promoted": sorted(self.ever_promoted),
            "scale_positions": list(self.scale_positions),
            "baselines": [
                [service, region, values[0], values[1]]
                for (service, region), values in sorted(self._baselines.items())
            ],
            "service_of": [
                [strategy_id, self._service_of[strategy_id]]
                for strategy_id in sorted(self._service_of)
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Adopt state captured by :meth:`export_state` (exact round trip)."""
        windows: dict[str, dict[str, _KeyWindow]] = {}
        for strategy_id, regions in state["windows"].items():
            restored: dict[str, _KeyWindow] = {}
            for region, entries in regions.items():
                window = _KeyWindow()
                for at, seen, transient in entries:
                    window.add(float(at), int(seen), int(transient))
                restored[str(region)] = window
            windows[str(strategy_id)] = restored
        self._windows = windows
        self._live = {
            str(strategy_id): rule_from_dict(row)
            for strategy_id, row in state["live"]
        }
        self.events = [
            RuleEvent(
                kind=kind, strategy_id=strategy_id, at_input=int(at_input),
                at_time=float(at_time),
                expires_at=None if expires_at is None else float(expires_at),
                reason=reason,
            )
            for kind, strategy_id, at_input, at_time, expires_at, reason
            in state["events"]
        ]
        self.promoted = int(state["promoted"])
        self.renewed = int(state["renewed"])
        self.demoted = int(state["demoted"])
        self.expired = int(state["expired"])
        self.ever_promoted = set(state["ever_promoted"])
        self.scale_positions = [int(at) for at in state["scale_positions"]]
        # Absent from pre-adaptive checkpoints.
        self._baselines = {
            (str(service), str(region)): [float(share), float(rate)]
            for service, region, share, rate in state.get("baselines", [])
        }
        self._service_of = {
            str(strategy_id): str(service)
            for strategy_id, service in state.get("service_of", [])
        }

    # ------------------------------------------------------------------
    # the learning step
    # ------------------------------------------------------------------
    def observe(
        self,
        observations: list[Observation],
        watermark: float | None,
        at_input: int,
    ) -> RuleDelta:
        """Fold one flush cycle's digests and return the rule delta.

        ``observations`` must arrive in a deterministic order (the
        gateway sorts flush results by plane id; within a plane the
        digest preserves batch order) — the learner itself iterates keys
        sorted, so the emitted delta is identical on every backend.
        ``at_input`` is the gateway's input count at this flush boundary,
        recorded on every event so the timeline is replayable.
        """
        if watermark is None:
            return RuleDelta()
        config = self.config
        adaptive = config.adaptive
        windows = self._windows
        touched: set[str] = set()
        cells: dict[tuple[str, str], list] = {}
        for strategy_id, region, service, seen, _blocked, transient, _groups in observations:
            regions = windows.get(strategy_id)
            if regions is None:
                windows[strategy_id] = regions = {}
            window = regions.get(region)
            if window is None:
                regions[region] = window = _KeyWindow()
            window.add(watermark, seen, transient)
            touched.add(strategy_id)
            if adaptive and seen:
                self._service_of[strategy_id] = service
                cell = cells.get((service, region))
                if cell is None:
                    cells[(service, region)] = [seen, transient, seen]
                else:
                    cell[0] += seen
                    cell[1] += transient
                    if seen > cell[2]:
                        cell[2] = seen
        if cells:
            self._update_baselines(cells)
        horizon = watermark - config.window_seconds
        for strategy_id in list(windows):
            regions = windows[strategy_id]
            for region in list(regions):
                window = regions[region]
                window.prune(horizon)
                if not window.entries:
                    del regions[region]
            if not regions:
                del windows[strategy_id]

        delta = RuleDelta()
        # Judge every strategy with a live rule plus everything touched
        # this flush — sorted, so event order is deterministic.
        for strategy_id in sorted(touched | set(self._live)):
            self._judge(strategy_id, watermark, at_input, delta)
        return delta

    def note_topology_change(self, at_input: int) -> None:
        """Record a plane scale event (``gateway.scale_planes``).

        Evidence digests are keyed by ``(strategy, region)`` — plane-
        agnostic by construction — so a region's migration re-homes its
        digests implicitly: every future flush contributes exactly one
        row per key regardless of which plane reports it, which is what
        makes rule evidence impossible to lose *or* double-count across
        a migration (``tests/streaming/test_scale.py`` pins this down by
        re-attributing the same digest rows across plane splits).  The
        learner therefore only records the stream position, so replay
        and differential harnesses can align learned timelines with the
        scale schedule.
        """
        self.scale_positions.append(int(at_input))

    def finish(self, watermark: float | None, at_input: int) -> RuleDelta:
        """Expire every live rule at end of stream (drain bookkeeping)."""
        delta = RuleDelta()
        for strategy_id in sorted(self._live):
            rule = self._live.pop(strategy_id)
            self.expired += 1
            delta.removed.append(rule)
            self.events.append(RuleEvent(
                kind="expire", strategy_id=strategy_id, at_input=at_input,
                at_time=watermark if watermark is not None else rule.expires_at or 0.0,
                expires_at=None, reason="stream drained",
            ))
        return delta

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _update_baselines(self, cells: dict[tuple[str, str], list]) -> None:
        """Fold one flush's per-(service, region) totals into the EWMAs.

        ``cells`` maps a cell to ``[seen, transient, peak strategy
        seen]`` over the flush batch.  The first observation seeds the
        baseline directly (no zero-warmup lag); later flushes move it by
        ``baseline_decay`` — deterministic because each cell's sequence
        of folds is fixed by the flush schedule, not by dict order.
        """
        decay = self.config.baseline_decay
        repeat_count = self.config.repeat_count
        baselines = self._baselines
        for cell, (seen, transient, peak) in cells.items():
            share = transient / seen
            rate = min(1.0, peak / repeat_count)
            values = baselines.get(cell)
            if values is None:
                baselines[cell] = [share, rate]
            else:
                values[0] += decay * (share - values[0])
                values[1] += decay * (rate - values[1])

    def _cell_thresholds(self, cell: tuple[str, str]) -> tuple[float, float, float]:
        """Effective (min_alerts, transient_fraction, repeat_count).

        The cell's baseline noise — its EWMA transient share over the
        global A4 fraction, or its EWMA repeat rate, whichever is louder,
        capped at 1 — interpolates each threshold from the global value
        (noise 0) down to its floor (noise 1).  Unseen cells judge with
        the global thresholds exactly.
        """
        config = self.config
        values = self._baselines.get(cell)
        if values is None:
            return (
                float(config.min_alerts),
                config.transient_fraction,
                float(config.repeat_count),
            )
        noise = min(1.0, max(values[0] / config.transient_fraction, values[1]))
        return (
            config.min_alerts - noise * (config.min_alerts - config.min_alerts_floor),
            config.transient_fraction
            - noise * (config.transient_fraction - config.transient_fraction_floor),
            config.repeat_count
            - noise * (config.repeat_count - config.repeat_count_floor),
        )

    def _evidence(self, strategy_id: str) -> tuple[float, int, str, float]:
        """(noisy score, window volume, evidence text, volume gate).

        The score is the max of the A4 signal (transient share) and the
        A5 signal (peak per-region window count over the repeat
        threshold), both in [0, ~]; >= 1.0 means a promotion threshold
        was crossed.  Computed purely from pre-R1 observations, so it is
        independent of the learner's own rules (and of their TTL).

        With ``config.adaptive`` the thresholds come from the strategy's
        dominant (service, region) cell — global values scaled toward
        the configured floors by the cell's EWMA noise baseline — and
        the returned volume gate is the cell's effective ``min_alerts``
        (the static global otherwise).
        """
        config = self.config
        seen = 0
        transient = 0
        peak_region = 0
        dominant_region: str | None = None
        for region in sorted(self._windows.get(strategy_id, ())):
            window = self._windows[strategy_id][region]
            seen += window.seen
            transient += window.transient
            if window.seen > peak_region:
                peak_region = window.seen
                dominant_region = region
        if seen == 0:
            return 0.0, 0, "no window volume", float(config.min_alerts)
        if config.adaptive and dominant_region is not None:
            cell = (self._service_of.get(strategy_id, ""), dominant_region)
            min_alerts, transient_fraction, repeat_count = (
                self._cell_thresholds(cell)
            )
        else:
            min_alerts = float(config.min_alerts)
            transient_fraction = config.transient_fraction
            repeat_count = float(config.repeat_count)
        transient_share = transient / seen
        a4 = transient_share / transient_fraction
        a5 = peak_region / repeat_count
        if a4 >= a5:
            evidence = f"A4: transient share {transient_share:.0%} of {seen} in window"
        else:
            evidence = f"A5: {peak_region} alerts of one region in window"
        return max(a4, a5), seen, evidence, min_alerts

    def _judge(
        self, strategy_id: str, watermark: float, at_input: int, delta: RuleDelta,
    ) -> None:
        config = self.config
        live = self._live.get(strategy_id)
        score, seen, evidence, volume_gate = self._evidence(strategy_id)
        # The demotion gate below stays at the global ``min_alerts``
        # regardless of adaptation: retiring a rule needs evidence-of-
        # clean at full volume, not a noise-scaled shortcut.
        noisy = seen >= volume_gate and score >= 1.0

        if live is not None and live.expires_at is not None and (
            live.expires_at <= watermark
        ) and not noisy:
            # Aged out: the strategy went quiet and the TTL ran down.
            del self._live[strategy_id]
            self.expired += 1
            delta.removed.append(live)
            self.events.append(RuleEvent(
                kind="expire", strategy_id=strategy_id, at_input=at_input,
                at_time=watermark, expires_at=None,
                reason=f"TTL elapsed at {live.expires_at:.0f}",
            ))
            return

        if noisy:
            rule = BlockingRule(
                strategy_id=strategy_id,
                reason=f"learned {evidence}",
                expires_at=watermark + config.rule_ttl,
            )
            if live is None:
                self._live[strategy_id] = rule
                self.promoted += 1
                self.ever_promoted.add(strategy_id)
                delta.added.append(rule)
                self.events.append(RuleEvent(
                    kind="promote", strategy_id=strategy_id, at_input=at_input,
                    at_time=watermark, expires_at=rule.expires_at,
                    reason=evidence,
                ))
            else:
                # Unconditional renewal: expiry tracks the latest evidence,
                # which is what keeps rule lifetime monotone in TTL.
                self._live[strategy_id] = rule
                self.renewed += 1
                delta.removed.append(live)
                delta.added.append(rule)
                self.events.append(RuleEvent(
                    kind="renew", strategy_id=strategy_id, at_input=at_input,
                    at_time=watermark, expires_at=rule.expires_at,
                    reason=evidence,
                ))
            return

        if live is not None and seen >= config.min_alerts and (
            score < config.demote_fraction
        ):
            # Precision decay: the strategy is alerting plenty but the
            # noise evidence is gone — blocking it now drops real signal.
            del self._live[strategy_id]
            self.demoted += 1
            delta.removed.append(live)
            self.events.append(RuleEvent(
                kind="demote", strategy_id=strategy_id, at_input=at_input,
                at_time=watermark, expires_at=None,
                reason=f"noise score {score:.2f} below "
                       f"{config.demote_fraction} on {seen} window alerts",
            ))


def rule_set_divergence(
    learned: set[str], batch: set[str],
) -> dict[str, float]:
    """Precision/recall of the learned strategy set against the batch set.

    The differential harness's headline numbers: precision is the share
    of online-promoted strategies the batch detectors would also flag;
    recall is the share of batch-flagged strategies the online learner
    found.
    """
    # Vacuous precision: no promotions means no false positives.
    precision = len(learned & batch) / len(learned) if learned else 1.0
    recall = 1.0 if not batch else len(learned & batch) / len(batch)
    return {
        "learned_rules": float(len(learned)),
        "batch_rules": float(len(batch)),
        "agreeing_rules": float(len(learned & batch)),
        "precision": precision,
        "recall": recall,
    }
