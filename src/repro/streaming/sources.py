"""Alert sources for the gateway: traces, JSONL files, merged streams.

A source is just an iterator of :class:`~repro.alerting.alert.Alert` in
occurrence order (for in-memory traces that is
:meth:`~repro.workload.trace.AlertTrace.iter_ordered`).  JSONL reading
is lazy — one line decoded per event — so a multi-gigabyte alert log
streams through the gateway with constant memory, which is the point of
the subsystem.

For the partitioned ingress lanes, :func:`partition_by_region` splits a
source into per-region substreams *up front* (each substream preserves
arrival order, so concatenating them back in order of the original
stream is the identity) — the natural feed shape for per-region lanes,
since a region's plane assignment never changes.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterable, Iterator

from repro.alerting.alert import Alert
from repro.io.jsonl import read_jsonl
from repro.io.traces import alert_from_dict

__all__ = [
    "iter_jsonl_alerts",
    "merge_ordered",
    "partition_by_region",
    "partition_jsonl_by_region",
]


def iter_jsonl_alerts(path: str | Path) -> Iterator[Alert]:
    """Lazily decode one alert per line from an ``alerts.jsonl`` file."""
    for record in read_jsonl(path):
        yield alert_from_dict(record)


def merge_ordered(*sources: Iterable[Alert]) -> Iterator[Alert]:
    """Merge several time-ordered sources into one time-ordered stream.

    Models multiple regions/collectors feeding one gateway; each input
    must itself be ordered by ``occurred_at``.
    """
    return heapq.merge(*sources, key=lambda alert: alert.occurred_at)


def partition_by_region(source: Iterable[Alert]) -> dict[str, list[Alert]]:
    """Split one source into per-region substreams, preserving order.

    Keys appear in first-seen region order — the same order a
    :class:`~repro.streaming.routing.PlaneRouter` observes regions in,
    so ``router.assign_all(partition)`` reproduces the exact plane
    assignments a record-at-a-time replay would make.  A stable
    partition: within each region the alerts keep their arrival order.
    """
    by_region: dict[str, list[Alert]] = {}
    for alert in source:
        bucket = by_region.get(alert.region)
        if bucket is None:
            by_region[alert.region] = bucket = []
        bucket.append(alert)
    return by_region


def partition_jsonl_by_region(path: str | Path) -> dict[str, list[Alert]]:
    """Split an ``alerts.jsonl`` file into per-region substreams.

    One pass over the file; same contract as :func:`partition_by_region`
    (first-seen key order, stable within each region).
    """
    return partition_by_region(iter_jsonl_alerts(path))
