"""Alert sources for the gateway: traces, JSONL files, merged streams.

A source is just an iterator of :class:`~repro.alerting.alert.Alert` in
occurrence order (for in-memory traces that is
:meth:`~repro.workload.trace.AlertTrace.iter_ordered`).  JSONL reading
is lazy — one line decoded per event — so a multi-gigabyte alert log
streams through the gateway with constant memory, which is the point of
the subsystem.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterable, Iterator

from repro.alerting.alert import Alert
from repro.io.jsonl import read_jsonl
from repro.io.traces import alert_from_dict

__all__ = ["iter_jsonl_alerts", "merge_ordered"]


def iter_jsonl_alerts(path: str | Path) -> Iterator[Alert]:
    """Lazily decode one alert per line from an ``alerts.jsonl`` file."""
    for record in read_jsonl(path):
        yield alert_from_dict(record)


def merge_ordered(*sources: Iterable[Alert]) -> Iterator[Alert]:
    """Merge several time-ordered sources into one time-ordered stream.

    Models multiple regions/collectors feeding one gateway; each input
    must itself be ordered by ``occurred_at``.
    """
    return heapq.merge(*sources, key=lambda alert: alert.occurred_at)
