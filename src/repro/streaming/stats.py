"""Gateway accounting: throughput, latency, volume reduction, plane stats.

:class:`GatewayStats` mirrors the stage-by-stage volume accounting of the
batch :class:`~repro.core.mitigation.pipeline.MitigationReport` — raw in,
blocked out, aggregates, clusters — and adds the streaming-only
dimensions: per-event processing latency (exact mean, sampled p50/p99),
wall-clock throughput, and per-plane accounting for the
region-partitioned execution planes (:attr:`planes`, refreshed by the
gateway at every flush barrier).  :meth:`reconcile` checks the gateway
against a batch report on the same trace, the invariant the integration
tests and the ``repro stream --reconcile`` CLI pin down; :meth:`snapshot`
returns the whole accounting — totals plus planes — as one plain dict
for dashboards and the CLI report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.mitigation.pipeline import MitigationReport
from repro.streaming.windows import LatencyReservoir

__all__ = ["GatewayStats"]


def _deep_copy_jsonish(value):
    """Deep-copy a JSON-shaped value (dicts/lists/scalars only)."""
    if isinstance(value, dict):
        return {key: _deep_copy_jsonish(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_deep_copy_jsonish(item) for item in value]
    return value


@dataclass(slots=True)
class GatewayStats:
    """Running counters of one gateway instance."""

    n_shards: int = 1
    n_planes: int = 1
    backend: str = "serial"
    n_workers: int = 1
    flush_size: int = 1
    input_alerts: int = 0
    blocked_alerts: int = 0
    aggregates_emitted: int = 0
    clusters_finalized: int = 0
    storm_episodes: int = 0
    emerging_flags: int = 0
    late_events: int = 0
    flushes: int = 0
    rebalances: int = 0
    #: Live plane scale events (``gateway.scale_planes``): count plus a
    #: log of ``{at_input, from_planes, to_planes, moved_regions}`` rows.
    plane_scales: int = 0
    scales: list = field(default_factory=list)
    #: Ingress-lane backpressure: blocking puts against a full bounded
    #: lane queue (a slow worker throttling ingest instead of buffering
    #: without limit).  Zero on the classic single-lane path.
    lane_stalls: int = 0
    #: Worker-fleet supervision (``process`` backend): lifetime worker
    #: deaths observed mid-request, lifetime snapshot+journal respawns
    #: (``worker_recovery=True``), and the number of workers whose
    #: circuit breaker is currently open (a gauge — open breakers steer
    #: lane traffic off the shared-memory ring onto the journaled pipe).
    worker_deaths: int = 0
    worker_recoveries: int = 0
    breaker_open: int = 0
    watermark: float | None = None
    #: Online R1 rule learning (``AlertGateway(learn_rules=True)``).
    learning: bool = False
    rules_promoted: int = 0
    rules_renewed: int = 0
    rules_demoted: int = 0
    rules_expired: int = 0
    rules_active: int = 0
    #: Streaming QoA (``AlertGateway(enable_qoa=True)``): per-strategy
    #: score dicts, frozen at drain (live scores via ``gateway.qoa``).
    qoa_enabled: bool = False
    qoa: dict[str, dict] | None = None
    #: Online anti-pattern detection (``AlertGateway(detect_antipatterns=
    #: True)``): the detector suite's summary — strategies observed, A1/
    #: A2/A3 finding counts, R4 sketch flags — frozen at drain (live
    #: access via ``gateway.detectors``).
    detect_enabled: bool = False
    detection: dict | None = None
    #: Per-plane accounting as plain dicts (``plane_id`` → counters +
    #: ``regions``), refreshed from plane flush/drain results.
    planes: dict[int, dict] = field(default_factory=dict)
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    started_wall: float = field(default_factory=time.perf_counter)
    finished_wall: float | None = None

    # -- volume accounting (MitigationReport-compatible) ---------------
    @property
    def after_blocking(self) -> int:
        """Alerts surviving R1."""
        return self.input_alerts - self.blocked_alerts

    @property
    def after_aggregation(self) -> int:
        """Aggregated groups emitted by R2."""
        return self.aggregates_emitted

    @property
    def after_correlation(self) -> int:
        """Clusters finalised by R3."""
        return self.clusters_finalized

    @property
    def total_reduction(self) -> float:
        """1 - (diagnosed items / raw alerts), as in the batch report."""
        if self.input_alerts == 0:
            return 0.0
        return 1.0 - self.after_correlation / self.input_alerts

    # -- streaming dimensions ------------------------------------------
    @property
    def elapsed_wall(self) -> float:
        """Wall-clock seconds from construction to now (or finish)."""
        end = self.finished_wall if self.finished_wall is not None else time.perf_counter()
        return max(end - self.started_wall, 1e-9)

    @property
    def throughput(self) -> float:
        """Events processed per wall-clock second."""
        return self.input_alerts / self.elapsed_wall

    def observe_latency(self, seconds: float) -> None:
        """Record one per-event processing latency."""
        self.latency.observe(seconds)

    def observe_flush(self, seconds: float, events: int) -> None:
        """Record one flush cycle's latency amortised over its events."""
        self.latency.observe_batch(seconds, events)

    def mark_finished(self) -> None:
        """Freeze the wall clock (called by ``drain``)."""
        if self.finished_wall is None:
            self.finished_wall = time.perf_counter()

    def set_learner_counters(self, counters: dict[str, int]) -> None:
        """Adopt the rule learner's lifetime accounting (per flush)."""
        self.rules_promoted = counters["rules_promoted"]
        self.rules_renewed = counters["rules_renewed"]
        self.rules_demoted = counters["rules_demoted"]
        self.rules_expired = counters["rules_expired"]
        self.rules_active = counters["rules_active"]

    # -- checkpointing --------------------------------------------------
    #: Counter fields that survive a checkpoint/restore cycle.  The
    #: construction-time topology fields (backend, plane/shard/worker
    #: counts, flush size, learning/qoa flags) are deliberately absent:
    #: a restored gateway is *built* with them and the serving layer
    #: verifies they match the checkpoint's recorded configuration.
    _RESTORABLE = (
        "input_alerts", "blocked_alerts", "aggregates_emitted",
        "clusters_finalized", "storm_episodes", "emerging_flags",
        "late_events", "flushes", "rebalances", "plane_scales",
        "watermark", "rules_promoted", "rules_renewed", "rules_demoted",
        "rules_expired", "rules_active",
    )

    def export_state(self) -> dict:
        """The restorable accounting as a JSON-safe dict (checkpointing).

        Wall-clock fields (throughput, latency reservoir) are excluded:
        a restored gateway starts a fresh wall clock — elapsed real time
        does not survive a process death, and pretending it does would
        corrupt every rate it feeds.
        """
        state = {name: getattr(self, name) for name in self._RESTORABLE}
        state["lane_stalls"] = self.lane_stalls
        state["worker_deaths"] = self.worker_deaths
        state["worker_recoveries"] = self.worker_recoveries
        state["scales"] = [dict(scale) for scale in self.scales]
        state["qoa"] = (
            {k: dict(v) for k, v in self.qoa.items()}
            if self.qoa is not None else None
        )
        state["detection"] = (
            _deep_copy_jsonish(self.detection)
            if self.detection is not None else None
        )
        # JSON object keys are strings; plane ids are re-int'd on restore.
        state["planes"] = {
            str(plane_id): dict(row) for plane_id, row in self.planes.items()
        }
        return state

    def restore_state(self, state: dict) -> None:
        """Adopt accounting captured by :meth:`export_state` (exact)."""
        for name in self._RESTORABLE:
            setattr(self, name, state[name])
        # Outside the strict tuple: absent from pre-ring checkpoints.
        self.lane_stalls = state.get("lane_stalls", 0)
        # Likewise absent from pre-fleet-supervision checkpoints.  The
        # breaker gauge is deliberately not restored: a restored gateway
        # starts a fresh fleet with every breaker closed.
        self.worker_deaths = state.get("worker_deaths", 0)
        self.worker_recoveries = state.get("worker_recoveries", 0)
        self.breaker_open = 0
        self.scales = [dict(scale) for scale in state["scales"]]
        self.qoa = (
            {k: dict(v) for k, v in state["qoa"].items()}
            if state["qoa"] is not None else None
        )
        # Absent from pre-online-detection checkpoints.
        detection = state.get("detection")
        self.detection = (
            _deep_copy_jsonish(detection) if detection is not None else None
        )
        self.planes = {
            int(plane_id): dict(row)
            for plane_id, row in state["planes"].items()
        }

    # -- reporting ------------------------------------------------------
    def reconcile(self, report: MitigationReport) -> dict[str, tuple[int, int]]:
        """Stage-by-stage (gateway, batch) counts that disagree.

        An empty dict means the streaming run reproduced the batch
        pipeline's volume accounting exactly.
        """
        pairs = {
            "input_alerts": (self.input_alerts, report.input_alerts),
            "blocked_alerts": (self.blocked_alerts, report.blocked_alerts),
            "aggregates": (self.aggregates_emitted, len(report.aggregates)),
            "clusters": (self.clusters_finalized, len(report.clusters)),
        }
        return {stage: pair for stage, pair in pairs.items() if pair[0] != pair[1]}

    def snapshot(self) -> dict:
        """The full accounting — totals plus per-plane stats — as one dict."""
        return {
            "backend": self.backend,
            "n_planes": self.n_planes,
            "n_shards": self.n_shards,
            "n_workers": self.n_workers,
            "flush_size": self.flush_size,
            "input_alerts": self.input_alerts,
            "blocked_alerts": self.blocked_alerts,
            "aggregates": self.aggregates_emitted,
            "clusters": self.clusters_finalized,
            "storm_episodes": self.storm_episodes,
            "emerging_flags": self.emerging_flags,
            "late_events": self.late_events,
            "flushes": self.flushes,
            "rebalances": self.rebalances,
            "plane_scales": self.plane_scales,
            "lane_stalls": self.lane_stalls,
            "worker_deaths": self.worker_deaths,
            "worker_recoveries": self.worker_recoveries,
            "breaker_open": self.breaker_open,
            "scales": [dict(scale) for scale in self.scales],
            "watermark": self.watermark,
            "total_reduction": self.total_reduction,
            "throughput": self.throughput,
            "planes": [
                dict(self.planes[plane_id]) for plane_id in sorted(self.planes)
            ],
            "learner": {
                "enabled": self.learning,
                "rules_promoted": self.rules_promoted,
                "rules_renewed": self.rules_renewed,
                "rules_demoted": self.rules_demoted,
                "rules_expired": self.rules_expired,
                "rules_active": self.rules_active,
            },
            "qoa": dict(self.qoa) if self.qoa is not None else None,
            "detection": (
                _deep_copy_jsonish(self.detection)
                if self.detection is not None else None
            ),
        }

    def render_qoa(self, limit: int = 5, min_alerts: int = 5) -> str:
        """The lowest-scoring strategies, one line each (drain snapshot)."""
        if not self.qoa:
            return "  (no QoA scores recorded)"
        scored = [
            (strategy_id, row) for strategy_id, row in self.qoa.items()
            if row["seen"] >= min_alerts
        ]
        scored.sort(key=lambda item: (item[1]["overall"], item[0]))
        lines = []
        for strategy_id, row in scored[:limit]:
            lines.append(
                f"  {strategy_id:<24} overall {row['overall']:.2f}  "
                f"coverage {row['coverage']:.2f}  "
                f"actionable {row['actionability']:.2f}  "
                f"distinct {row['distinctness']:.2f}  "
                f"({row['seen']:,.0f} alerts)"
            )
        return "\n".join(lines)

    def render_planes(self) -> str:
        """One line per execution plane (regions and volume accounting)."""
        lines = []
        for plane_id in sorted(self.planes):
            plane = self.planes[plane_id]
            regions = ",".join(plane.get("regions", ())) or "-"
            lines.append(
                f"  plane {plane_id} [{regions}]: "
                f"in {plane['processed']:>8,}  blocked {plane['blocked']:>7,}  "
                f"groups {plane['aggregates']:>7,}  clusters {plane['clusters']:>6,}  "
                f"storms {plane['storm_episodes']:>4,}  "
                f"emerging {plane['emerging_flags']:>5,}"
            )
        return "\n".join(lines)

    def render(self) -> str:
        """Human-readable gateway summary."""
        backend = self.backend
        if backend in ("thread", "process"):
            backend += f" x{self.n_workers} workers"
        lines = [
            f"planes:              {self.n_planes:>8}  x {self.n_shards} shards "
            f"({backend}, flush {self.flush_size})",
            f"input alerts:        {self.input_alerts:>8,}",
            f"after R1 blocking:   {self.after_blocking:>8,} "
            f"({self.blocked_alerts:,} blocked)",
            f"after R2 aggregation:{self.after_aggregation:>8,} groups",
            f"after R3 correlation:{self.after_correlation:>8,} clusters to diagnose",
            f"total OCE-load reduction: {self.total_reduction:.1%}",
            f"R4 storm episodes:   {self.storm_episodes:>8,} "
            f"({self.emerging_flags:,} emerging flags)",
            f"throughput:          {self.throughput:>10,.0f} alerts/s",
            f"latency p50/p99:     {self.latency.quantile(0.50) * 1e6:>7.1f} / "
            f"{self.latency.quantile(0.99) * 1e6:.1f} us",
        ]
        if self.learning:
            lines.append(
                f"learned R1 rules:    {self.rules_promoted:>8,} promoted  "
                f"({self.rules_renewed:,} renewals, {self.rules_demoted:,} "
                f"demoted, {self.rules_expired:,} expired; "
                f"{self.rules_active:,} live)"
            )
        if self.qoa:
            lines.append("streaming QoA (worst strategies):")
            lines.append(self.render_qoa())
        if self.detect_enabled and self.detection:
            found = self.detection.get("findings", {})
            lines.append(
                f"online anti-patterns: "
                f"A1 {found.get('A1', 0):>4,}  A2 {found.get('A2', 0):>4,}  "
                f"A3 {found.get('A3', 0):>4,}  "
                f"(over {self.detection.get('strategies', 0):,} strategies; "
                f"{self.detection.get('emerging', 0):,} sketch-R4 flags)"
            )
        if self.n_planes > 1 and self.planes:
            lines.append("per-plane accounting:")
            lines.append(self.render_planes())
        if self.late_events:
            lines.append(f"late (out-of-order) events: {self.late_events:,}")
        if self.lane_stalls:
            lines.append(f"ingress lane stalls: {self.lane_stalls:>8,}")
        if self.worker_deaths or self.worker_recoveries:
            lines.append(
                f"worker deaths:       {self.worker_deaths:>8,}  "
                f"({self.worker_recoveries:,} recovered"
                + (f", {self.breaker_open} breaker(s) open"
                   if self.breaker_open else "")
                + ")"
            )
        if self.rebalances:
            lines.append(f"shard rebalances:    {self.rebalances:>8}")
        if self.plane_scales:
            moved = sum(scale["moved_regions"] for scale in self.scales)
            lines.append(
                f"plane scale events:  {self.plane_scales:>8}  "
                f"({moved} region migrations)"
            )
        return "\n".join(lines)
