"""Pluggable plane execution backends for the alert gateway.

The gateway routes events to region-partitioned execution planes; a
*backend* decides where each :class:`~repro.streaming.plane.RegionPlane`
lives and what executes it:

* ``serial`` — all planes in the calling thread, one after another.
  Zero coordination overhead; the baseline every other backend must
  reconcile against.
* ``thread`` — a worker pool runs the planes of one flush cycle
  concurrently.  Plane state stays in-process, so rebalancing, draining
  and artifact collection are plain method calls; R3 correlation and R4
  detection execute on pool threads, off the gateway loop.
* ``process`` — planes are partitioned across worker processes
  (``plane % n_workers``); event batches cross the pipe in the
  struct-packed :mod:`~repro.streaming.wire` format and flush replies
  are fixed-size counter tuples, so the per-event serialisation tax is
  a dictionary-encoded column write, not a pickled object graph.  True
  parallelism regardless of the GIL.

Every backend speaks the same protocol — ``flush`` with a barrier per
call, ``snapshots`` for introspection, ``rebalance`` for live per-plane
re-sharding, ``drain``/``close`` for shutdown — and every backend
produces *bitwise identical* volume accounting: a plane's reaction chain
only ever sees its own regions' events in arrival order, so where it
runs cannot change what it counts.  The parity harness in
``tests/streaming/test_backends.py`` pins that invariant down for every
backend × plane count × shard count.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Protocol, Sequence

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.common.validation import require_positive
from repro.streaming.fleet import (
    CircuitBreaker,
    WorkerDiedError,
    WorkerTimeoutError,
)
from repro.streaming.plane import (
    PlaneConfig,
    PlaneDrainResult,
    PlaneFlushResult,
    PlaneSnapshot,
    RegionPlane,
)
from repro.streaming.learning import RuleDelta
from repro.streaming.processor import StreamProcessor
from repro.streaming.rings import (
    DEFAULT_SLOT_COUNT,
    DEFAULT_SLOT_SIZE,
    SpscRing,
)
from repro.streaming.wire import (
    pack_aggregates,
    pack_alerts,
    pack_clusters,
    pack_plane_state,
    pack_rules,
    unpack_aggregates,
    unpack_alerts,
    unpack_clusters,
    unpack_plane_state,
    unpack_rules,
)

__all__ = [
    "BACKEND_NAMES",
    "LANE_TRANSPORTS",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_WORKER_TIMEOUT",
    "PlaneBatch",
    "PlaneBackend",
    "SerialPlaneBackend",
    "ThreadPlaneBackend",
    "ProcessPlaneBackend",
    "make_backend",
]

BACKEND_NAMES = ("serial", "thread", "process")

#: Poll slice for bounded worker-pipe waits: short enough that a dead
#: worker is noticed within a slice or two, long enough that the liveness
#: check is amortised away on the hot path.
_POLL_SLICE = 0.05

#: Parent-side wait for a worker reply before declaring a wedge.
DEFAULT_WORKER_TIMEOUT = 30.0

#: Journaled data batches per worker between full-plane recovery
#: snapshots (the replay-tail bound when a worker dies).
DEFAULT_CHECKPOINT_EVERY = 64

#: Revive attempts per request: a batch that reliably kills its worker
#: must surface as a death, not respawn forever.
_MAX_REVIVES = 2

#: Transient pipe-error retries per request (worker still alive).
_MAX_TRANSIENT_RETRIES = 3

#: Ingress-lane hand-off transports for the ``process`` backend:
#: ``ring`` writes encoded batches into per-(lane, worker) shared-memory
#: rings (zero-copy, the default); ``pipe`` ships them pickled over the
#: worker pipe (the PR-7 path, kept for comparison and as a fallback).
LANE_TRANSPORTS = ("ring", "pipe")

#: One plane's slice of a flush cycle: (plane id, in-order alerts,
#: number of leading events inside the gateway-global novelty warmup).
PlaneBatch = tuple[int, list[Alert], int]


class PlaneBackend(Protocol):
    """The execution contract the gateway programs against."""

    name: str

    @property
    def n_planes(self) -> int:
        """Number of execution planes this backend runs."""
        ...

    def flush(
        self, batches: Sequence[PlaneBatch], watermark: float | None,
    ) -> list[PlaneFlushResult]:
        """Run one flush cycle; a barrier — returns when every plane is done.

        ``batches`` holds at most one batch per plane; events within a
        batch are in arrival order.  ``watermark`` caps each plane's R3
        safety horizon.
        """
        ...

    def snapshots(self) -> list[PlaneSnapshot]:
        """Per-plane progress views (as of the last barrier)."""
        ...

    def rebalance(self, n_shards: int) -> None:
        """Re-shard every plane onto ``n_shards`` shards, live."""
        ...

    def scale(
        self,
        n_planes: int,
        moved: dict[str, tuple[int, int]],
        n_shards: int,
    ) -> list[PlaneSnapshot]:
        """Re-plane to ``n_planes``, migrating each moved region's state.

        A barrier (the gateway flushes first, so no batch is in flight):
        every region in ``moved`` (``region -> (old plane, new plane)``)
        has its *entire* plane state — open R2 sessions, R3 window +
        union-find, R4 counters and novelty state, lifetime counter
        slice, retained artifacts — detached from its old plane and
        installed on its new one.  New planes are born on ``n_shards``
        (the gateway's current ring size, which may differ from the
        spawn-time config after live rebalances); dropped planes must
        have had all their regions exported, which the round-robin
        rescale guarantees.  Returns post-migration snapshots of every
        plane, the gateway's new per-plane accounting baseline.
        """
        ...

    def apply_rules(self, delta: RuleDelta) -> None:
        """Apply a learned R1 rule delta to every plane's blocker.

        Called between flush barriers only, so the rule table every
        plane sees is constant within a flush and changes at the same
        stream position on every backend.
        """
        ...

    def checkpoint(self, pairs: Sequence[tuple[int, str]]) -> list[bytes]:
        """Wire-pack every (plane, region) slice, *non-destructively*.

        A barrier (the gateway flushes first).  Each pair's region state
        is exported, packed, and immediately re-adopted on the same
        plane — the same export/adopt round trip live scale-out performs
        cross-plane, whose invisibility the scale parity harness already
        pins down — so after the call the backend is exactly as it was,
        and the returned blobs (in ``pairs`` order) are a complete
        durable image of all plane-resident state.  Rule tables are
        blanked in the blobs: the checkpoint records the blocker table
        once, gateway-level, not once per region.
        """
        ...

    def restore(self, adopts: Sequence[tuple[int, bytes]]) -> None:
        """Install checkpointed region blobs onto a *fresh* backend.

        ``adopts`` rows are ``(plane, packed state)`` in the checkpoint's
        first-seen region order.  Only valid before any event has
        flowed; the process backend spawns its workers here so the
        state lands in the processes that will run it.
        """
        ...

    def drain(self, watermark: float | None) -> list[PlaneDrainResult]:
        """Flush all open plane state; the backend stays closeable only."""
        ...

    def close(self) -> None:
        """Release workers; idempotent."""
        ...


def _build_planes(n_planes: int, config: PlaneConfig) -> list[RegionPlane]:
    return [RegionPlane(plane, config) for plane in range(n_planes)]


def _checkpoint_region(plane: RegionPlane, region: str) -> bytes:
    """Pack one region's plane state without disturbing the plane.

    ``export_region`` is destructive by design (it is the migration
    primitive), so a durable capture is export → pack → re-adopt on the
    same plane.  The rule snapshot is blanked in the packed bytes only —
    the checkpoint stores the blocker table once at gateway level — and
    restored on the state object before re-adoption, which is then a
    pure no-op repair against the same shared blocker.
    """
    state = plane.export_region(region)
    rules = state.rules
    state.rules = []
    blob = pack_plane_state(state)
    state.rules = rules
    plane.adopt_region(state)
    return blob


class SerialPlaneBackend:
    """All planes execute inline in the calling thread."""

    name = "serial"

    def __init__(self, n_planes: int, config: PlaneConfig) -> None:
        require_positive(n_planes, "n_planes")
        self._config = config
        self.planes = _build_planes(n_planes, config)

    @property
    def n_planes(self) -> int:
        return len(self.planes)

    @property
    def processors(self) -> list[StreamProcessor]:
        """Every shard processor across planes (read-only introspection)."""
        return [p for plane in self.planes for p in plane.processors]

    def flush(
        self, batches: Sequence[PlaneBatch], watermark: float | None,
    ) -> list[PlaneFlushResult]:
        return [
            self.planes[plane].process_batch(alerts, in_warmup, watermark)
            for plane, alerts, in_warmup in batches
        ]

    def snapshots(self) -> list[PlaneSnapshot]:
        return [plane.snapshot() for plane in self.planes]

    def rebalance(self, n_shards: int) -> None:
        require_positive(n_shards, "n_shards")
        for plane in self.planes:
            plane.rebalance(n_shards)

    def scale(
        self,
        n_planes: int,
        moved: dict[str, tuple[int, int]],
        n_shards: int,
    ) -> list[PlaneSnapshot]:
        require_positive(n_planes, "n_planes")
        require_positive(n_shards, "n_shards")
        planes = self.planes
        # Export everything first, then adopt: the round-robin rescale
        # can swap regions between two surviving planes.
        states = [
            planes[source].export_region(region)
            for region, (source, _) in moved.items()
        ]
        for state in states:
            # Every in-process plane shares the one configured blocker,
            # so the carried rule snapshot has nothing to verify or
            # repair here; it exists for payloads that cross a process
            # boundary (or a future fresh-worker spawn).
            state.rules = []
        if n_planes > len(planes):
            config = dataclasses.replace(self._config, n_shards=n_shards)
            planes.extend(
                RegionPlane(plane, config)
                for plane in range(len(planes), n_planes)
            )
        dropped = planes[n_planes:]
        del planes[n_planes:]
        # Adopt before the dropped-plane emptiness check: if the check
        # ever fires, every exported region already lives on its
        # destination, so the failure is loud but non-destructive.
        for state, (_, destination) in zip(states, moved.values()):
            planes[destination].adopt_region(state)
        for plane in dropped:
            if plane.processed or plane.open_sessions:
                raise ValidationError(
                    f"plane {plane.plane_id} still owned state after its "
                    f"regions were exported; its history was not migrated"
                )
        return [plane.snapshot() for plane in planes]

    def apply_rules(self, delta: RuleDelta) -> None:
        # Every in-process plane shares the one configured blocker, so a
        # single application covers them all.
        delta.apply_to(self._config.blocker)

    def checkpoint(self, pairs: Sequence[tuple[int, str]]) -> list[bytes]:
        return [
            _checkpoint_region(self.planes[plane], region)
            for plane, region in pairs
        ]

    def restore(self, adopts: Sequence[tuple[int, bytes]]) -> None:
        for plane, blob in adopts:
            self.planes[plane].adopt_region(unpack_plane_state(blob))

    def lane_feed(
        self,
        plane: int,
        alerts: list[Alert],
        in_warmup: int,
        watermark: float | None,
    ) -> PlaneFlushResult:
        """One lane-dispatched batch, run inline on the calling thread.

        The ingress-lane path: the lane thread *is* the plane's worker,
        so there is no pool hand-off and no barrier — just this plane's
        reaction chain.  Safe under concurrent lanes because lanes own
        disjoint planes and in-process planes share only structures that
        are read-only while lanes are in flight: with rule learning on,
        the gateway mutates the shared blocker table exclusively at lane
        barriers (every lane joined), never mid-feed.
        """
        return self.planes[plane].process_batch(
            alerts, in_warmup, watermark, collect_emitted=False,
        )

    def drain(self, watermark: float | None) -> list[PlaneDrainResult]:
        return [plane.drain(watermark) for plane in self.planes]

    def close(self) -> None:
        pass


class ThreadPlaneBackend(SerialPlaneBackend):
    """Planes of one flush cycle run on a thread pool.

    Plane state still lives in-process (introspection, rebalance and
    drain are inherited verbatim) — only ``flush`` fans out.  Each cycle
    touches each plane at most once, so no two tasks ever share a plane,
    and the whole reaction chain — R1/R2 shard work plus R3 correlation
    and R4 detection — executes on pool threads instead of the gateway
    loop.
    """

    name = "thread"

    def __init__(
        self, n_planes: int, config: PlaneConfig, n_workers: int = 4,
    ) -> None:
        super().__init__(n_planes, config)
        require_positive(n_workers, "n_workers")
        self._requested_workers = int(n_workers)
        self.n_workers = min(self._requested_workers, n_planes)
        self._pool: ThreadPoolExecutor | None = None

    def flush(
        self, batches: Sequence[PlaneBatch], watermark: float | None,
    ) -> list[PlaneFlushResult]:
        if len(batches) <= 1:
            return super().flush(batches, watermark)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="plane"
            )
        planes = self.planes
        return list(self._pool.map(
            lambda item: planes[item[0]].process_batch(item[1], item[2], watermark),
            batches,
        ))

    def resize(self, n_workers: int) -> None:
        """Swap the pool for one with ``n_workers`` threads."""
        require_positive(n_workers, "n_workers")
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._requested_workers = int(n_workers)
        self.n_workers = min(self._requested_workers, self.n_planes)

    def scale(
        self,
        n_planes: int,
        moved: dict[str, tuple[int, int]],
        n_shards: int,
    ) -> list[PlaneSnapshot]:
        snapshots = super().scale(n_planes, moved, n_shards)
        # Re-clamp the pool to the new plane count: a scale-out can use
        # the workers the construction-time clamp withheld.
        workers = min(self._requested_workers, n_planes)
        if workers != self.n_workers:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            self.n_workers = workers
        if self.n_workers > 1 and n_planes > 1 and self._pool is None:
            # Spawn the pool threads inside the scale barrier: the cost
            # of growing the worker fleet is part of the scale event,
            # not of the first post-scale flush cycle.
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="plane"
            )
            barrier = threading.Barrier(self.n_workers)
            for future in [
                self._pool.submit(barrier.wait, timeout=5.0)
                for _ in range(self.n_workers)
            ]:
                future.result()
        return snapshots

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _plane_worker_loop(connection, plane_ids, config: PlaneConfig) -> None:
    """One process-backend worker: owns the planes assigned to it.

    Data-plane batches arrive either inline on the pipe (``flush``) or
    through a per-lane shared-memory ring announced by ``attach_ring``
    and signalled by ``ring_flush`` — the pipe then carries only the
    control message and the counter reply while the payload is decoded
    straight out of the ring slot via :class:`memoryview`, with zero
    copies between the lane thread's encode and this worker's decode.
    """
    planes = {plane: RegionPlane(plane, config) for plane in plane_ids}
    rings: dict[int, SpscRing] = {}
    try:
        _plane_worker_commands(connection, planes, rings, config)
    finally:
        for ring in rings.values():
            ring.close()


def _plane_worker_commands(connection, planes, rings, config) -> None:
    while True:
        try:
            kind, payload = connection.recv()
        except EOFError:
            break
        try:
            if kind == "ring_flush":
                # The hot lane path: the payload is already in shared
                # memory; peek validates seq/len/CRC and exposes the
                # slot as a memoryview the wire decoder reads in place.
                lane, plane_id, in_warmup, watermark = payload
                ring = rings[lane]
                view = ring.peek()
                try:
                    alerts = unpack_alerts(view)
                finally:
                    view.release()
                    ring.consume()
                result = planes[plane_id].process_batch(
                    alerts, in_warmup, watermark, collect_emitted=False,
                )
                # List-shaped like a one-batch ``flush`` reply, so the
                # parent reads the same shape whichever transport (or
                # post-death re-send) carried the batch.
                connection.send(("ok", [result]))
            elif kind == "attach_ring":
                lane, name = payload
                stale = rings.pop(lane, None)
                if stale is not None:
                    # The parent retired this lane's ring (worker-fleet
                    # resize); drop the attachment before adopting the
                    # replacement segment.
                    stale.close()
                rings[lane] = SpscRing.attach(name)
                connection.send(("ok", None))
            elif kind == "flush":
                batches, watermark = payload
                results = [
                    # Artifacts stay worker-side until drain, so the
                    # reply is counters only (collect_emitted=False).
                    planes[plane_id].process_batch(
                        unpack_alerts(blob), in_warmup, watermark,
                        collect_emitted=False,
                    )
                    for plane_id, blob, in_warmup in batches
                ]
                connection.send(("ok", results))
            elif kind == "snapshot":
                connection.send(("ok", [
                    planes[plane].snapshot() for plane in sorted(planes)
                ]))
            elif kind == "rebalance":
                for plane in planes.values():
                    plane.rebalance(payload)
                connection.send(("ok", None))
            elif kind == "export_regions":
                # One packed blob per (plane, region), request order —
                # state crosses the pipe wire-packed, never pickled.
                connection.send(("ok", [
                    pack_plane_state(planes[plane].export_region(region))
                    for plane, region in payload
                ]))
            elif kind == "scale":
                n_shards, create, drop, adopt = payload
                dropped = [(plane_id, planes.pop(plane_id)) for plane_id in drop]
                if create:
                    # Born on the *current* ring size, which live
                    # rebalances may have moved off the spawn-time
                    # config; the blocker object is shared, so new
                    # planes see every rule delta this worker applied.
                    born_config = dataclasses.replace(config, n_shards=n_shards)
                    for plane_id in create:
                        planes[plane_id] = RegionPlane(plane_id, born_config)
                for plane_id, blob in adopt:
                    planes[plane_id].adopt_region(unpack_plane_state(blob))
                # Checked only after adoption: a failure here is loud
                # but non-destructive — migrated state already lives on
                # its destination planes (possibly in other workers).
                for plane_id, plane in dropped:
                    if plane.processed or plane.open_sessions:
                        raise ValueError(
                            f"plane {plane_id} still owned state after its "
                            f"regions were exported; its history was not "
                            f"migrated"
                        )
                connection.send(("ok", [
                    planes[plane].snapshot() for plane in sorted(planes)
                ]))
            elif kind == "checkpoint":
                # Non-destructive capture: export → pack → re-adopt on
                # the same plane, one blob per (plane, region) pair in
                # request order.
                connection.send(("ok", [
                    _checkpoint_region(planes[plane], region)
                    for plane, region in payload
                ]))
            elif kind == "adopt":
                # Checkpoint restore: install packed region states on
                # this worker's freshly-built planes.
                for plane, blob in payload:
                    planes[plane].adopt_region(unpack_plane_state(blob))
                connection.send(("ok", None))
            elif kind == "snapshot_planes":
                # Full-plane recovery snapshot: one non-destructive blob
                # per (plane, region), every region with history, in
                # deterministic order — the respawn baseline a journal
                # tail replays on top of.
                connection.send(("ok", [
                    (plane_id, region, _checkpoint_region(planes[plane_id], region))
                    for plane_id in sorted(planes)
                    for region in planes[plane_id].regions()
                ]))
            elif kind == "eject_planes":
                # Worker-fleet resize, round 1: the listed planes leave
                # this worker wholesale, every region as packed state
                # (rules included — the destination repairs against its
                # own inherited table, a no-op for a live fleet).
                rows = []
                ejected = [(plane_id, planes.pop(plane_id)) for plane_id in payload]
                for plane_id, plane in ejected:
                    for region in plane.regions():
                        rows.append((
                            plane_id, region,
                            pack_plane_state(plane.export_region(region)),
                        ))
                for plane_id, plane in ejected:
                    if plane.processed or plane.open_sessions:
                        raise ValueError(
                            f"plane {plane_id} still owned state after its "
                            f"regions were exported; its history was not "
                            f"migrated"
                        )
                connection.send(("ok", rows))
            elif kind == "install_planes":
                # Worker-fleet resize, round 2: create the planes this
                # worker now homes (born on the current ring size) and
                # adopt their migrated region state.
                n_shards, create, adopt = payload
                if create:
                    born_config = dataclasses.replace(config, n_shards=n_shards)
                    for plane_id in create:
                        planes[plane_id] = RegionPlane(plane_id, born_config)
                for plane_id, blob in adopt:
                    planes[plane_id].adopt_region(unpack_plane_state(blob))
                connection.send(("ok", None))
            elif kind == "rules":
                added_blob, removed_blob = payload
                for rule in unpack_rules(removed_blob):
                    config.blocker.remove_rule(rule)
                config.blocker.add_rules(unpack_rules(added_blob))
                connection.send(("ok", None))
            elif kind == "drain":
                replies = []
                for plane_id in sorted(planes):
                    result = planes[plane_id].drain(payload)
                    aggregates = pack_aggregates(result.retained_aggregates)
                    clusters = pack_clusters(result.retained_clusters)
                    result.retained_aggregates = []
                    result.retained_clusters = []
                    replies.append((result, aggregates, clusters))
                connection.send(("ok", replies))
            elif kind == "stop":
                connection.send(("ok", None))
                break
            else:
                connection.send(("error", f"unknown command {kind!r}"))
        except Exception as exc:  # surface worker failures to the parent
            connection.send(("error", f"{type(exc).__name__}: {exc}"))


class ProcessPlaneBackend:
    """Planes are partitioned across worker processes.

    Workers are spawned lazily on first use, so constructing a gateway
    costs nothing until events flow.  Plane ``p`` lives in worker
    ``p % n_workers`` for the backend's whole lifetime — the distribution
    unit is the plane, so parallelism scales with plane count, not shard
    count.  Ingress batches cross the pipe struct-packed
    (:func:`~repro.streaming.wire.pack_alerts`); flush replies are
    counter tuples; retained artifacts come back packed once, at drain.
    """

    name = "process"

    def __init__(
        self,
        n_planes: int,
        config: PlaneConfig,
        n_workers: int = 4,
        lane_transport: str = "ring",
        ring_slot_size: int | None = None,
        ring_slots: int | None = None,
        worker_recovery: bool = False,
        worker_checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        require_positive(n_planes, "n_planes")
        require_positive(n_workers, "n_workers")
        require_positive(worker_checkpoint_every, "worker_checkpoint_every")
        require_positive(worker_timeout, "worker_timeout")
        if lane_transport not in LANE_TRANSPORTS:
            raise ValidationError(
                f"unknown lane transport {lane_transport!r}; expected one "
                f"of {', '.join(LANE_TRANSPORTS)}"
            )
        self._n_planes = int(n_planes)
        self._requested_workers = int(n_workers)
        self.n_workers = min(self._requested_workers, self._n_planes)
        self._config = config
        self._workers: list[multiprocessing.Process] | None = None
        self._connections: list = []
        # Worker-fleet supervision: every pipe wait is bounded (a dead
        # worker raises WorkerDiedError instead of hanging recv), and
        # with recovery on the supervisor respawns the worker from its
        # last full-plane snapshot plus the journal of mutating messages
        # since.  All per-worker supervision state — snapshot, journal,
        # breaker — is accessed only under that worker's pipe lock.
        self.worker_recovery = bool(worker_recovery)
        self._checkpoint_every = int(worker_checkpoint_every)
        self._worker_timeout = float(worker_timeout)
        self._breakers: list[CircuitBreaker] = []
        #: Per-worker ``(snapshot rows, rule table at capture)``; rows
        #: are ``(plane, region, blob)`` in deterministic order.
        self._snapshots: list[tuple[list, list]] = []
        #: Per-worker mutating messages since the last snapshot.
        self._journals: list[list[tuple]] = []
        self._telemetry_lock = threading.Lock()
        self.worker_deaths = 0
        self.worker_recoveries = 0
        # One lock per worker pipe, held across a send/recv round trip:
        # ingress lanes feed workers concurrently, and a pipe is only a
        # sane transport if exactly one request is in flight on it.
        self._locks: list[threading.Lock] = []
        self._start_lock = threading.Lock()
        # Last-barrier snapshots so idle introspection of a never-started
        # backend needs no round trip.
        self._n_shards = config.n_shards
        self._closed = False
        # Zero-copy lane hand-off: one SPSC shared-memory ring per
        # (lane, worker) pair, created lazily on a lane's first feed to
        # that worker (under the worker's pipe lock) and unlinked at
        # close.  ``ring_spills`` counts batches that fell back to the
        # pipe (oversized for a slot, or no free slot).
        self.lane_transport = lane_transport
        self._ring_slot_size = (
            int(ring_slot_size) if ring_slot_size is not None
            else DEFAULT_SLOT_SIZE
        )
        self._ring_slots = (
            int(ring_slots) if ring_slots is not None else DEFAULT_SLOT_COUNT
        )
        require_positive(self._ring_slot_size, "ring_slot_size")
        require_positive(self._ring_slots, "ring_slots")
        self._rings: dict[tuple[int, int], SpscRing] = {}
        #: Per-(lane, worker) spill counts; each key is written by
        #: exactly one lane thread, so no lock is needed to sum them.
        self._spills: dict[tuple[int, int], int] = {}

    @property
    def n_planes(self) -> int:
        return self._n_planes

    def _worker_of(self, plane: int) -> int:
        return plane % self.n_workers

    def _planes_of(self, worker_id: int) -> list[int]:
        return [
            p for p in range(self._n_planes) if self._worker_of(p) == worker_id
        ]

    @property
    def breaker_open(self) -> int:
        """Workers whose circuit breaker is currently open (gauge)."""
        return sum(1 for breaker in self._breakers if breaker.is_open)

    @property
    def breaker_trips(self) -> int:
        """Lifetime breaker open transitions across the fleet."""
        return sum(breaker.trips for breaker in self._breakers)

    def _spawn_worker(self, worker_id: int):
        """Fork one worker for its current plane set; returns (proc, pipe).

        Planes are born on the *current* ring size (live rebalances may
        have moved it off the spawn-time config), and the fork inherits
        the parent-side blocker mirror — the always-current rule table.
        """
        context = multiprocessing.get_context()
        parent_end, child_end = context.Pipe()
        config = self._config
        if config.n_shards != self._n_shards:
            config = dataclasses.replace(config, n_shards=self._n_shards)
        worker = context.Process(
            target=_plane_worker_loop,
            args=(child_end, self._planes_of(worker_id), config),
            daemon=True,
        )
        worker.start()
        child_end.close()
        return worker, parent_end

    def _start(self) -> None:
        workers = []
        connections = []
        locks = []
        for worker_id in range(self.n_workers):
            worker, parent_end = self._spawn_worker(worker_id)
            workers.append(worker)
            connections.append(parent_end)
            locks.append(threading.Lock())
        self._breakers = [CircuitBreaker() for _ in workers]
        # The initial recovery baseline: empty planes plus the rule
        # table as of spawn — everything after it is journaled.
        self._snapshots = [
            ([], list(self._config.blocker.rules)) for _ in workers
        ]
        self._journals = [[] for _ in workers]
        # Publish complete lists only: lane threads race through
        # _ensure_started's fast path as soon as _workers is non-None.
        self._connections = connections
        self._locks = locks
        self._workers = workers

    def _ensure_started(self) -> None:
        if self._workers is not None:
            return
        with self._start_lock:
            if self._workers is None:
                self._start()

    # ------------------------------------------------------------------
    # supervised pipe exchanges
    # ------------------------------------------------------------------
    def _recv_reply(self, worker_id: int) -> tuple:
        """Bounded reply wait — never a bare ``recv`` on a worker pipe.

        Polls in short slices, checking worker liveness between them: a
        dead worker raises :class:`WorkerDiedError` (corpse joined, exit
        code attached) within a slice or two instead of blocking the
        gateway forever, and a live-but-silent worker raises
        :class:`WorkerTimeoutError` at ``worker_timeout`` — a wedge is
        never auto-recovered, because the wedged process still owns its
        planes (and possibly a ring slot mid-consume).
        """
        connection = self._connections[worker_id]
        worker = self._workers[worker_id]
        deadline = time.monotonic() + self._worker_timeout
        while True:
            try:
                if connection.poll(_POLL_SLICE):
                    return connection.recv()
            except (EOFError, OSError):
                break  # the pipe closed under us: the worker is gone
            if not worker.is_alive():
                # The worker may have replied and exited (a stop racing
                # its own reply): drain the pipe before declaring death.
                try:
                    if connection.poll(0):
                        return connection.recv()
                except (EOFError, OSError):
                    pass
                break
            if time.monotonic() >= deadline:
                raise WorkerTimeoutError(worker_id, self._worker_timeout)
        worker.join()
        raise WorkerDiedError(
            worker_id, worker.exitcode, tuple(self._planes_of(worker_id)),
        )

    def _exchange(
        self,
        worker_id: int,
        message: tuple,
        journal: bool = False,
        recoverable: bool = True,
        sent: bool = False,
        wire: tuple | None = None,
    ) -> object:
        """One supervised request/reply (caller holds the worker's lock).

        Transient pipe errors (worker alive) retry with backoff under
        the breaker; a worker death either respawns-and-replays the
        worker and re-sends ``message`` (recovery on, ``recoverable``)
        or surfaces the typed error.  ``wire`` is an alternate
        first-attempt encoding of ``message`` — the ring control form —
        used once: any re-send after a death uses ``message`` itself,
        because the respawned worker's fresh ring no longer holds the
        payload slot.  On success, mutating messages are journaled and
        the journal cadence may refresh the worker's plane snapshot.
        """
        breaker = self._breakers[worker_id]
        first = wire if wire is not None else message
        revives = 0
        transient = 0
        while True:
            try:
                if not sent:
                    try:
                        self._connections[worker_id].send(first)
                    except (BrokenPipeError, OSError) as exc:
                        worker = self._workers[worker_id]
                        if worker.is_alive():
                            breaker.record_failure()
                            transient += 1
                            if transient > _MAX_TRANSIENT_RETRIES:
                                raise
                            time.sleep(0.01 * transient)
                            continue
                        worker.join()
                        raise WorkerDiedError(
                            worker_id, worker.exitcode,
                            tuple(self._planes_of(worker_id)),
                        ) from exc
                    sent = True
                status, payload = self._recv_reply(worker_id)
            except WorkerDiedError:
                with self._telemetry_lock:
                    self.worker_deaths += 1
                breaker.record_death()
                if (
                    not self.worker_recovery
                    or not recoverable
                    or revives >= _MAX_REVIVES
                ):
                    raise
                self._revive_worker(worker_id)
                revives += 1
                sent = False
                first = message
                continue
            if status != "ok":
                raise ValidationError(
                    f"plane worker {worker_id} failed: {payload}"
                )
            breaker.record_success()
            if journal and self.worker_recovery:
                entries = self._journals[worker_id]
                entries.append(message)
                if len(entries) >= self._checkpoint_every:
                    self._snapshot_worker(worker_id)
            return payload

    def _snapshot_worker(self, worker_id: int) -> None:
        """Refresh one worker's recovery snapshot; truncates its journal.

        The rows are a complete non-destructive image of every region on
        the worker's planes (the same export → pack → re-adopt round
        trip gateway checkpoints use); the rule table is captured from
        the always-current parent-side mirror at the same instant, so
        snapshot + journal replay reproduces the exact interleaving of
        batches and rule deltas the worker saw.  Caller holds the lock.
        """
        rows = self._exchange(worker_id, ("snapshot_planes", None))
        self._snapshots[worker_id] = (rows, list(self._config.blocker.rules))
        self._journals[worker_id] = []

    def _refresh_snapshots(self) -> None:
        """Re-baseline every worker after a structural change (scale/resize).

        Structural operations change the plane → worker mapping, so the
        per-worker snapshots and journals recorded under the old mapping
        can no longer revive anything; capture fresh full-plane images.
        """
        if not self.worker_recovery or self._workers is None:
            return
        for worker_id in range(self.n_workers):
            with self._locks[worker_id]:
                self._snapshot_worker(worker_id)

    def _replay(self, worker_id: int, message: tuple) -> None:
        """One replay exchange during a revive (no recursion, no journal)."""
        self._connections[worker_id].send(message)
        status, payload = self._recv_reply(worker_id)
        if status != "ok":
            raise ValidationError(
                f"plane worker {worker_id} failed during recovery replay: "
                f"{payload}"
            )

    def _revive_worker(self, worker_id: int) -> None:
        """Respawn a dead worker and replay it back to the present.

        Caller holds the worker's pipe lock and has already joined the
        corpse.  The dead process's partial state is discarded
        wholesale: the fresh worker adopts the last full-plane snapshot,
        has its rule table rewound to that snapshot's capture, and then
        replays the journaled messages since — the same batches, rule
        deltas and rebalances, in the same order, under the same rule
        tables — so its accounting lands exactly where an unkilled
        worker's would.  (Shard placement and finalize cadence are
        accounting-invariant, which the backend/shard parity harness
        pins down; per-batch warmup prefixes and watermarks ride in the
        journaled messages themselves.)  The in-flight message that
        observed the death is deliberately NOT in the journal: the
        caller re-sends it after this returns, so it is applied exactly
        once.
        """
        try:
            self._connections[worker_id].close()
        except OSError:
            pass
        # The dead consumer may have died mid-slot; retire its rings and
        # let the next lane feed create fresh segments the respawned
        # worker attaches cleanly.
        for key in [k for k in self._rings if k[1] == worker_id]:
            self._rings.pop(key).unlink()
        worker, parent_end = self._spawn_worker(worker_id)
        self._workers[worker_id] = worker
        self._connections[worker_id] = parent_end
        rows, snapshot_rules = self._snapshots[worker_id]
        # The fresh worker forked off the *current* blocker mirror;
        # rewind its table to the snapshot's capture so journal replay
        # applies every rule delta at the stream position the dead
        # worker saw it (R1 decisions during replay depend on it).
        current = self._config.blocker.rules
        removed = [rule for rule in current if rule not in snapshot_rules]
        added = [rule for rule in snapshot_rules if rule not in current]
        if added or removed:
            self._replay(
                worker_id, ("rules", (pack_rules(added), pack_rules(removed))),
            )
        if rows:
            self._replay(
                worker_id,
                ("adopt", [(plane, blob) for plane, _region, blob in rows]),
            )
        for message in self._journals[worker_id]:
            self._replay(worker_id, message)
        with self._telemetry_lock:
            self.worker_recoveries += 1

    def _roundtrip(
        self,
        worker_ids: list[int],
        messages: list[tuple],
        journal: bool = False,
        recoverable: bool = True,
    ) -> list:
        """Send to each worker, then gather — batches overlap in flight.

        Every involved pipe lock is taken up front, in worker order, so
        a barrier-style command can never interleave with an in-flight
        lane feed on the same pipe.  Deadlock-free: lane threads only
        ever hold a single lock, and multi-lock acquisition happens on
        the gateway thread alone.  The gather runs through
        :meth:`_exchange`, so every reply wait is bounded and, with
        recovery on, a death mid-barrier revives the worker and re-sends
        only its message.
        """
        locks = [self._locks[worker_id] for worker_id in sorted(set(worker_ids))]
        for lock in locks:
            lock.acquire()
        try:
            dispatched = []
            for worker_id, message in zip(worker_ids, messages):
                try:
                    self._connections[worker_id].send(message)
                    dispatched.append(True)
                except (BrokenPipeError, OSError):
                    # A dead or flaky pipe: settle it in the gather,
                    # where the death/retry machinery lives.
                    dispatched.append(False)
            return [
                self._exchange(
                    worker_id, message, journal=journal,
                    recoverable=recoverable, sent=sent,
                )
                for (worker_id, message), sent
                in zip(zip(worker_ids, messages), dispatched)
            ]
        finally:
            for lock in locks:
                lock.release()

    def lane_feed_encoded(
        self,
        plane: int,
        blob: bytes,
        in_warmup: int,
        watermark: float | None,
    ) -> PlaneFlushResult:
        """One lane-dispatched, pre-encoded batch straight to its worker.

        The ingress-lane fast path: ``blob`` arrives already wire-packed
        (encoded once, at the lane), so the gateway side ships bytes and
        reads back a counter tuple — no re-encode anywhere.  Lanes
        feeding different workers run fully in parallel; lanes sharing a
        worker serialise only on that worker's pipe lock.
        """
        if self._closed:
            raise ValidationError("process backend already closed")
        self._ensure_started()
        worker_id = self._worker_of(plane)
        message = ("flush", ([(plane, blob, in_warmup)], watermark))
        with self._locks[worker_id]:
            payload = self._exchange(worker_id, message, journal=True)
        return payload[0]

    @property
    def ring_spills(self) -> int:
        """Lane batches that fell back to the pipe (full ring/oversize)."""
        return sum(self._spills.values())

    def _ring_for(self, lane: int, worker_id: int) -> SpscRing:
        """The (lane, worker) ring, created and announced on first use.

        Called under the worker's pipe lock: the attach round trip can
        never interleave with another request on the same pipe, and the
        ring is fully attached worker-side before any ``ring_flush``
        references it.
        """
        ring = self._rings.get((lane, worker_id))
        if ring is None:
            ring = SpscRing.create(self._ring_slot_size, self._ring_slots)
            try:
                # Supervised attach: a worker death here revives (with
                # recovery on) and re-announces this same segment to the
                # respawned worker before the first ring_flush names it.
                self._exchange(worker_id, ("attach_ring", (lane, ring.name)))
            except BaseException:
                ring.unlink()
                raise
            self._rings[(lane, worker_id)] = ring
        return ring

    def lane_feed_parts(
        self,
        lane: int,
        plane: int,
        parts: list[bytes],
        in_warmup: int,
        watermark: float | None,
    ) -> PlaneFlushResult:
        """One lane batch as encoder output parts — the zero-copy path.

        ``parts`` is :meth:`~repro.streaming.wire.AlertBatchBuilder.
        finish_parts` output: buffers whose concatenation is the
        ``pack_alerts`` payload.  With the ``ring`` transport they are
        written in place into the (lane, worker) shared-memory ring and
        only a control message crosses the pipe; the worker decodes the
        slot via memoryview and replies with counters.  Batches that
        exceed the slot size (or find no free slot) spill to the classic
        pipe path, counted in :attr:`ring_spills` — slower, never wrong.
        With the ``pipe`` transport every batch takes the classic path.

        While a worker's circuit breaker is open (it recently died, or
        its pipe has been flaking) batches bypass the ring and take the
        pipe path until the breaker's probation closes it.  With
        recovery on, every ring batch also materialises its pipe form
        for the journal — one extra payload copy per batch, the measured
        recovery overhead — because a respawned worker's fresh ring no
        longer holds the slot a dead one left behind.
        """
        if self._closed:
            raise ValidationError("process backend already closed")
        self._ensure_started()
        worker_id = self._worker_of(plane)
        with self._locks[worker_id]:
            use_ring = (
                self.lane_transport == "ring"
                and self._breakers[worker_id].allow_ring
            )
            seq = None
            if use_ring:
                ring = self._ring_for(lane, worker_id)
                seq = ring.try_write(parts)
                if seq is None:
                    key = (lane, worker_id)
                    self._spills[key] = self._spills.get(key, 0) + 1
            wire = None
            if seq is not None and not self.worker_recovery:
                # Pure zero-copy: no pipe-form payload is materialised.
                message = ("ring_flush", (lane, plane, in_warmup, watermark))
            else:
                message = (
                    "flush", ([(plane, b"".join(parts), in_warmup)], watermark)
                )
                if seq is not None:
                    # Ring carries the payload; the canonical pipe form
                    # exists only for the journal and any death re-send.
                    wire = ("ring_flush", (lane, plane, in_warmup, watermark))
            payload = self._exchange(
                worker_id, message, journal=True, wire=wire,
            )
        return payload[0]

    def flush(
        self, batches: Sequence[PlaneBatch], watermark: float | None,
    ) -> list[PlaneFlushResult]:
        if self._closed:
            raise ValidationError("process backend already closed")
        self._ensure_started()
        per_worker: dict[int, list[tuple[int, bytes, int]]] = {}
        for plane, alerts, in_warmup in batches:
            per_worker.setdefault(self._worker_of(plane), []).append(
                (plane, pack_alerts(alerts), in_warmup)
            )
        worker_ids = sorted(per_worker)
        replies = self._roundtrip(
            worker_ids,
            [("flush", (per_worker[w], watermark)) for w in worker_ids],
            journal=True,
        )
        results: list[PlaneFlushResult] = []
        for reply in replies:
            results.extend(reply)
        return results

    def snapshots(self) -> list[PlaneSnapshot]:
        if self._workers is None:
            return [
                PlaneSnapshot(
                    plane_id=plane, n_shards=self._n_shards, processed=0,
                    blocked=0, aggregates=0, clusters=0, storm_episodes=0,
                    emerging_flags=0, open_sessions=0, active_components=0,
                    retained_representatives=0, min_open_first=None,
                )
                for plane in range(self._n_planes)
            ]
        worker_ids = list(range(self.n_workers))
        replies = self._roundtrip(worker_ids, [("snapshot", None)] * self.n_workers)
        snapshots: list[PlaneSnapshot] = []
        for reply in replies:
            snapshots.extend(reply)
        snapshots.sort(key=lambda snapshot: snapshot.plane_id)
        return snapshots

    def rebalance(self, n_shards: int) -> None:
        require_positive(n_shards, "n_shards")
        self._n_shards = int(n_shards)
        if self._workers is None:
            # Planes don't exist yet; they will be born on the new ring.
            self._config = dataclasses.replace(self._config, n_shards=n_shards)
            return
        worker_ids = list(range(self.n_workers))
        self._roundtrip(
            worker_ids, [("rebalance", n_shards)] * self.n_workers,
            journal=True,
        )

    def scale(
        self,
        n_planes: int,
        moved: dict[str, tuple[int, int]],
        n_shards: int,
    ) -> list[PlaneSnapshot]:
        require_positive(n_planes, "n_planes")
        require_positive(n_shards, "n_shards")
        if self._closed:
            raise ValidationError("process backend already closed")
        self._n_shards = int(n_shards)
        old_planes = self._n_planes
        self._n_planes = int(n_planes)
        if self._workers is None:
            # Nothing has flowed, so there is no state to migrate; the
            # planes will be born on the new topology at first flush —
            # and since the fleet hasn't spawned yet, the worker clamp
            # can still follow the new plane count.
            self.n_workers = min(self._requested_workers, self._n_planes)
            self._config = dataclasses.replace(self._config, n_shards=n_shards)
            return self.snapshots()
        # Round 1 — export: each source worker detaches its moved
        # regions' plane state and hands it back as packed bytes.
        exports: dict[int, list[tuple[int, str]]] = {}
        for region, (source, _) in moved.items():
            exports.setdefault(self._worker_of(source), []).append(
                (source, region)
            )
        blobs: dict[str, bytes] = {}
        if exports:
            worker_ids = sorted(exports)
            # Not recoverable: an export is destructive, and a death
            # mid-migration loses detached state a respawn cannot
            # reconstruct — the gateway poisons itself on this failure.
            replies = self._roundtrip(
                worker_ids,
                [("export_regions", exports[w]) for w in worker_ids],
                recoverable=False,
            )
            for worker_id, reply in zip(worker_ids, replies):
                for (_, region), blob in zip(exports[worker_id], reply):
                    blobs[region] = blob
        # Round 2 — apply: every worker drops dead planes, creates its
        # share of new ones, and adopts the packed states routed to it.
        creates: dict[int, list[int]] = {w: [] for w in range(self.n_workers)}
        drops: dict[int, list[int]] = {w: [] for w in range(self.n_workers)}
        adopts: dict[int, list[tuple[int, bytes]]] = {
            w: [] for w in range(self.n_workers)
        }
        for plane in range(old_planes, n_planes):
            creates[self._worker_of(plane)].append(plane)
        for plane in range(n_planes, old_planes):
            drops[self._worker_of(plane)].append(plane)
        for region, (_, destination) in moved.items():
            adopts[self._worker_of(destination)].append(
                (destination, blobs[region])
            )
        worker_ids = list(range(self.n_workers))
        replies = self._roundtrip(worker_ids, [
            ("scale", (self._n_shards, creates[w], drops[w], adopts[w]))
            for w in worker_ids
        ], recoverable=False)
        snapshots: list[PlaneSnapshot] = []
        for reply in replies:
            snapshots.extend(reply)
        snapshots.sort(key=lambda snapshot: snapshot.plane_id)
        # The plane → worker mapping changed: old snapshots/journals
        # cannot revive anything any more.  Re-baseline the fleet.
        self._refresh_snapshots()
        return snapshots

    def resize_workers(self, n_workers: int) -> None:
        """Grow or shrink the live worker fleet, re-homing planes.

        A barrier operation (the gateway flushes first, so nothing is in
        flight).  Plane ``p`` moves from worker ``p % old`` to
        ``p % new`` whenever those differ, as packed plane state — the
        same ``pack_plane_state`` migration live plane scale-out uses —
        so volume accounting is exact across the transition.  Shrinking
        ejects the surplus workers' planes first, then stops and joins
        them; growing forks fresh workers (inheriting the current rule
        table) and installs their migrated planes.  All shared-memory
        rings are retired wholesale — every (lane, worker) key is void
        under the new mapping — and lazily recreated on the next lane
        feed.  Not recoverable mid-flight: a worker death during the
        migration surfaces as :class:`WorkerDiedError` with detached
        state at risk, and the gateway poisons itself.
        """
        require_positive(n_workers, "n_workers")
        if self._closed:
            raise ValidationError("process backend already closed")
        self._requested_workers = int(n_workers)
        new = min(self._requested_workers, self._n_planes)
        if self._workers is None:
            # Nothing has flowed; the fleet will be born at the new size.
            self.n_workers = new
            return
        old = self.n_workers
        if new == old:
            return
        held = list(self._locks)
        for lock in held:
            lock.acquire()
        try:
            # Round 1 — eject: every plane whose home changes leaves its
            # old worker as packed (plane, region, blob) rows.
            rows: list[tuple[int, str, bytes]] = []
            for worker_id in range(old):
                moving = [
                    p for p in self._planes_of(worker_id) if p % new != worker_id
                ]
                if moving:
                    rows.extend(self._exchange(
                        worker_id, ("eject_planes", moving), recoverable=False,
                    ))
            adopts: dict[int, list[tuple[int, bytes]]] = {
                w: [] for w in range(new)
            }
            for plane, _region, blob in rows:
                adopts[plane % new].append((plane, blob))
            # Round 2a — surviving workers create their newly homed
            # planes and adopt the migrated state.
            for worker_id in range(min(old, new)):
                create = [
                    p for p in range(self._n_planes)
                    if p % new == worker_id and p % old != worker_id
                ]
                if create or adopts[worker_id]:
                    self._exchange(
                        worker_id,
                        ("install_planes",
                         (self._n_shards, create, adopts[worker_id])),
                        recoverable=False,
                    )
            # Round 2b — shrink: surplus workers own nothing now; stop
            # and join them (terminate → kill escalation, never a
            # zombie) and retire their pipes.
            if new < old:
                for worker_id in range(new, old):
                    try:
                        self._exchange(
                            worker_id, ("stop", None), recoverable=False,
                        )
                    except (WorkerDiedError, WorkerTimeoutError):
                        pass  # dying on the way out; it holds nothing
                for worker_id in range(new, old):
                    self._join_worker(self._workers[worker_id])
                    self._connections[worker_id].close()
                del self._workers[new:]
                del self._connections[new:]
                del self._locks[new:]
                del self._breakers[new:]
                del self._snapshots[new:]
                del self._journals[new:]
            self.n_workers = new
            # Round 2c — grow: fresh workers fork with their full plane
            # lists (empty planes, current rule table) and adopt the
            # state migrating in.
            if new > old:
                for worker_id in range(old, new):
                    worker, parent_end = self._spawn_worker(worker_id)
                    self._workers.append(worker)
                    self._connections.append(parent_end)
                    self._locks.append(threading.Lock())
                    self._breakers.append(CircuitBreaker())
                    self._snapshots.append(([], []))
                    self._journals.append([])
                    if adopts[worker_id]:
                        self._exchange(
                            worker_id, ("adopt", adopts[worker_id]),
                            recoverable=False,
                        )
            # Every (lane, worker) ring key is void under the new
            # mapping; surviving workers close their stale attachments
            # when the replacement segment is announced.
            for ring in self._rings.values():
                ring.unlink()
            self._rings = {}
        finally:
            for lock in held:
                lock.release()
        self._refresh_snapshots()

    #: ``rebalance(n_workers=...)``-compatible alias (the thread backend
    #: spells pool resizing ``resize``).
    resize = resize_workers

    def apply_rules(self, delta: RuleDelta) -> None:
        """Ship a learned rule delta to every worker's shared blocker.

        Additions travel wire-packed (:func:`~repro.streaming.wire.pack_rules`);
        removals are bare strategy ids.  The parent-side blocker is kept
        as an always-current mirror: before the workers exist it *is*
        the spawn-time table (late-born planes start from it), and after
        they exist it is what ``checkpoint_state`` records as the
        authoritative rule table — the workers never read it again, so
        the double application cannot double-block.
        """
        delta.apply_to(self._config.blocker)
        if self._workers is None:
            return
        message = ("rules", (pack_rules(delta.added), pack_rules(delta.removed)))
        worker_ids = list(range(self.n_workers))
        self._roundtrip(worker_ids, [message] * self.n_workers, journal=True)

    def checkpoint(self, pairs: Sequence[tuple[int, str]]) -> list[bytes]:
        if self._closed:
            raise ValidationError("process backend already closed")
        if not pairs:
            return []
        if self._workers is None:
            # No events have flowed, so no plane owns state yet — but a
            # region pair implies the gateway routed something, which
            # means a flush must have spawned the fleet first.
            raise ValidationError(
                "checkpoint requested for regions but no worker has run; "
                "flush before checkpointing"
            )
        per_worker: dict[int, list[tuple[int, str]]] = {}
        for plane, region in pairs:
            per_worker.setdefault(self._worker_of(plane), []).append(
                (plane, region)
            )
        worker_ids = sorted(per_worker)
        replies = self._roundtrip(
            worker_ids,
            [("checkpoint", per_worker[w]) for w in worker_ids],
        )
        blob_of: dict[tuple[int, str], bytes] = {}
        for worker_id, reply in zip(worker_ids, replies):
            for pair, blob in zip(per_worker[worker_id], reply):
                blob_of[pair] = blob
        return [blob_of[(plane, region)] for plane, region in pairs]

    def restore(self, adopts: Sequence[tuple[int, bytes]]) -> None:
        if self._closed:
            raise ValidationError("process backend already closed")
        if not adopts:
            return
        if self._workers is None:
            # Spawn now so the restored state lands in the worker
            # processes that will execute it; the spawn-time config
            # already carries the restored blocker table.
            self._ensure_started()
        per_worker: dict[int, list[tuple[int, bytes]]] = {}
        for plane, blob in adopts:
            per_worker.setdefault(self._worker_of(plane), []).append(
                (plane, blob)
            )
        worker_ids = sorted(per_worker)
        self._roundtrip(
            worker_ids,
            [("adopt", per_worker[w]) for w in worker_ids],
            journal=True,
        )

    def drain(self, watermark: float | None) -> list[PlaneDrainResult]:
        if self._workers is None:
            return [
                PlaneDrainResult(
                    plane_id=plane, processed=0, blocked=0, aggregates=0,
                    clusters=0, storm_episodes=0, emerging_flags=0,
                )
                for plane in range(self._n_planes)
            ]
        worker_ids = list(range(self.n_workers))
        replies = self._roundtrip(worker_ids, [("drain", watermark)] * self.n_workers)
        results: list[PlaneDrainResult] = []
        for reply in replies:
            for result, aggregates, clusters in reply:
                result.retained_aggregates = unpack_aggregates(aggregates)
                result.retained_clusters = unpack_clusters(clusters)
                results.append(result)
        results.sort(key=lambda result: result.plane_id)
        return results

    @staticmethod
    def _join_worker(worker, grace: float = 5.0, term_grace: float = 2.0) -> None:
        """Join one worker, escalating terminate → kill; never a zombie.

        A worker that ignores its stop gets SIGTERM and a grace period;
        one that survives *that* gets SIGKILL, which cannot be ignored.
        Every path ends in a join, so no exit status is ever left
        unreaped for the kernel to hold as a zombie.
        """
        worker.join(timeout=grace)
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=term_grace)
        if worker.is_alive():
            worker.kill()
            worker.join()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._workers is None:
            return
        for connection in self._connections:
            try:
                connection.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                if connection.poll(1.0):
                    connection.recv()
            except (EOFError, OSError):
                pass
            connection.close()
        for worker in self._workers:
            self._join_worker(worker)
        self._workers = None
        self._connections = []
        # Rings outlive the workers by design (a crashed worker must not
        # take the segment down with it); the creator retires them here,
        # exactly once, strictly after every worker is joined — never
        # before, so no attacher can still hold a slot mid-consume when
        # the segment goes away.
        for ring in self._rings.values():
            ring.unlink()
        self._rings = {}

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def make_backend(
    name: str,
    n_planes: int,
    config: PlaneConfig,
    n_workers: int | None = None,
    lane_transport: str = "ring",
    ring_slot_size: int | None = None,
    ring_slots: int | None = None,
    worker_recovery: bool = False,
    worker_checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
) -> PlaneBackend:
    """Build the named backend; ``n_workers`` defaults to 4 for pools.

    The lane-transport knobs shape only the ``process`` backend's
    ingress-lane hand-off (shared-memory rings vs the classic pipe), and
    the worker-fleet supervision knobs (recovery, snapshot cadence,
    reply timeout) only its pipes; in-process backends have neither a
    hand-off nor a fleet to supervise and ignore them.
    """
    workers = 4 if n_workers is None else n_workers
    if name == "serial":
        return SerialPlaneBackend(n_planes, config)
    if name == "thread":
        return ThreadPlaneBackend(n_planes, config, n_workers=workers)
    if name == "process":
        return ProcessPlaneBackend(
            n_planes, config, n_workers=workers,
            lane_transport=lane_transport,
            ring_slot_size=ring_slot_size, ring_slots=ring_slots,
            worker_recovery=worker_recovery,
            worker_checkpoint_every=worker_checkpoint_every,
            worker_timeout=worker_timeout,
        )
    raise ValidationError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )
