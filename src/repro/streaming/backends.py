"""Pluggable shard execution backends for the alert gateway.

The gateway routes events to shards; a *backend* decides where the
per-shard :class:`~repro.streaming.processor.StreamProcessor` state
lives and what executes it:

* ``serial`` — all shards in the calling thread, one after another.
  Zero coordination overhead; the PR-1 behaviour and the baseline every
  other backend must reconcile against.
* ``thread`` — a worker pool runs the shards of one flush cycle
  concurrently.  Shard state stays in-process, so adoption, export and
  draining are plain method calls; on multi-core machines the shard
  work overlaps, on any machine the batched path amortises per-event
  overhead.
* ``process`` — shards are partitioned across worker processes
  (``shard % n_workers``); event batches are pickled to the owning
  worker and aggregate emissions are pickled back.  True parallelism
  regardless of the GIL, at the price of serialisation per flush.

Every backend speaks the same protocol — ``process_batches`` with a
barrier per call, ``export_sessions``/``adopt`` for rebalancing,
``drain``/``close`` for shutdown — and every backend produces *bitwise
identical* volume accounting: a shard's reaction chain only ever sees
its own events in arrival order, so where it runs cannot change what it
counts.  The parity harness in ``tests/streaming/test_backends.py``
pins that invariant down for every backend × shard count.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.common.validation import require_positive
from repro.core.mitigation.aggregation import AggregatedAlert
from repro.core.mitigation.blocking import AlertBlocker
from repro.streaming.dedup import OpenSession
from repro.streaming.processor import StreamProcessor

__all__ = [
    "BACKEND_NAMES",
    "BatchResult",
    "ShardDrainResult",
    "ShardBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]

BACKEND_NAMES = ("serial", "thread", "process")


@dataclass(slots=True)
class BatchResult:
    """What one shard reports after processing one micro-batch."""

    shard_id: int
    processed: int
    blocked: int
    emitted: list[AggregatedAlert]
    min_open_first: float | None
    open_sessions: int


@dataclass(slots=True)
class ShardDrainResult:
    """One shard's final flush and lifetime counters."""

    shard_id: int
    emitted: list[AggregatedAlert]
    seen: int = 0
    blocked: int = 0
    emitted_total: int = 0


class ShardBackend(Protocol):
    """The execution contract the gateway programs against."""

    name: str

    @property
    def n_shards(self) -> int:
        """Number of shards this backend executes."""
        ...

    def process_batches(self, batches: Sequence[tuple[int, list[Alert]]]) -> list[BatchResult]:
        """Run one flush cycle; a barrier — returns when every batch is done.

        ``batches`` holds at most one batch per shard; events within a
        batch are in arrival order.
        """
        ...

    def open_sessions_total(self) -> int:
        """In-flight R2 sessions across all shards (as of the last barrier)."""
        ...

    def min_open_first(self) -> float | None:
        """Earliest open-session start across shards (correlator horizon)."""
        ...

    def export_sessions(self) -> list[OpenSession]:
        """Remove and return every open session (rebalancing hand-off)."""
        ...

    def adopt(self, assignments: Sequence[tuple[int, OpenSession]]) -> None:
        """Install migrated sessions onto their new shards."""
        ...

    def drain(self) -> list[ShardDrainResult]:
        """Flush every shard's open state; the backend stays closeable only."""
        ...

    def close(self) -> None:
        """Release workers; idempotent."""
        ...


def _build_processors(
    n_shards: int, blocker: AlertBlocker, aggregation_window: float
) -> list[StreamProcessor]:
    return [
        StreamProcessor(shard, blocker, aggregation_window)
        for shard in range(n_shards)
    ]


class SerialBackend:
    """All shards execute inline in the calling thread."""

    name = "serial"

    def __init__(
        self,
        n_shards: int,
        blocker: AlertBlocker,
        aggregation_window: float = 900.0,
    ) -> None:
        require_positive(n_shards, "n_shards")
        self.processors = _build_processors(n_shards, blocker, aggregation_window)

    @property
    def n_shards(self) -> int:
        return len(self.processors)

    def process_batches(self, batches: Sequence[tuple[int, list[Alert]]]) -> list[BatchResult]:
        return [self._run_one(shard, alerts) for shard, alerts in batches]

    def _run_one(self, shard: int, alerts: list[Alert]) -> BatchResult:
        processor = self.processors[shard]
        blocked, emitted = processor.ingest_batch(alerts)
        return BatchResult(
            shard_id=shard,
            processed=len(alerts),
            blocked=blocked,
            emitted=emitted,
            min_open_first=processor.min_open_first(),
            open_sessions=processor.open_sessions,
        )

    def open_sessions_total(self) -> int:
        return sum(p.open_sessions for p in self.processors)

    def min_open_first(self) -> float | None:
        opens = [
            first for first in (p.min_open_first() for p in self.processors)
            if first is not None
        ]
        return min(opens) if opens else None

    def export_sessions(self) -> list[OpenSession]:
        sessions: list[OpenSession] = []
        for processor in self.processors:
            sessions.extend(processor.export_sessions())
        return sessions

    def adopt(self, assignments: Sequence[tuple[int, OpenSession]]) -> None:
        by_shard: dict[int, list[OpenSession]] = {}
        for shard, session in assignments:
            by_shard.setdefault(shard, []).append(session)
        for shard, sessions in by_shard.items():
            self.processors[shard].adopt_sessions(sessions)

    def drain(self) -> list[ShardDrainResult]:
        return [
            ShardDrainResult(
                shard_id=p.shard_id,
                emitted=p.drain(),
                seen=p.seen,
                blocked=p.blocked,
                emitted_total=p.emitted,
            )
            for p in self.processors
        ]

    def close(self) -> None:
        pass


class ThreadBackend(SerialBackend):
    """Shards of one flush cycle run on a thread pool.

    Shard state still lives in-process (introspection, export and drain
    are inherited verbatim) — only ``process_batches`` fans out.  Each
    cycle touches each shard at most once, so no two tasks ever share a
    processor.
    """

    name = "thread"

    def __init__(
        self,
        n_shards: int,
        blocker: AlertBlocker,
        aggregation_window: float = 900.0,
        n_workers: int = 4,
    ) -> None:
        super().__init__(n_shards, blocker, aggregation_window)
        require_positive(n_workers, "n_workers")
        self.n_workers = min(int(n_workers), n_shards)
        self._pool: ThreadPoolExecutor | None = None

    def process_batches(self, batches: Sequence[tuple[int, list[Alert]]]) -> list[BatchResult]:
        if len(batches) <= 1:
            return super().process_batches(batches)
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="shard"
            )
        return list(self._pool.map(
            lambda item: self._run_one(item[0], item[1]), batches
        ))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _worker_loop(connection, shard_ids, blocker, aggregation_window) -> None:
    """One process-backend worker: owns the processors of its shards."""
    processors = {
        shard: StreamProcessor(shard, blocker, aggregation_window)
        for shard in shard_ids
    }
    while True:
        try:
            kind, payload = connection.recv()
        except EOFError:
            break
        try:
            if kind == "batch":
                results = []
                for shard, alerts in payload:
                    processor = processors[shard]
                    blocked, emitted = processor.ingest_batch(alerts)
                    results.append(BatchResult(
                        shard_id=shard,
                        processed=len(alerts),
                        blocked=blocked,
                        emitted=emitted,
                        min_open_first=processor.min_open_first(),
                        open_sessions=processor.open_sessions,
                    ))
                connection.send(("ok", results))
            elif kind == "export":
                sessions = []
                for shard in shard_ids:
                    sessions.extend(processors[shard].export_sessions())
                connection.send(("ok", sessions))
            elif kind == "adopt":
                for shard, sessions in payload:
                    processors[shard].adopt_sessions(sessions)
                connection.send(("ok", None))
            elif kind == "drain":
                connection.send(("ok", [
                    ShardDrainResult(
                        shard_id=p.shard_id,
                        emitted=p.drain(),
                        seen=p.seen,
                        blocked=p.blocked,
                        emitted_total=p.emitted,
                    )
                    for p in (processors[shard] for shard in shard_ids)
                ]))
            elif kind == "stop":
                connection.send(("ok", None))
                break
            else:
                connection.send(("error", f"unknown command {kind!r}"))
        except Exception as exc:  # surface worker failures to the parent
            connection.send(("error", f"{type(exc).__name__}: {exc}"))


class ProcessBackend:
    """Shards are partitioned across worker processes.

    Workers are spawned lazily on first use, so constructing a gateway
    costs nothing until events flow.  Shard ``s`` lives in worker
    ``s % n_workers`` for the backend's whole lifetime — state never
    migrates between workers except through ``export_sessions``.
    """

    name = "process"

    def __init__(
        self,
        n_shards: int,
        blocker: AlertBlocker,
        aggregation_window: float = 900.0,
        n_workers: int = 4,
    ) -> None:
        require_positive(n_shards, "n_shards")
        require_positive(n_workers, "n_workers")
        self._n_shards = int(n_shards)
        self.n_workers = min(int(n_workers), self._n_shards)
        self._blocker = blocker
        self._window = float(aggregation_window)
        self._workers: list[multiprocessing.Process] | None = None
        self._connections: list = []
        self._pending_adoptions: list[tuple[int, OpenSession]] = []
        # Last-barrier views, kept so introspection never needs a round
        # trip: refreshed from every BatchResult.
        self._open_sessions: dict[int, int] = {}
        self._min_open_first: dict[int, float | None] = {}
        self._closed = False

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def _worker_of(self, shard: int) -> int:
        return shard % self.n_workers

    def _start(self) -> None:
        context = multiprocessing.get_context()
        self._workers = []
        self._connections = []
        shards_of = [
            [s for s in range(self._n_shards) if self._worker_of(s) == w]
            for w in range(self.n_workers)
        ]
        for shard_ids in shards_of:
            parent_end, child_end = context.Pipe()
            worker = context.Process(
                target=_worker_loop,
                args=(child_end, shard_ids, self._blocker, self._window),
                daemon=True,
            )
            worker.start()
            child_end.close()
            self._workers.append(worker)
            self._connections.append(parent_end)
        if self._pending_adoptions:
            self._send_adoptions(self._pending_adoptions)
            self._pending_adoptions = []

    def _roundtrip(self, worker_ids: list[int], messages: list[tuple]) -> list:
        """Send to each worker, then gather — batches overlap in flight."""
        for worker_id, message in zip(worker_ids, messages):
            self._connections[worker_id].send(message)
        replies = []
        for worker_id in worker_ids:
            status, payload = self._connections[worker_id].recv()
            if status != "ok":
                raise ValidationError(f"shard worker {worker_id} failed: {payload}")
            replies.append(payload)
        return replies

    def process_batches(self, batches: Sequence[tuple[int, list[Alert]]]) -> list[BatchResult]:
        if self._closed:
            raise ValidationError("process backend already closed")
        if self._workers is None:
            self._start()
        per_worker: dict[int, list[tuple[int, list[Alert]]]] = {}
        for shard, alerts in batches:
            per_worker.setdefault(self._worker_of(shard), []).append((shard, alerts))
        worker_ids = sorted(per_worker)
        replies = self._roundtrip(
            worker_ids, [("batch", per_worker[w]) for w in worker_ids]
        )
        results: list[BatchResult] = []
        for reply in replies:
            for result in reply:
                self._open_sessions[result.shard_id] = result.open_sessions
                self._min_open_first[result.shard_id] = result.min_open_first
                results.append(result)
        return results

    def open_sessions_total(self) -> int:
        return sum(self._open_sessions.values())

    def min_open_first(self) -> float | None:
        opens = [first for first in self._min_open_first.values() if first is not None]
        return min(opens) if opens else None

    def export_sessions(self) -> list[OpenSession]:
        if self._workers is None:
            pending = [session for _, session in self._pending_adoptions]
            self._pending_adoptions = []
            self._open_sessions.clear()
            self._min_open_first.clear()
            return pending
        worker_ids = list(range(self.n_workers))
        replies = self._roundtrip(worker_ids, [("export", None)] * self.n_workers)
        self._open_sessions.clear()
        self._min_open_first.clear()
        sessions: list[OpenSession] = []
        for reply in replies:
            sessions.extend(reply)
        return sessions

    def adopt(self, assignments: Sequence[tuple[int, OpenSession]]) -> None:
        assignments = list(assignments)
        # Seed the last-barrier views immediately: the correlator horizon
        # must see adopted sessions before the next flush refreshes the
        # owning shard, or _finalize_ready would close components their
        # eventual aggregates could still join.
        for shard, session in assignments:
            self._open_sessions[shard] = self._open_sessions.get(shard, 0) + 1
            current = self._min_open_first.get(shard)
            if current is None or session.first_at < current:
                self._min_open_first[shard] = session.first_at
        if self._workers is None:
            # Defer until the workers exist — they are spawned lazily.
            self._pending_adoptions.extend(assignments)
            return
        self._send_adoptions(assignments)

    def _send_adoptions(self, assignments: list[tuple[int, OpenSession]]) -> None:
        per_worker: dict[int, dict[int, list[OpenSession]]] = {}
        for shard, session in assignments:
            per_worker.setdefault(self._worker_of(shard), {}).setdefault(shard, []).append(session)
        worker_ids = sorted(per_worker)
        self._roundtrip(worker_ids, [
            ("adopt", list(per_worker[w].items())) for w in worker_ids
        ])

    def drain(self) -> list[ShardDrainResult]:
        if self._workers is None:
            if self._pending_adoptions:
                # Adopted-but-never-flushed sessions still hold window
                # state that must be emitted; spawn the workers so the
                # normal drain path closes them.
                self._start()
            else:
                return [
                    ShardDrainResult(shard_id=shard, emitted=[])
                    for shard in range(self._n_shards)
                ]
        worker_ids = list(range(self.n_workers))
        replies = self._roundtrip(worker_ids, [("drain", None)] * self.n_workers)
        self._open_sessions.clear()
        self._min_open_first.clear()
        results: list[ShardDrainResult] = []
        for reply in replies:
            results.extend(reply)
        results.sort(key=lambda result: result.shard_id)
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._workers is None:
            return
        for connection in self._connections:
            try:
                connection.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for connection in self._connections:
            try:
                if connection.poll(1.0):
                    connection.recv()
            except (EOFError, OSError):
                pass
            connection.close()
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.terminate()
        self._workers = None
        self._connections = []

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def make_backend(
    name: str,
    n_shards: int,
    blocker: AlertBlocker,
    aggregation_window: float = 900.0,
    n_workers: int | None = None,
) -> ShardBackend:
    """Build the named backend; ``n_workers`` defaults to 4 for pools."""
    workers = 4 if n_workers is None else n_workers
    if name == "serial":
        return SerialBackend(n_shards, blocker, aggregation_window)
    if name == "thread":
        return ThreadBackend(n_shards, blocker, aggregation_window, n_workers=workers)
    if name == "process":
        return ProcessBackend(n_shards, blocker, aggregation_window, n_workers=workers)
    raise ValidationError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )
