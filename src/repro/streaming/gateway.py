"""The online alert gateway: sharded ingestion + incremental mitigation.

This is the streaming counterpart of
:class:`~repro.core.mitigation.pipeline.MitigationPipeline`: instead of
re-running the reaction chain over a finished trace, the gateway accepts
one alert at a time (or micro-batches), routes it across N shards on a
consistent-hash ring keyed by ``(service, title template)``, and keeps
every reaction's state incremental and bounded:

* shards run R1 blocking, R2 session-window dedup, and the R4
  storm/emerging ring counters (:class:`StreamProcessor`);
* the gateway runs one :class:`OnlineCorrelator` (R3) over the merged,
  heavily compressed stream of aggregate representatives the shards
  emit — cascades cross services, so correlation cannot be shard-local.

On an in-order stream the end-of-run volume accounting (blocked,
aggregates, clusters) is *exactly* the batch pipeline's — the
reconciliation invariant ``GatewayStats.reconcile`` checks.  Out-of-order
events are processed best-effort and counted in ``late_events``.

>>> gateway = AlertGateway(graph, blocker=blocker, n_shards=4)   # doctest: +SKIP
>>> for alert in source:                                         # doctest: +SKIP
...     gateway.ingest(alert)
>>> stats = gateway.drain()                                      # doctest: +SKIP
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.common.validation import require_positive
from repro.core.mitigation.aggregation import AggregatedAlert
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import (
    AlertCluster,
    CorrelationAnalyzer,
    DependencyRuleBook,
)
from repro.streaming.correlator import OnlineCorrelator
from repro.streaming.processor import StreamProcessor
from repro.streaming.routing import ShardRouter
from repro.streaming.stats import GatewayStats
from repro.streaming.storm import OnlineStormDetector
from repro.topology.graph import DependencyGraph

__all__ = ["AlertGateway", "GatewaySnapshot"]


@dataclass(frozen=True, slots=True)
class GatewaySnapshot:
    """A consistent point-in-time view of gateway progress."""

    watermark: float | None
    input_alerts: int
    blocked_alerts: int
    aggregates_emitted: int
    clusters_finalized: int
    open_sessions: int
    active_components: int
    retained_representatives: int
    storm_episodes: int
    emerging_flags: int

    @property
    def outstanding_items(self) -> int:
        """Upper bound on diagnosis items still forming."""
        return self.open_sessions + self.active_components

    @property
    def estimated_reduction(self) -> float:
        """Rolling volume-reduction estimate (final + in-flight items)."""
        if self.input_alerts == 0:
            return 0.0
        items = self.clusters_finalized + self.outstanding_items
        return 1.0 - items / self.input_alerts


class AlertGateway:
    """Facade over the sharded online mitigation pipeline."""

    def __init__(
        self,
        graph: DependencyGraph,
        blocker: AlertBlocker | None = None,
        rulebook: DependencyRuleBook | None = None,
        n_shards: int = 4,
        aggregation_window: float = 900.0,
        correlation_window: float = 900.0,
        correlation_max_hops: int = 4,
        enable_storm_detection: bool = True,
        retain_artifacts: bool = True,
        finalize_every: int = 256,
    ) -> None:
        require_positive(finalize_every, "finalize_every")
        blocker = blocker or AlertBlocker()
        self._router = ShardRouter(n_shards)
        # One detector shared by every shard: ingestion is single-threaded,
        # so it sees the global in-order stream and R4 results are
        # independent of shard count (per-shard counters would dilute a
        # region's rate against the flood threshold and double-count
        # episodes that span shards).
        self._storm_detector = (
            OnlineStormDetector() if enable_storm_detection else None
        )
        self._processors = [
            StreamProcessor(
                shard_id=shard,
                blocker=blocker,
                aggregation_window=aggregation_window,
                storm_detector=self._storm_detector,
            )
            for shard in range(n_shards)
        ]
        self._correlator = OnlineCorrelator(CorrelationAnalyzer(
            graph,
            rulebook=rulebook,
            max_hops=correlation_max_hops,
            time_window=correlation_window,
        ))
        self._finalize_every = int(finalize_every)
        # R2 sessions key on (strategy, region) while the ring hashes
        # (service, title template); the two agree because a strategy's
        # service/title are fixed.  Pinning each strategy to the shard its
        # first alert hashes to makes that locality structural — external
        # JSONL feeds whose titles drift non-numerically within one
        # strategy still keep every session on a single shard.  The pin
        # map grows with the strategy population (configuration scale),
        # not with events.
        self._shard_of: dict[str, int] = {}
        self._retain = retain_artifacts
        self._drained = False
        self.stats = GatewayStats(n_shards=n_shards)
        self.aggregates: list[AggregatedAlert] = []
        self.clusters: list[AlertCluster] = []

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, alert: Alert) -> list[AggregatedAlert]:
        """Process one alert; returns aggregates it caused to close."""
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        started = time.perf_counter()
        stats = self.stats
        stats.input_alerts += 1
        if stats.watermark is None or alert.occurred_at >= stats.watermark:
            stats.watermark = alert.occurred_at
        else:
            stats.late_events += 1
        shard = self._shard_of.get(alert.strategy_id)
        if shard is None:
            shard = self._router.route(alert)
            self._shard_of[alert.strategy_id] = shard
        blocked, emitted = self._processors[shard].ingest(alert)
        if blocked:
            stats.blocked_alerts += 1
        for aggregate in emitted:
            self._absorb_aggregate(aggregate)
        if stats.input_alerts % self._finalize_every == 0:
            self._finalize_ready()
        stats.observe_latency(time.perf_counter() - started)
        return emitted

    def ingest_many(self, alerts: Iterable[Alert]) -> int:
        """Feed a micro-batch (or a whole source); returns the count."""
        count = 0
        for alert in alerts:
            self.ingest(alert)
            count += 1
        return count

    def drain(self) -> GatewayStats:
        """Flush every shard and finalise all clusters (end of stream)."""
        if self._drained:
            return self.stats
        for processor in self._processors:
            for aggregate in processor.drain():
                self._absorb_aggregate(aggregate)
        clusters = self._correlator.drain()
        self.stats.clusters_finalized += len(clusters)
        if self._retain:
            self.clusters.extend(clusters)
        if self._storm_detector is not None and self.stats.watermark is not None:
            self._storm_detector.finish(self.stats.watermark)
        self._refresh_signal_counts()
        self.stats.mark_finished()
        self._drained = True
        return self.stats

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> GatewaySnapshot:
        """A non-disruptive view of current progress."""
        self._refresh_signal_counts()
        return GatewaySnapshot(
            watermark=self.stats.watermark,
            input_alerts=self.stats.input_alerts,
            blocked_alerts=self.stats.blocked_alerts,
            aggregates_emitted=self.stats.aggregates_emitted,
            clusters_finalized=self.stats.clusters_finalized,
            open_sessions=sum(p.open_sessions for p in self._processors),
            active_components=self._correlator.active_components,
            retained_representatives=self._correlator.retained,
            storm_episodes=self.stats.storm_episodes,
            emerging_flags=self.stats.emerging_flags,
        )

    @property
    def processors(self) -> list[StreamProcessor]:
        """The per-shard processors (read-only use)."""
        return list(self._processors)

    @property
    def router(self) -> ShardRouter:
        """The consistent-hash router."""
        return self._router

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _absorb_aggregate(self, aggregate: AggregatedAlert) -> None:
        self.stats.aggregates_emitted += 1
        if self._retain:
            self.aggregates.append(aggregate)
        self._correlator.add(aggregate.representative)

    def _finalize_ready(self) -> None:
        if self.stats.watermark is None:
            return
        opens = [
            first for first in (p.min_open_first() for p in self._processors)
            if first is not None
        ]
        min_open_first = min(opens) if opens else None
        clusters = self._correlator.finalize_ready(self.stats.watermark, min_open_first)
        self.stats.clusters_finalized += len(clusters)
        if self._retain:
            self.clusters.extend(clusters)

    def _refresh_signal_counts(self) -> None:
        detector = self._storm_detector
        if detector is None:
            return
        self.stats.storm_episodes = detector.episode_count
        self.stats.emerging_flags = detector.emerging_count
