"""The online alert gateway: a thin ingress over region-partitioned planes.

This is the streaming counterpart of
:class:`~repro.core.mitigation.pipeline.MitigationPipeline`: instead of
re-running the reaction chain over a finished trace, the gateway accepts
one alert at a time (or micro-batches) and routes it through a two-level
partition:

* **level 1 — planes**: a :class:`~repro.streaming.routing.PlaneRouter`
  assigns each *region* to one of ``n_planes`` execution planes.  The
  whole mitigation chain is region-local (R2 sessions key on
  ``(strategy, region)``, R3 evidence requires equal regions, R4 flood
  rates are per ``(hour, region)``), so each
  :class:`~repro.streaming.plane.RegionPlane` runs R1-R4 end to end for
  its regions with no cross-plane coordination — including its own
  :class:`OnlineCorrelator` and :class:`OnlineStormDetector`, which
  therefore execute inside the worker threads/processes of the pluggable
  :mod:`~repro.streaming.backends`, not on the gateway loop;
* **level 2 — shards**: within a plane, a consistent-hash ring on
  ``(service, title template)`` spreads R1/R2 work across the plane's
  shard processors.

What remains on the gateway loop is deliberately thin: route to a plane
buffer, track the watermark and the global novelty-warmup prefix, flush
buffered batches to the backend, and merge per-plane snapshots/stats.

Ingestion has two paths with identical end-of-run accounting:

* :meth:`ingest` — one event, processed immediately at the default
  ``flush_size=1``;
* :meth:`ingest_batch` — events are routed into per-plane buffers and
  flushed to the backend ``flush_size`` events at a time (or whenever
  event time advances ``flush_interval`` seconds).

With ``ingress_lanes > 1`` both paths hand over to partitioned ingest
lanes (:mod:`~repro.streaming.lanes`): the caller's thread keeps only
routing and stream-global accounting, while lane threads run (or
wire-encode and ship) per-plane flushes concurrently — same end-of-run
accounting, N planes on N cores without the single-threaded ingress
ceiling.  On the ``process`` backend the encoded batches cross via
per-(lane, worker) shared-memory rings (:mod:`~repro.streaming.rings`)
by default — zero payload copies between the lane's encoder and the
worker's decoder — with ``lane_transport="pipe"`` as the classic
fallback.  Rule learning and streaming QoA compose with lanes via
**barrier mode**: the gateway keeps its classic gateway-global flush
trigger (so the learner's judgment schedule is identical to one lane)
and the lanes parallelise each flush cycle's execution, quiescing
before observations reach the learner.

:meth:`rebalance` re-shards every plane live: open R2 sessions migrate
across each plane's rebuilt consistent-hash ring without leaving the
plane (or its worker process), so no window state is lost and no state
crosses the wire.

With ``learn_rules=True`` the gateway also *derives* its R1 rules
online: planes report per-flush observation digests, the
:class:`~repro.streaming.learning.OnlineRuleLearner` promotes/renews/
demotes TTL'd blocking rules from streaming A4/A5 detection, and rule
deltas ship to the backend at flush barriers — identical learned
timelines on every backend.  ``enable_qoa=True`` scores per-strategy
alert quality incrementally from the same digests
(:class:`~repro.streaming.qoa.StreamQoAScorer`), frozen into
``stats.qoa`` at drain.  Both are off by default and cost nothing when
off.

On an in-order stream the end-of-run volume accounting (blocked,
aggregates, clusters) is *exactly* the batch pipeline's — the
reconciliation invariant ``GatewayStats.reconcile`` checks, for every
backend, plane count, shard count, and flush size.  Out-of-order events
are processed best-effort and counted in ``late_events``.

>>> gateway = AlertGateway(graph, blocker=blocker, n_planes=4,   # doctest: +SKIP
...                        backend="process", n_workers=4, flush_size=1024)
>>> gateway.ingest_batch(source)                                 # doctest: +SKIP
>>> stats = gateway.drain()                                      # doctest: +SKIP
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

import dataclasses

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.common.validation import require_positive
from repro.core.mitigation.aggregation import AggregatedAlert
from repro.core.mitigation.blocking import AlertBlocker, rule_from_dict, rule_to_dict
from repro.core.mitigation.correlation import AlertCluster, DependencyRuleBook
from repro.streaming.backends import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_WORKER_TIMEOUT,
    LANE_TRANSPORTS,
    PlaneBackend,
    make_backend,
)
from repro.core.antipatterns.base import DetectorThresholds
from repro.ml.sketch import DEFAULT_SKETCH_BUCKETS
from repro.streaming.detectors import StreamingDetectorSuite
from repro.streaming.lanes import LaneIngress
from repro.streaming.learning import LearnerConfig, OnlineRuleLearner
from repro.streaming.plane import PlaneConfig, PlaneSnapshot
from repro.streaming.processor import StreamProcessor
from repro.streaming.qoa import StreamQoAScorer
from repro.streaming.routing import PlaneRouter
from repro.streaming.stats import GatewayStats
from repro.streaming.wire import unpack_detection
from repro.streaming.storm import DEFAULT_WARMUP_ALERTS
from repro.topology.graph import DependencyGraph

__all__ = ["AlertGateway", "GatewaySnapshot"]

#: Default per-shard micro-batch size for the buffered backends.
DEFAULT_BATCH_FLUSH = 512


@dataclass(frozen=True, slots=True)
class GatewaySnapshot:
    """A consistent point-in-time view of gateway progress."""

    watermark: float | None
    input_alerts: int
    blocked_alerts: int
    aggregates_emitted: int
    clusters_finalized: int
    open_sessions: int
    active_components: int
    retained_representatives: int
    storm_episodes: int
    emerging_flags: int
    planes: tuple[PlaneSnapshot, ...] = ()

    @property
    def outstanding_items(self) -> int:
        """Upper bound on diagnosis items still forming."""
        return self.open_sessions + self.active_components

    @property
    def estimated_reduction(self) -> float:
        """Rolling volume-reduction estimate (final + in-flight items)."""
        if self.input_alerts == 0:
            return 0.0
        items = self.clusters_finalized + self.outstanding_items
        return 1.0 - items / self.input_alerts


class AlertGateway:
    """Facade over the plane-partitioned online mitigation pipeline."""

    def __init__(
        self,
        graph: DependencyGraph,
        blocker: AlertBlocker | None = None,
        rulebook: DependencyRuleBook | None = None,
        n_shards: int = 4,
        n_planes: int = 1,
        aggregation_window: float = 900.0,
        correlation_window: float = 900.0,
        correlation_max_hops: int = 4,
        enable_storm_detection: bool = True,
        retain_artifacts: bool = True,
        finalize_every: int = 256,
        backend: str = "serial",
        n_workers: int | None = None,
        flush_size: int | None = None,
        flush_interval: float | None = None,
        learn_rules: bool = False,
        learner_config: LearnerConfig | None = None,
        enable_qoa: bool = False,
        detect_antipatterns: bool = False,
        detector_thresholds: DetectorThresholds | None = None,
        sketch_buckets: int = DEFAULT_SKETCH_BUCKETS,
        ingress_lanes: int = 1,
        lane_transport: str = "ring",
        ring_slot_size: int | None = None,
        ring_slots: int | None = None,
        worker_recovery: bool = False,
        worker_checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        require_positive(n_planes, "n_planes")
        require_positive(finalize_every, "finalize_every")
        require_positive(ingress_lanes, "ingress_lanes")
        if flush_size is not None:
            require_positive(flush_size, "flush_size")
        if flush_interval is not None:
            require_positive(flush_interval, "flush_interval")
        if lane_transport not in LANE_TRANSPORTS:
            raise ValidationError(
                f"unknown lane transport {lane_transport!r}; "
                f"choose from {', '.join(LANE_TRANSPORTS)}"
            )
        self._blocker = blocker or AlertBlocker()
        self.learner = (
            OnlineRuleLearner(learner_config) if learn_rules else None
        )
        self.qoa = StreamQoAScorer() if enable_qoa else None
        detector_thresholds = detector_thresholds or DetectorThresholds()
        self.detectors = (
            StreamingDetectorSuite(
                thresholds=detector_thresholds,
                sketch_buckets=sketch_buckets,
            )
            if detect_antipatterns else None
        )
        self._sketch_buckets = int(sketch_buckets)
        self._config = PlaneConfig(
            graph=graph,
            blocker=self._blocker,
            rulebook=rulebook,
            n_shards=n_shards,
            aggregation_window=float(aggregation_window),
            correlation_window=float(correlation_window),
            correlation_max_hops=int(correlation_max_hops),
            enable_storm_detection=enable_storm_detection,
            retain_artifacts=retain_artifacts,
            finalize_every=int(finalize_every),
            collect_observations=learn_rules or enable_qoa,
            collect_detection=detect_antipatterns,
            # No process boundary, no wire round trip: the in-process
            # backends hand the digest tuple straight to the suite.
            detection_inline=backend in ("serial", "thread"),
            sketch_buckets=int(sketch_buckets),
            detection_times_cap=detector_thresholds.repeat_window_count,
            intermittent_threshold=detector_thresholds.intermittent_threshold,
        )
        self._backend_name = backend
        self._lane_transport = lane_transport
        self._ring_slot_size = ring_slot_size
        self._ring_slots = ring_slots
        self._worker_recovery = bool(worker_recovery)
        self._worker_checkpoint_every = int(worker_checkpoint_every)
        self._worker_timeout = float(worker_timeout)
        # Fleet counters restored from a checkpoint: the rebuilt
        # backend's own counters restart at zero, so the totals fold
        # adds this baseline to stay monotone across restores.
        self._fleet_baseline = (0, 0)
        self._plane_router = PlaneRouter(n_planes)
        self._backend: PlaneBackend = make_backend(
            backend, n_planes=n_planes, config=self._config, n_workers=n_workers,
            lane_transport=lane_transport, ring_slot_size=ring_slot_size,
            ring_slots=ring_slots, worker_recovery=worker_recovery,
            worker_checkpoint_every=worker_checkpoint_every,
            worker_timeout=worker_timeout,
        )
        # The one stream-global piece of R4 state: the novelty warmup is
        # defined over the first N *gateway* events, so the gateway counts
        # the warmup prefix of every plane buffer and hands it down.
        self._warmup_limit = DEFAULT_WARMUP_ALERTS if enable_storm_detection else 0
        # Per-event ingestion processes immediately by default; buffered
        # backends amortise hand-off over bigger flush cycles.
        if flush_size is None:
            flush_size = 1 if backend == "serial" else DEFAULT_BATCH_FLUSH
        self._flush_size = int(flush_size)
        self._flush_interval = flush_interval
        self._buffers: list[list[Alert]] = [[] for _ in range(n_planes)]
        self._warmup_pending: list[int] = [0] * n_planes
        self._buffered = 0
        self._last_flush_watermark: float | None = None
        # Partitioned ingress: with more than one (effective) lane the
        # buffered path moves off this thread entirely — see
        # :mod:`repro.streaming.lanes`.  One lane degenerates to the
        # classic path (same thread, same flush schedule), so lane-count
        # parity tests compare against it directly.  With rule learning
        # or streaming QoA on, the lanes run in barrier mode: the
        # gateway keeps its classic global flush trigger (identical
        # judgment schedule to one lane) and the lanes only parallelise
        # each flush cycle's execution via ``flush_batches``.
        self._lanes: LaneIngress | None = None
        if min(int(ingress_lanes), int(n_planes)) > 1:
            self._lanes = LaneIngress(
                self._backend,
                self._plane_router,
                n_planes=n_planes,
                n_lanes=ingress_lanes,
                flush_size=self._flush_size,
                flush_interval=flush_interval,
                warmup_limit=self._warmup_limit,
                barrier_mode=learn_rules or enable_qoa or detect_antipatterns,
            )
        self._retain = retain_artifacts
        self._drained = False
        self.stats = GatewayStats(
            n_shards=n_shards,
            n_planes=n_planes,
            backend=backend,
            n_workers=getattr(self._backend, "n_workers", 1),
            flush_size=self._flush_size,
            learning=learn_rules,
            qoa_enabled=enable_qoa,
            detect_enabled=detect_antipatterns,
        )
        self.aggregates: list[AggregatedAlert] = []
        self.clusters: list[AlertCluster] = []

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, alert: Alert) -> list[AggregatedAlert]:
        """Process one alert; returns aggregates the resulting flush closed.

        With the default ``flush_size=1`` the event is processed before
        this returns; larger flush sizes buffer it and return the
        emissions of whatever flush the event happened to trigger.  The
        ``process`` backend keeps emissions worker-side and returns
        ``[]`` (use ``stats``/:meth:`snapshot` for progress, or drain to
        collect retained artifacts).
        """
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        if self._lanes is not None and not self._lanes.barrier_mode:
            # Lane emissions stay plane-side (counters only); the return
            # contract matches the process backend's.
            self._lanes.ingest((alert,), self.stats)
            return []
        started = time.perf_counter()
        stats = self.stats
        stats.input_alerts += 1
        if stats.watermark is None or alert.occurred_at >= stats.watermark:
            stats.watermark = alert.occurred_at
        else:
            stats.late_events += 1
            if (
                self._flush_interval is not None
                and self._last_flush_watermark is not None
                and alert.occurred_at < self._last_flush_watermark
            ):
                # Late events must count against the interval trigger:
                # after a forward watermark jump, an all-late tail keeps
                # `watermark - last_flush` at zero and would stall
                # interval flushes indefinitely.  Clamping the anchor to
                # the late event's time re-arms the trigger.
                self._last_flush_watermark = alert.occurred_at
        plane = self._plane_router.plane_of(alert.region)
        self._buffers[plane].append(alert)
        if stats.input_alerts <= self._warmup_limit:
            self._warmup_pending[plane] += 1
        self._buffered += 1
        if self._last_flush_watermark is None:
            self._last_flush_watermark = alert.occurred_at
        if self._buffered >= self._flush_size or (
            self._flush_interval is not None
            and stats.watermark - self._last_flush_watermark >= self._flush_interval
        ):
            flushed = self._buffered
            emitted = self._flush(observe_latency=False)
            # Amortise over the whole flush: with flush_size=1 this is
            # exactly one per-event observation.
            stats.observe_flush(time.perf_counter() - started, flushed)
            return emitted
        return []

    def ingest_many(self, alerts: Iterable[Alert]) -> int:
        """Feed a source one event at a time; returns the count."""
        count = 0
        for alert in alerts:
            self.ingest(alert)
            count += 1
        return count

    def ingest_batch(self, alerts: Iterable[Alert]) -> int:
        """Feed a micro-batch (or a whole source) through the batched path.

        Events are routed into per-plane buffers and handed to the
        execution backend ``flush_size`` at a time; end-of-run accounting
        is identical to per-event :meth:`ingest`.  Returns the count.
        Buffered events persist across calls until a flush triggers or
        the gateway is drained.
        """
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        if self._lanes is not None and not self._lanes.barrier_mode:
            return self._lanes.ingest(alerts, self.stats)
        stats = self.stats
        buffers = self._buffers
        warmup_pending = self._warmup_pending
        warmup_limit = self._warmup_limit
        plane_cache = self._plane_router.plane_cache
        plane_of = self._plane_router.plane_of
        flush_size = self._flush_size
        interval = self._flush_interval
        count = 0
        inputs = stats.input_alerts
        late = 0
        buffered = self._buffered
        watermark = stats.watermark
        # The finally block writes the loop-local counters back even when
        # the source iterable raises mid-stream: whatever was buffered
        # stays accounted for, so a caller that catches and drains still
        # reconciles.
        try:
            for alert in alerts:
                occurred_at = alert.occurred_at
                if watermark is None or occurred_at >= watermark:
                    watermark = occurred_at
                else:
                    late += 1
                    if (
                        interval is not None
                        and self._last_flush_watermark is not None
                        and occurred_at < self._last_flush_watermark
                    ):
                        # Same stall fix as the per-event path: a late
                        # tail after a watermark jump must still be able
                        # to fire the interval trigger.
                        self._last_flush_watermark = occurred_at
                plane = plane_cache.get(alert.region)
                if plane is None:
                    plane = plane_of(alert.region)
                buffers[plane].append(alert)
                count += 1
                inputs += 1
                if inputs <= warmup_limit:
                    warmup_pending[plane] += 1
                buffered += 1
                if self._last_flush_watermark is None:
                    self._last_flush_watermark = occurred_at
                if buffered >= flush_size or (
                    interval is not None
                    and watermark - self._last_flush_watermark >= interval
                ):
                    stats.watermark = watermark
                    stats.input_alerts = inputs
                    stats.late_events += late
                    late = 0
                    self._buffered = buffered
                    # Zero the local before flushing: if the backend
                    # raises, _flush has already consumed the buffers and
                    # the finally must not resurrect the stale count.
                    buffered = 0
                    self._flush()
                    buffered = self._buffered
                    buffers = self._buffers
                    warmup_pending = self._warmup_pending
        finally:
            stats.watermark = watermark
            stats.input_alerts = inputs
            stats.late_events += late
            self._buffered = buffered
        return count

    def drain(self) -> GatewayStats:
        """Flush every plane and finalise all state (end of stream)."""
        if self._drained:
            return self.stats
        self._flush()
        if self._lanes is not None:
            self._lanes.close()
        results = self._backend.drain(self.stats.watermark)
        results.sort(key=lambda result: result.plane_id)
        for result in results:
            self._set_plane_counters(result.plane_id, result.counters())
            if self._retain:
                self.aggregates.extend(result.retained_aggregates)
                self.clusters.extend(result.retained_clusters)
        if self._retain:
            # Planes finish independently; merge deterministically.
            self.aggregates.sort(
                key=lambda a: (a.window.start, a.strategy_id, a.region)
            )
            self.clusters.sort(key=lambda c: (c.alerts[0].occurred_at, -c.size))
        if self._config.collect_observations:
            # The drain flush closes the last R2 sessions; their groups
            # must land in the QoA counters before scores freeze.
            if self.qoa is not None:
                self.qoa.observe(self._gather_observations(results))
            if self.learner is not None:
                # Retiring the learned rules restores the caller's
                # blocker to its configured rule set.
                delta = self.learner.finish(
                    self.stats.watermark, self.stats.input_alerts,
                )
                if delta:
                    self._backend.apply_rules(delta)
                self.stats.set_learner_counters(self.learner.counters())
            if self.qoa is not None:
                self.stats.qoa = self.qoa.snapshot()
        if self.detectors is not None:
            # End of stream: close the R4 sketch's final partial window,
            # then freeze the online verdict summary into the stats.
            self.detectors.finish(self.stats.watermark)
            self.stats.detection = self.detectors.summary()
        self._refresh_totals()
        self.stats.mark_finished()
        self._drained = True
        self._backend.close()
        return self.stats

    def close(self) -> None:
        """Release backend resources *without* draining (service shutdown).

        The checkpointed service path: open window state is already
        durable in the snapshot + journal, so finalising it here (as
        :meth:`drain` would) is not just unnecessary — it would emit
        end-of-stream artifacts for a stream that has not ended.  The
        gateway is unusable afterwards; idempotent.
        """
        if self._drained:
            return
        self._drained = True
        if self._lanes is not None:
            self._lanes.close()
        self._backend.close()

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def rebalance(self, n_shards: int, n_workers: int | None = None) -> None:
        """Re-shard every live plane onto an ``n_shards`` consistent-hash ring.

        Pending buffers are flushed, then each plane exports its open R2
        sessions, rebuilds its ring, and re-adopts the sessions on the
        shards that now own their strategies — entirely inside the plane
        (and, for the ``process`` backend, inside its worker, so nothing
        crosses the wire).  Correlators and storm detectors partition by
        region, not shard, and are untouched.  Volume accounting is exact
        across the transition.

        ``n_workers`` resizes the ``thread`` pool, or — since the worker
        fleet became elastic — live-resizes the ``process`` fleet by
        re-homing planes as packed state (see :meth:`resize_workers`).
        """
        require_positive(n_shards, "n_shards")
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        self._flush()
        if n_workers is not None:
            resize = getattr(self._backend, "resize", None)
            if resize is None:
                raise ValidationError(
                    f"the {self._backend_name} backend has no worker pool "
                    f"to resize"
                )
            resize(n_workers)
            self.stats.n_workers = self._backend.n_workers
        self._backend.rebalance(n_shards)
        self.stats.n_shards = n_shards
        self.stats.rebalances += 1

    def resize_workers(self, n_workers: int) -> None:
        """Grow or shrink the execution worker pool, live.

        A barrier (pending buffers flush first).  On the ``thread``
        backend this swaps the pool; on the ``process`` backend it
        re-homes every plane whose ``plane % n_workers`` assignment
        changes, migrating whole-plane state between worker processes
        with the same ``pack_plane_state`` round trip ``scale_planes``
        uses — volume accounting is exact across the transition.  A
        failure mid-migration poisons the gateway (like a failed plane
        scale): detached state may not have reached its destination, so
        further ingestion would be silently wrong.
        """
        require_positive(n_workers, "n_workers")
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        resize = getattr(self._backend, "resize", None)
        if resize is None:
            raise ValidationError(
                f"the {self._backend_name} backend has no worker pool to resize"
            )
        self._flush()
        try:
            resize(n_workers)
        except BaseException:
            self._drained = True
            try:
                self._backend.close()
            except Exception:
                pass
            raise
        self.stats.n_workers = self._backend.n_workers

    def scale_planes(self, n_planes: int) -> dict[str, tuple[int, int]]:
        """Re-plane the live gateway to ``n_planes``, migrating state.

        A barrier: pending buffers flush first, then the
        :class:`~repro.streaming.routing.PlaneRouter` reassigns every
        known region to the plane a fresh ``n_planes`` ring would have
        given it (``first_seen_index % n_planes``), and each moved
        region's *entire* plane state — open R2 sessions, the R3
        correlator window + union-find, R4 ring counters and novelty
        state, its lifetime counter slice, and retained artifacts —
        migrates to its new plane (wire-packed across process
        boundaries on the ``process`` backend).  Scale-out and scale-in
        are both supported; either way the run drains bit-identical to
        a gateway built with the final plane count from the start
        (given the same flush barriers — with rule learning on, the
        learner's judgment positions follow the flush schedule, and
        ``scale_planes`` is itself a flush barrier).

        Returns the migration plan ``{region: (old_plane, new_plane)}``.
        Calling with the current plane count is a plain barrier: it
        flushes, moves nothing, and still counts as a scale event.
        """
        require_positive(n_planes, "n_planes")
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        self._flush()
        stats = self.stats
        from_planes = stats.n_planes
        moved = self._plane_router.rescale(n_planes)
        try:
            snapshots = self._backend.scale(n_planes, moved, stats.n_shards)
        except BaseException:
            # The router already routes to the new topology and the
            # backend may have migrated some regions but not others;
            # further ingestion would silently split open sessions
            # across planes.  Poison the gateway so the failure stays
            # loud, then re-raise.
            self._drained = True
            try:
                self._backend.close()
            except Exception:
                pass
            raise
        self._buffers = [[] for _ in range(n_planes)]
        self._warmup_pending = [0] * n_planes
        if self._lanes is not None:
            self._lanes.rescale(n_planes)
        stats.n_planes = n_planes
        stats.n_workers = getattr(self._backend, "n_workers", 1)
        stats.plane_scales += 1
        stats.scales.append({
            "at_input": stats.input_alerts,
            "from_planes": from_planes,
            "to_planes": n_planes,
            "moved_regions": len(moved),
        })
        if self.learner is not None:
            self.learner.note_topology_change(stats.input_alerts)
        # Rebuild the per-plane accounting from the post-migration
        # snapshots: rows keyed by dead plane ids must not linger (the
        # totals merge would double-count their migrated history), and
        # surviving rows must reflect the counter slices that moved.
        stats.planes = {}
        for snapshot in snapshots:
            self._set_plane_counters(snapshot.plane_id, snapshot.counters())
        self._refresh_totals()
        return moved

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    @property
    def at_flush_barrier(self) -> bool:
        """Whether no events are buffered (checkpoints require this).

        At a barrier every ingested event has been processed by its
        plane, so the backend's state plus the gateway's counters are a
        complete, consistent image of the stream so far.
        """
        if self._lanes is not None and not self._lanes.barrier_mode:
            return self._lanes.pending == 0
        # Barrier mode buffers on the gateway; ``flush_batches`` joins
        # every lane before returning, so nothing is ever in flight here.
        return self._buffered == 0

    def flush(self) -> list[AggregatedAlert]:
        """Force a flush barrier, processing everything buffered.

        Note this is itself an observable event with rule learning on:
        every flush is a learner judgment round, so a forced flush — like
        ``scale_planes`` — changes the judgment schedule relative to a
        run that never forced one.
        """
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        return self._flush()

    def checkpoint_config(self) -> dict:
        """The construction-time configuration, JSON-safe.

        Recorded in every checkpoint so a restore can rebuild an
        identically-configured gateway (the topology graph and rulebook
        are the caller's static inputs and stay outside the snapshot).
        """
        config = self._config
        stats = self.stats
        return {
            "backend": self._backend_name,
            "n_planes": stats.n_planes,
            "n_shards": stats.n_shards,
            "n_workers": stats.n_workers,
            "flush_size": self._flush_size,
            "flush_interval": self._flush_interval,
            "ingress_lanes": self.ingress_lanes,
            "lane_transport": self._lane_transport,
            "ring_slot_size": self._ring_slot_size,
            "ring_slots": self._ring_slots,
            "worker_recovery": self._worker_recovery,
            "worker_checkpoint_every": self._worker_checkpoint_every,
            "worker_timeout": self._worker_timeout,
            "aggregation_window": config.aggregation_window,
            "correlation_window": config.correlation_window,
            "correlation_max_hops": config.correlation_max_hops,
            "enable_storm_detection": config.enable_storm_detection,
            "retain_artifacts": config.retain_artifacts,
            "finalize_every": config.finalize_every,
            "learn_rules": self.learner is not None,
            "enable_qoa": self.qoa is not None,
            "detect_antipatterns": self.detectors is not None,
            "sketch_buckets": self._sketch_buckets,
            "learner_config": (
                dataclasses.asdict(self.learner.config)
                if self.learner is not None else None
            ),
        }

    def checkpoint_state(self) -> dict:
        """Capture the gateway's complete dynamic state (non-destructive).

        Only valid at a flush barrier (:attr:`at_flush_barrier`): the
        capture is then a consistent cut — every counter, the router
        map, the blocker table, learner/QoA state, and one wire-packed
        blob per (plane, region) — from which :meth:`adopt_checkpoint`
        on a fresh, identically-configured gateway continues the stream
        bit-identically.  ``blobs`` holds raw bytes; everything else is
        JSON-safe (the serving layer writes the two parts separately).
        """
        if self._drained:
            raise ValidationError("gateway already drained; nothing to checkpoint")
        if not self.at_flush_barrier:
            pending = (
                self._lanes.pending if self._lanes is not None else self._buffered
            )
            raise ValidationError(
                f"checkpoint requires a flush barrier; {pending} "
                f"event(s) still buffered (flush first or checkpoint "
                f"between batches)"
            )
        assignments = self._plane_router.assignments
        pairs = [(plane, region) for region, plane in assignments.items()]
        blobs = self._backend.checkpoint(pairs)
        return {
            "assignments": [[region, plane] for region, plane in assignments.items()],
            "rules": [rule_to_dict(rule) for rule in self._blocker.rules],
            "regions": [[plane, region] for plane, region in pairs],
            "blobs": blobs,
            "stats": self.stats.export_state(),
            "learner": (
                self.learner.export_state() if self.learner is not None else None
            ),
            "qoa": self.qoa.export_state() if self.qoa is not None else None,
            "detectors": (
                self.detectors.export_state()
                if self.detectors is not None else None
            ),
            "last_flush_watermark": self._last_flush_watermark,
        }

    def adopt_checkpoint(self, state: dict) -> None:
        """Restore a :meth:`checkpoint_state` capture into this gateway.

        Only valid on a *fresh* gateway (nothing ingested) built with
        the checkpoint's recorded configuration.  Order matters: the
        blocker table is rebuilt first, so the process backend's workers
        — spawned during the backend restore — inherit it; then the
        router map, counters, learner/QoA state, and finally every
        plane's packed region state.
        """
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        if self.stats.input_alerts or self._buffered:
            raise ValidationError(
                "checkpoints restore into a fresh gateway only; this one "
                "already ingested events"
            )
        if (state["learner"] is not None) != (self.learner is not None):
            raise ValidationError(
                "learner configuration mismatch: the checkpoint and this "
                "gateway disagree on learn_rules"
            )
        if (state["qoa"] is not None) != (self.qoa is not None):
            raise ValidationError(
                "QoA configuration mismatch: the checkpoint and this "
                "gateway disagree on enable_qoa"
            )
        # ``get``: absent from pre-online-detection checkpoints, which
        # could only have been written with detection off.
        detector_state = state.get("detectors")
        if (detector_state is not None) != (self.detectors is not None):
            raise ValidationError(
                "detector configuration mismatch: the checkpoint and this "
                "gateway disagree on detect_antipatterns"
            )
        # Rebuild the blocker to exactly the checkpointed table (the
        # caller's configured rules are a subset of it unless they were
        # learned away — the checkpoint is authoritative either way).
        blocker = self._blocker
        for rule in blocker.rules:
            blocker.remove_rule(rule)
        blocker.add_rules(rule_from_dict(row) for row in state["rules"])
        self._plane_router.restore(
            [(region, plane) for region, plane in state["assignments"]]
        )
        self.stats.restore_state(state["stats"])
        # Fleet counters in the checkpoint describe a fleet that no longer
        # exists; fold them in as a baseline so totals stay monotone while
        # the fresh backend counts from zero.
        self._fleet_baseline = (
            self.stats.worker_deaths, self.stats.worker_recoveries,
        )
        if self.learner is not None:
            self.learner.restore_state(state["learner"])
        if self.qoa is not None:
            self.qoa.restore_state(state["qoa"])
        if self.detectors is not None:
            self.detectors.restore_state(detector_state)
        watermark = state["last_flush_watermark"]
        self._last_flush_watermark = (
            float(watermark) if watermark is not None else None
        )
        self._backend.restore([
            (plane, blob)
            for (plane, _region), blob in zip(state["regions"], state["blobs"])
        ])

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> GatewaySnapshot:
        """A consistent view of current progress (flushes pending buffers).

        After :meth:`drain` the backend is closed; the snapshot is then
        rebuilt from the frozen final accounting instead of querying it.
        """
        if self._drained:
            stats = self.stats
            return GatewaySnapshot(
                watermark=stats.watermark,
                input_alerts=stats.input_alerts,
                blocked_alerts=stats.blocked_alerts,
                aggregates_emitted=stats.aggregates_emitted,
                clusters_finalized=stats.clusters_finalized,
                open_sessions=0,
                active_components=0,
                retained_representatives=0,
                storm_episodes=stats.storm_episodes,
                emerging_flags=stats.emerging_flags,
                planes=tuple(
                    PlaneSnapshot(
                        plane_id=plane["plane_id"],
                        n_shards=stats.n_shards,
                        processed=plane["processed"],
                        blocked=plane["blocked"],
                        aggregates=plane["aggregates"],
                        clusters=plane["clusters"],
                        storm_episodes=plane["storm_episodes"],
                        emerging_flags=plane["emerging_flags"],
                        open_sessions=0,
                        active_components=0,
                        retained_representatives=0,
                        min_open_first=None,
                    )
                    for _, plane in sorted(stats.planes.items())
                ),
            )
        self._flush()
        snapshots = self._backend.snapshots()
        for snapshot in snapshots:
            self._set_plane_counters(snapshot.plane_id, snapshot.counters())
        self._refresh_totals()
        stats = self.stats
        return GatewaySnapshot(
            watermark=stats.watermark,
            input_alerts=stats.input_alerts,
            blocked_alerts=stats.blocked_alerts,
            aggregates_emitted=stats.aggregates_emitted,
            clusters_finalized=stats.clusters_finalized,
            open_sessions=sum(s.open_sessions for s in snapshots),
            active_components=sum(s.active_components for s in snapshots),
            retained_representatives=sum(
                s.retained_representatives for s in snapshots
            ),
            storm_episodes=stats.storm_episodes,
            emerging_flags=stats.emerging_flags,
            planes=tuple(snapshots),
        )

    @property
    def backend_name(self) -> str:
        """The execution backend in use (``serial``/``thread``/``process``)."""
        return self._backend.name

    @property
    def n_planes(self) -> int:
        """Number of region-partitioned execution planes."""
        return self._backend.n_planes

    @property
    def n_shards(self) -> int:
        """Shards per plane on the current consistent-hash rings."""
        return self.stats.n_shards

    @property
    def ingress_lanes(self) -> int:
        """Effective ingest lane count (1 = classic single-threaded path)."""
        return self._lanes.n_lanes if self._lanes is not None else 1

    @property
    def plane_assignments(self) -> dict[str, int]:
        """Region → plane map observed so far."""
        return self._plane_router.assignments

    @property
    def processors(self) -> list[StreamProcessor]:
        """Every shard processor (read-only use; in-process backends only)."""
        processors = getattr(self._backend, "processors", None)
        if processors is None:
            raise ValidationError(
                "shard processors live in worker processes and are not "
                "addressable from the parent; use snapshot() instead"
            )
        return list(processors)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _flush(self, observe_latency: bool = True) -> list[AggregatedAlert]:
        """Hand every buffered per-plane batch to the backend (a barrier)."""
        lanes = self._lanes
        if lanes is not None and not lanes.barrier_mode:
            return self._lane_barrier()
        if self._buffered == 0:
            return []
        started = time.perf_counter()
        batches = [
            (plane, batch, self._warmup_pending[plane])
            for plane, batch in enumerate(self._buffers)
            if batch
        ]
        n_planes = len(self._buffers)
        self._buffers = [[] for _ in range(n_planes)]
        self._warmup_pending = [0] * n_planes
        flushed = self._buffered
        self._buffered = 0
        stats = self.stats
        if lanes is not None:
            # Barrier mode: the lanes execute this cycle's batches
            # concurrently and quiesce before returning, so everything
            # below — counters, observation order, learner judgments —
            # is identical to the single-lane path by construction.
            results = lanes.flush_batches(batches, stats.watermark)
            stats.lane_stalls = lanes.stalls
        else:
            results = self._backend.flush(batches, stats.watermark)
        results.sort(key=lambda result: result.plane_id)
        emitted_all: list[AggregatedAlert] = []
        for result in results:
            self._set_plane_counters(result.plane_id, result.counters())
            if result.emitted:
                emitted_all.extend(result.emitted)
        if self._config.collect_observations:
            self._learn(self._gather_observations(results))
        if self.detectors is not None:
            self._observe_detection(results)
        stats.flushes += 1
        self._last_flush_watermark = stats.watermark
        self._refresh_totals()
        if observe_latency:
            stats.observe_flush(time.perf_counter() - started, flushed)
        return emitted_all

    def _lane_barrier(self) -> list[AggregatedAlert]:
        """Barrier the ingress lanes and fold their telemetry into stats.

        Lane threads flush to planes on their own schedule; the gateway
        only learns about it here — last per-plane lifetime counters,
        plus the flush count/latency accumulated since the previous
        barrier (observed as one amortised batch, like the classic
        path's per-flush observation).
        """
        stats = self.stats
        results, flushes, seconds, events = self._lanes.barrier(stats.watermark)
        stats.lane_stalls = self._lanes.stalls
        for result in results:
            self._set_plane_counters(result.plane_id, result.counters())
        if flushes:
            stats.flushes += flushes
            stats.observe_flush(seconds, events)
            self._last_flush_watermark = stats.watermark
        if results:
            self._refresh_totals()
        return []

    @staticmethod
    def _gather_observations(results) -> list[tuple]:
        """Concatenate per-plane digests in plane order (deterministic)."""
        return [
            row
            for result in results
            if result.observations
            for row in result.observations
        ]

    def _learn(self, observations: list[tuple]) -> None:
        """One learning/scoring step at a flush boundary.

        The learner's rule delta is applied to the backend *now*, before
        any further flush — so the rules a flush taught start blocking at
        the identical stream position on every backend.
        """
        if self.qoa is not None:
            self.qoa.observe(observations)
        learner = self.learner
        if learner is not None:
            stats = self.stats
            delta = learner.observe(
                observations, stats.watermark, stats.input_alerts,
            )
            if delta:
                self._backend.apply_rules(delta)
            stats.set_learner_counters(learner.counters())

    def _observe_detection(self, results) -> None:
        """Fold this flush's per-plane detection digests into the suite.

        Results arrive sorted by plane id, so the fold order — and with
        it the sketch's within-window document order before its
        canonical sort — is deterministic for any backend or lane count.
        """
        detectors = self.detectors
        watermark = self.stats.watermark
        for result in results:
            digest = result.detection
            if digest:
                if isinstance(digest, bytes):
                    digest = unpack_detection(digest)
                detectors.observe(digest, watermark)

    def _set_plane_counters(self, plane_id: int, counters: dict) -> None:
        counters["plane_id"] = plane_id
        counters["regions"] = list(self._plane_router.regions_of(plane_id))
        self.stats.planes[plane_id] = counters

    def _refresh_totals(self) -> None:
        """Merge per-plane lifetime counters into the gateway totals."""
        stats = self.stats
        counters = stats.planes.values()
        stats.blocked_alerts = sum(c["blocked"] for c in counters)
        stats.aggregates_emitted = sum(c["aggregates"] for c in counters)
        stats.clusters_finalized = sum(c["clusters"] for c in counters)
        stats.storm_episodes = sum(c["storm_episodes"] for c in counters)
        stats.emerging_flags = sum(c["emerging_flags"] for c in counters)
        backend = self._backend
        stats.worker_deaths = (
            self._fleet_baseline[0] + getattr(backend, "worker_deaths", 0)
        )
        stats.worker_recoveries = (
            self._fleet_baseline[1] + getattr(backend, "worker_recoveries", 0)
        )
        stats.breaker_open = getattr(backend, "breaker_open", 0)
