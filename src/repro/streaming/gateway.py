"""The online alert gateway: sharded ingestion + incremental mitigation.

This is the streaming counterpart of
:class:`~repro.core.mitigation.pipeline.MitigationPipeline`: instead of
re-running the reaction chain over a finished trace, the gateway accepts
one alert at a time (or micro-batches), routes it across N shards on a
consistent-hash ring keyed by ``(service, title template)``, and keeps
every reaction's state incremental and bounded:

* shards run R1 blocking and R2 session-window dedup inside a pluggable
  :mod:`~repro.streaming.backends` execution backend — ``serial``
  (inline), ``thread`` (pool per flush cycle), or ``process``
  (shards partitioned across worker processes);
* the gateway runs one :class:`OnlineCorrelator` (R3) over the merged,
  heavily compressed stream of aggregate representatives the shards
  emit — cascades cross services, so correlation cannot be shard-local —
  and one :class:`OnlineStormDetector` (R4) over the raw in-order
  stream — flood rates are per region, so detection cannot be
  shard-local either.

Ingestion has two paths with identical end-of-run accounting:

* :meth:`ingest` — one event, processed immediately at the default
  ``flush_size=1``;
* :meth:`ingest_batch` — events are routed into per-shard buffers and
  flushed to the backend ``flush_size`` events at a time (or whenever
  event time advances ``flush_interval`` seconds), which amortises
  routing, accounting, and backend hand-off over the whole micro-batch.

:meth:`rebalance` re-shards a live gateway: open R2 sessions are
exported from every shard, the consistent-hash ring is rebuilt, and the
sessions are adopted by the shards that now own their keys — no window
state is lost, so accounting stays exact across the transition.

On an in-order stream the end-of-run volume accounting (blocked,
aggregates, clusters) is *exactly* the batch pipeline's — the
reconciliation invariant ``GatewayStats.reconcile`` checks, for every
backend, shard count, and flush size.  Out-of-order events are processed
best-effort and counted in ``late_events``.

>>> gateway = AlertGateway(graph, blocker=blocker, n_shards=4,   # doctest: +SKIP
...                        backend="thread", n_workers=4, flush_size=512)
>>> gateway.ingest_batch(source)                                 # doctest: +SKIP
>>> stats = gateway.drain()                                      # doctest: +SKIP
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.common.validation import require_positive
from repro.core.mitigation.aggregation import AggregatedAlert
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import (
    AlertCluster,
    CorrelationAnalyzer,
    DependencyRuleBook,
)
from repro.streaming.backends import ShardBackend, make_backend
from repro.streaming.correlator import OnlineCorrelator
from repro.streaming.processor import StreamProcessor
from repro.streaming.routing import ShardRouter
from repro.streaming.stats import GatewayStats
from repro.streaming.storm import OnlineStormDetector
from repro.topology.graph import DependencyGraph

__all__ = ["AlertGateway", "GatewaySnapshot"]

#: Default per-shard micro-batch size for the buffered backends.
DEFAULT_BATCH_FLUSH = 512


@dataclass(frozen=True, slots=True)
class GatewaySnapshot:
    """A consistent point-in-time view of gateway progress."""

    watermark: float | None
    input_alerts: int
    blocked_alerts: int
    aggregates_emitted: int
    clusters_finalized: int
    open_sessions: int
    active_components: int
    retained_representatives: int
    storm_episodes: int
    emerging_flags: int

    @property
    def outstanding_items(self) -> int:
        """Upper bound on diagnosis items still forming."""
        return self.open_sessions + self.active_components

    @property
    def estimated_reduction(self) -> float:
        """Rolling volume-reduction estimate (final + in-flight items)."""
        if self.input_alerts == 0:
            return 0.0
        items = self.clusters_finalized + self.outstanding_items
        return 1.0 - items / self.input_alerts


class AlertGateway:
    """Facade over the sharded online mitigation pipeline."""

    def __init__(
        self,
        graph: DependencyGraph,
        blocker: AlertBlocker | None = None,
        rulebook: DependencyRuleBook | None = None,
        n_shards: int = 4,
        aggregation_window: float = 900.0,
        correlation_window: float = 900.0,
        correlation_max_hops: int = 4,
        enable_storm_detection: bool = True,
        retain_artifacts: bool = True,
        finalize_every: int = 256,
        backend: str = "serial",
        n_workers: int | None = None,
        flush_size: int | None = None,
        flush_interval: float | None = None,
    ) -> None:
        require_positive(finalize_every, "finalize_every")
        if flush_size is not None:
            require_positive(flush_size, "flush_size")
        if flush_interval is not None:
            require_positive(flush_interval, "flush_interval")
        self._blocker = blocker or AlertBlocker()
        self._aggregation_window = float(aggregation_window)
        self._backend_name = backend
        self._n_workers = n_workers
        self._router = ShardRouter(n_shards)
        self._backend: ShardBackend = make_backend(
            backend,
            n_shards=n_shards,
            blocker=self._blocker,
            aggregation_window=self._aggregation_window,
            n_workers=n_workers,
        )
        # One detector for the whole gateway: it watches the raw stream
        # in arrival order, so R4 results are independent of shard count
        # and backend (per-shard counters would dilute a region's rate
        # against the flood threshold and double-count episodes that
        # span shards).
        self._storm_detector = (
            OnlineStormDetector() if enable_storm_detection else None
        )
        self._correlator = OnlineCorrelator(CorrelationAnalyzer(
            graph,
            rulebook=rulebook,
            max_hops=correlation_max_hops,
            time_window=correlation_window,
        ))
        self._finalize_every = int(finalize_every)
        self._last_finalize_input = 0
        # Per-event ingestion processes immediately by default; buffered
        # backends amortise hand-off over bigger flush cycles.
        if flush_size is None:
            flush_size = 1 if backend == "serial" else DEFAULT_BATCH_FLUSH
        self._flush_size = int(flush_size)
        self._flush_interval = flush_interval
        self._buffers: list[list[Alert]] = [[] for _ in range(n_shards)]
        self._buffered = 0
        self._last_flush_watermark: float | None = None
        # R2 sessions key on (strategy, region) while the ring hashes
        # (service, title template); the two agree because a strategy's
        # service/title are fixed.  Pinning each strategy to the shard its
        # first alert hashes to makes that locality structural — external
        # JSONL feeds whose titles drift non-numerically within one
        # strategy still keep every session on a single shard.  The pin
        # map grows with the strategy population (configuration scale),
        # not with events.
        self._shard_of: dict[str, int] = {}
        self._retain = retain_artifacts
        self._drained = False
        self.stats = GatewayStats(
            n_shards=n_shards,
            backend=backend,
            n_workers=getattr(self._backend, "n_workers", 1),
            flush_size=self._flush_size,
        )
        self.aggregates: list[AggregatedAlert] = []
        self.clusters: list[AlertCluster] = []

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, alert: Alert) -> list[AggregatedAlert]:
        """Process one alert; returns aggregates the resulting flush closed.

        With the default ``flush_size=1`` the event is processed before
        this returns; larger flush sizes buffer it and return the
        emissions of whatever flush the event happened to trigger.
        """
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        started = time.perf_counter()
        stats = self.stats
        stats.input_alerts += 1
        if stats.watermark is None or alert.occurred_at >= stats.watermark:
            stats.watermark = alert.occurred_at
        else:
            stats.late_events += 1
        if self._storm_detector is not None:
            self._storm_detector.ingest(alert)
        shard = self._shard_of.get(alert.strategy_id)
        if shard is None:
            shard = self._router.route(alert)
            self._shard_of[alert.strategy_id] = shard
        self._buffers[shard].append(alert)
        self._buffered += 1
        if self._last_flush_watermark is None:
            self._last_flush_watermark = alert.occurred_at
        if self._buffered >= self._flush_size or (
            self._flush_interval is not None
            and stats.watermark - self._last_flush_watermark >= self._flush_interval
        ):
            flushed = self._buffered
            emitted = self._flush(observe_latency=False)
            # Amortise over the whole flush: with flush_size=1 this is
            # exactly one per-event observation.
            stats.observe_flush(time.perf_counter() - started, flushed)
            return emitted
        return []

    def ingest_many(self, alerts: Iterable[Alert]) -> int:
        """Feed a source one event at a time; returns the count."""
        count = 0
        for alert in alerts:
            self.ingest(alert)
            count += 1
        return count

    def ingest_batch(self, alerts: Iterable[Alert]) -> int:
        """Feed a micro-batch (or a whole source) through the batched path.

        Events are routed into per-shard buffers and handed to the
        execution backend ``flush_size`` at a time; end-of-run accounting
        is identical to per-event :meth:`ingest`.  Returns the count.
        Buffered events persist across calls until a flush triggers or
        the gateway is drained.
        """
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        stats = self.stats
        storms = self._storm_detector
        buffers = self._buffers
        shard_of = self._shard_of
        route = self._router.route
        flush_size = self._flush_size
        interval = self._flush_interval
        count = 0
        watermark = stats.watermark
        for alert in alerts:
            occurred_at = alert.occurred_at
            if watermark is None or occurred_at >= watermark:
                watermark = occurred_at
            else:
                stats.late_events += 1
            if storms is not None:
                storms.ingest(alert)
            strategy = alert.strategy_id
            shard = shard_of.get(strategy)
            if shard is None:
                shard = route(alert)
                shard_of[strategy] = shard
            buffers[shard].append(alert)
            count += 1
            self._buffered += 1
            stats.input_alerts += 1
            if self._last_flush_watermark is None:
                self._last_flush_watermark = occurred_at
            if self._buffered >= flush_size or (
                interval is not None
                and watermark - self._last_flush_watermark >= interval
            ):
                stats.watermark = watermark
                self._flush()
                buffers = self._buffers
        stats.watermark = watermark
        return count

    def drain(self) -> GatewayStats:
        """Flush every shard and finalise all clusters (end of stream)."""
        if self._drained:
            return self.stats
        self._flush()
        for result in self._backend.drain():
            for aggregate in result.emitted:
                self._absorb_aggregate(aggregate)
        clusters = self._correlator.drain()
        self.stats.clusters_finalized += len(clusters)
        if self._retain:
            self.clusters.extend(clusters)
        if self._storm_detector is not None and self.stats.watermark is not None:
            self._storm_detector.finish(self.stats.watermark)
        self._refresh_signal_counts()
        self.stats.mark_finished()
        self._drained = True
        self._backend.close()
        return self.stats

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def rebalance(self, n_shards: int, n_workers: int | None = None) -> None:
        """Re-shard the live gateway onto an ``n_shards`` consistent-hash ring.

        Pending buffers are flushed, every open R2 session is exported
        from the old shards, the ring and backend are rebuilt, and the
        sessions are adopted by the shards that now own their strategies
        (each migrated strategy is pinned to its session's new home, so
        future events keep landing where the window state lives).  The
        correlator and storm detector are gateway-level and unaffected.
        Volume accounting is exact across the transition.
        """
        require_positive(n_shards, "n_shards")
        if self._drained:
            raise ValidationError("gateway already drained; create a new one")
        self._flush()
        sessions = self._backend.export_sessions()
        self._backend.close()
        if n_workers is not None:
            self._n_workers = n_workers
        self._router = self._router.with_shards(n_shards)
        self._backend = make_backend(
            self._backend_name,
            n_shards=n_shards,
            blocker=self._blocker,
            aggregation_window=self._aggregation_window,
            n_workers=self._n_workers,
        )
        self._buffers = [[] for _ in range(n_shards)]
        self._shard_of.clear()
        assignments = []
        for session in sorted(
            sessions, key=lambda s: (s.strategy_id, s.region)
        ):
            shard = self._shard_of.get(session.strategy_id)
            if shard is None:
                shard = self._router.route(session.representative)
                self._shard_of[session.strategy_id] = shard
            assignments.append((shard, session))
        if assignments:
            self._backend.adopt(assignments)
        self.stats.n_shards = n_shards
        self.stats.n_workers = getattr(self._backend, "n_workers", 1)
        self.stats.rebalances += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> GatewaySnapshot:
        """A consistent view of current progress (flushes pending buffers)."""
        self._flush()
        self._refresh_signal_counts()
        return GatewaySnapshot(
            watermark=self.stats.watermark,
            input_alerts=self.stats.input_alerts,
            blocked_alerts=self.stats.blocked_alerts,
            aggregates_emitted=self.stats.aggregates_emitted,
            clusters_finalized=self.stats.clusters_finalized,
            open_sessions=self._backend.open_sessions_total(),
            active_components=self._correlator.active_components,
            retained_representatives=self._correlator.retained,
            storm_episodes=self.stats.storm_episodes,
            emerging_flags=self.stats.emerging_flags,
        )

    @property
    def backend_name(self) -> str:
        """The execution backend in use (``serial``/``thread``/``process``)."""
        return self._backend.name

    @property
    def processors(self) -> list[StreamProcessor]:
        """The per-shard processors (read-only use; in-process backends only)."""
        processors = getattr(self._backend, "processors", None)
        if processors is None:
            raise ValidationError(
                "shard processors live in worker processes and are not "
                "addressable from the parent; use snapshot() instead"
            )
        return list(processors)

    @property
    def router(self) -> ShardRouter:
        """The consistent-hash router."""
        return self._router

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _flush(self, observe_latency: bool = True) -> list[AggregatedAlert]:
        """Hand every buffered per-shard batch to the backend (a barrier)."""
        if self._buffered == 0:
            return []
        started = time.perf_counter()
        batches = [
            (shard, batch)
            for shard, batch in enumerate(self._buffers)
            if batch
        ]
        self._buffers = [[] for _ in range(len(self._buffers))]
        flushed = self._buffered
        self._buffered = 0
        results = self._backend.process_batches(batches)
        results.sort(key=lambda result: result.shard_id)
        stats = self.stats
        emitted_all: list[AggregatedAlert] = []
        for result in results:
            stats.blocked_alerts += result.blocked
            for aggregate in result.emitted:
                self._absorb_aggregate(aggregate)
                emitted_all.append(aggregate)
        stats.flushes += 1
        self._last_flush_watermark = stats.watermark
        if stats.input_alerts - self._last_finalize_input >= self._finalize_every:
            self._last_finalize_input = stats.input_alerts
            self._finalize_ready()
        if observe_latency:
            stats.observe_flush(time.perf_counter() - started, flushed)
        return emitted_all

    def _absorb_aggregate(self, aggregate: AggregatedAlert) -> None:
        self.stats.aggregates_emitted += 1
        if self._retain:
            self.aggregates.append(aggregate)
        self._correlator.add(aggregate.representative)

    def _finalize_ready(self) -> None:
        """Close safe correlation components.  Call only at flush barriers:
        the horizon below assumes every ingested event has reached its
        shard, which is only true when the buffers are empty."""
        if self.stats.watermark is None:
            return
        clusters = self._correlator.finalize_ready(
            self.stats.watermark, self._backend.min_open_first()
        )
        self.stats.clusters_finalized += len(clusters)
        if self._retain:
            self.clusters.extend(clusters)

    def _refresh_signal_counts(self) -> None:
        detector = self._storm_detector
        if detector is None:
            return
        self.stats.storm_episodes = detector.episode_count
        self.stats.emerging_flags = detector.emerging_count
