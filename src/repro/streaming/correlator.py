"""Online correlation analysis — the streaming form of R3.

The batch :class:`~repro.core.mitigation.correlation.CorrelationAnalyzer`
sorts all aggregate representatives and union-finds every pair within the
correlation window that shares evidence (rule book or topology).  The
resulting clusters are the connected components of an *evidence graph*:
node = representative, edge = (|Δt| ≤ window AND evidence).  Connected
components do not depend on insertion order, so the online correlator
reaches the identical partition incrementally: each arriving
representative is unioned against every retained representative within
the window, and a component is finalised — turned into an
:class:`~repro.core.mitigation.correlation.AlertCluster` and evicted —
only once the safety horizon proves no future representative can reach
it.

The safety horizon accounts for aggregation latency: a representative
emitted later by a still-open session can carry a timestamp as old as
that session's first alert, so the horizon is
``min(watermark, earliest open-session start) - window``.  Retention is
therefore bounded by the number of representatives inside one
correlation+session horizon, not by stream length.

Correlation evidence requires equal regions, so components never span
regions and the correlator partitions cleanly along region boundaries:
each :class:`~repro.streaming.plane.RegionPlane` runs its own instance
over its regions' representatives.  The horizon then tightens to
``min(gateway watermark, *plane-local* earliest open session) - window``
— any representative that could still reach a plane's component must
come from that plane's own sessions — which lets planes finalise earlier
and independently without changing what is finalised.

Evidence and cluster finalisation are delegated to the batch analyzer
(:meth:`pair_evidence` / :meth:`build_cluster`), which is what makes the
gateway's end-of-run cluster accounting reconcile with
:class:`~repro.core.mitigation.pipeline.MitigationReport` exactly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.alerting.alert import Alert
from repro.core.mitigation.correlation import AlertCluster, CorrelationAnalyzer

__all__ = ["OnlineCorrelator"]


@dataclass(slots=True)
class _Entry:
    """One retained representative awaiting finalisation."""

    seq: int
    alert: Alert


class OnlineCorrelator:
    """Incremental windowed union-find over aggregate representatives."""

    def __init__(
        self,
        analyzer: CorrelationAnalyzer,
        retain_finalized: bool = False,
    ) -> None:
        """``retain_finalized`` keeps every finalised cluster on the
        instance — opt-in only, since on an unbounded stream that list
        grows forever; callers that need the artefacts (the gateway with
        ``retain_artifacts``) collect the return values instead."""
        self._analyzer = analyzer
        self._window = analyzer.time_window
        self._seq = 0
        self._entries: dict[int, _Entry] = {}
        # Retained representatives bucketed per region, each bucket a
        # sorted (occurred_at, seq) list: evidence requires equal
        # regions, so candidates in other regions need not be scanned.
        self._timelines: dict[str, list[tuple[float, int]]] = {}
        self._parent: dict[int, int] = {}
        self._members: dict[int, list[int]] = {}
        self._max_time: dict[int, float] = {}
        self._retain_finalized = retain_finalized
        self.finalized: list[AlertCluster] = []
        self.finalized_count = 0

    @property
    def active_components(self) -> int:
        """Components still open to future merges."""
        return len(self._members)

    @property
    def retained(self) -> int:
        """Representatives currently held in memory."""
        return len(self._entries)

    def add(self, representative: Alert) -> None:
        """Correlate one newly emitted representative against the window."""
        seq = self._seq
        self._seq += 1
        entry = _Entry(seq=seq, alert=representative)
        self._entries[seq] = entry
        self._parent[seq] = seq
        self._members[seq] = [seq]
        self._max_time[seq] = representative.occurred_at
        time = representative.occurred_at
        timeline = self._timelines.setdefault(representative.region, [])
        lo = bisect.bisect_left(timeline, (time - self._window, -1))
        hi = bisect.bisect_right(timeline, (time + self._window, self._seq))
        # Check every retained in-window same-region pair exactly as the
        # batch sweep does; union-find makes repeats cheap.
        for index in range(lo, hi):
            other_seq = timeline[index][1]
            if self._find(other_seq) == self._find(seq):
                continue
            if self._analyzer.pair_evidence(self._entries[other_seq].alert, representative):
                self._union(other_seq, seq)
        bisect.insort(timeline, (time, seq))

    def export_region(self, region: str) -> list[tuple[list[Alert], float]]:
        """Extract one region's open components (plane migration).

        Correlation evidence requires equal regions, so a component
        never spans regions and a region's slice of the correlator —
        its timeline plus every component rooted in it — detaches
        cleanly.  Returns ``(member representatives, component max
        event time)`` pairs, components in first-retained order and
        members in union order; :meth:`adopt_region` reconstructs the
        identical union-find state under fresh sequence numbers.  The
        exported state is removed from this instance.
        """
        timeline = self._timelines.pop(region, None)
        if not timeline:
            return []
        roots: list[int] = []
        seen_roots: set[int] = set()
        for _, seq in timeline:
            root = self._find(seq)
            if root not in seen_roots:
                seen_roots.add(root)
                roots.append(root)
        exported: list[tuple[list[Alert], float]] = []
        for root in roots:
            member_seqs = self._members.pop(root)
            max_time = self._max_time.pop(root)
            alerts = [self._entries[seq].alert for seq in member_seqs]
            for seq in member_seqs:
                del self._entries[seq]
                del self._parent[seq]
            exported.append((alerts, max_time))
        return exported

    def adopt_region(
        self, region: str, components: list[tuple[list[Alert], float]],
    ) -> None:
        """Install components exported from another correlator.

        Members keep their exported (union) order under fresh sequence
        numbers; future merges behave exactly as if every member had
        been :meth:`add`-ed here, because connected components — and the
        batch analyzer's cluster finalisation — do not depend on
        insertion order.
        """
        timeline = self._timelines.setdefault(region, [])
        for alerts, max_time in components:
            root_seq: int | None = None
            for alert in alerts:
                seq = self._seq
                self._seq += 1
                self._entries[seq] = _Entry(seq=seq, alert=alert)
                if root_seq is None:
                    root_seq = seq
                    self._members[seq] = [seq]
                    self._max_time[seq] = max_time
                else:
                    self._members[root_seq].append(seq)
                self._parent[seq] = root_seq
                bisect.insort(timeline, (alert.occurred_at, seq))

    def finalize_ready(self, watermark: float, min_open_first: float | None) -> list[AlertCluster]:
        """Close components no future representative can join.

        ``watermark`` is the max event time ingested; ``min_open_first``
        the earliest first-alert time among still-open aggregation
        sessions (``None`` when no session is open).  Any future
        representative must carry a timestamp ≥ the smaller of the two.
        """
        horizon = watermark if min_open_first is None else min(watermark, min_open_first)
        safe_before = horizon - self._window
        ready = [
            root for root, max_time in self._max_time.items()
            if max_time < safe_before
        ]
        return self._finalize(ready)

    def drain(self) -> list[AlertCluster]:
        """Finalise every remaining component (end of stream)."""
        return self._finalize(list(self._members))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _find(self, seq: int) -> int:
        root = seq
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[seq] != root:  # path compression
            self._parent[seq], seq = root, self._parent[seq]
        return root

    def _union(self, a: int, b: int) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        if len(self._members[ra]) < len(self._members[rb]):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._members[ra].extend(self._members.pop(rb))
        self._max_time[ra] = max(self._max_time[ra], self._max_time.pop(rb))

    def _finalize(self, roots: list[int]) -> list[AlertCluster]:
        clusters: list[AlertCluster] = []
        evicted: set[int] = set()
        for root in roots:
            member_seqs = self._members.pop(root)
            del self._max_time[root]
            alerts = [self._entries[seq].alert for seq in member_seqs]
            clusters.append(self._analyzer.build_cluster(alerts))
            for seq in member_seqs:
                del self._entries[seq]
                del self._parent[seq]
                evicted.add(seq)
        if evicted:
            self._timelines = {
                region: kept
                for region, timeline in self._timelines.items()
                if (kept := [item for item in timeline if item[1] not in evicted])
            }
        clusters.sort(key=lambda c: (c.alerts[0].occurred_at, -c.size))
        self.finalized_count += len(clusters)
        if self._retain_finalized:
            self.finalized.extend(clusters)
        return clusters
