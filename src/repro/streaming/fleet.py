"""Worker-fleet supervision: typed death errors + per-worker breakers.

The process backend partitions planes across worker processes and talks
to each over a pipe.  Before this module existed, a worker that died
mid-request (OOM kill, segfault, operator ``kill -9``) left the gateway
blocked in ``connection.recv()`` forever — the exact *missing-retry* /
*no-circuit-breaker* / *cascading-dependency* anti-patterns the paper's
reliability catalogue describes, exhibited by the system built to detect
them.  This module holds the supervision vocabulary the backend now
speaks:

* :class:`WorkerDiedError` — raised when a bounded poll observes a dead
  worker; names the worker, its exit code, and the planes it owned, so
  the operator (or the supervisor) knows exactly what state is at risk.
* :class:`WorkerTimeoutError` — the worker is *alive* but has not
  replied within the configured ``worker_timeout``; distinguishing a
  wedge from a death matters because only the latter is safely
  recoverable by respawn (a wedged worker may still consume its ring).
* :class:`CircuitBreaker` — a deterministic, count-based per-worker
  breaker.  It never rejects work (planes are pinned to their worker,
  so there is nothing to shed to); instead an open breaker steers that
  worker's zero-copy ring traffic onto the journaled pipe path until a
  probation of consecutive successes closes it again, and it is
  surfaced as gateway telemetry (``stats.breaker_open``).

Counts, not clocks: the breaker transitions on observed outcomes only,
so chaos tests replay bit-identically and the breaker's behaviour does
not depend on scheduler timing.
"""

from __future__ import annotations

__all__ = [
    "FleetError",
    "WorkerDiedError",
    "WorkerTimeoutError",
    "CircuitBreaker",
]


class FleetError(RuntimeError):
    """Base class for worker-fleet supervision failures."""


class WorkerDiedError(FleetError):
    """A plane worker process died while a request was (or would be) in flight.

    Raised instead of hanging in ``recv()``: the bounded poll noticed
    ``Process.is_alive()`` go false (or the pipe hit EOF) and joined the
    corpse.  With recovery off this is the terminal, actionable error;
    with recovery on the supervisor catches it, respawns the worker from
    its last plane snapshot + journal, and retries the request.
    """

    def __init__(
        self,
        worker_id: int,
        exitcode: int | None,
        planes: tuple[int, ...] = (),
    ) -> None:
        self.worker_id = int(worker_id)
        self.exitcode = exitcode
        self.planes = tuple(planes)
        owned = (
            f" (planes {', '.join(map(str, self.planes))})" if self.planes else ""
        )
        signal = ""
        if exitcode is not None and exitcode < 0:
            signal = f" (signal {-exitcode})"
        super().__init__(
            f"plane worker {self.worker_id}{owned} died with exit code "
            f"{exitcode}{signal}; enable worker_recovery to respawn and "
            f"replay it from its last snapshot"
        )


class WorkerTimeoutError(FleetError):
    """A live plane worker failed to reply within ``worker_timeout``.

    Deliberately distinct from :class:`WorkerDiedError`: the worker still
    holds its planes (and possibly a ring slot mid-consume), so a respawn
    would fork live state — the supervisor never auto-recovers a wedge.
    """

    def __init__(self, worker_id: int, timeout: float) -> None:
        self.worker_id = int(worker_id)
        self.timeout = float(timeout)
        super().__init__(
            f"plane worker {self.worker_id} is alive but sent no reply "
            f"within {timeout:.1f}s; it may be wedged (raise worker_timeout "
            f"for long batches, or kill the worker to trigger recovery)"
        )


class CircuitBreaker:
    """Count-based per-worker breaker (deterministic, clock-free).

    ``record_failure`` accumulates consecutive transient failures; at
    ``threshold`` the breaker opens (a worker *death* is reported via
    :meth:`record_death`, which opens immediately).  While open,
    :attr:`allow_ring` is false — the owning worker's lane traffic takes
    the journaled pipe path instead of the shared-memory ring — and each
    successful exchange counts towards ``probation``; after that many
    consecutive successes the breaker closes and ring traffic resumes.
    """

    __slots__ = ("threshold", "probation", "_failures", "_successes", "_open", "trips")

    def __init__(self, threshold: int = 3, probation: int = 8) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if probation < 1:
            raise ValueError("breaker probation must be >= 1")
        self.threshold = int(threshold)
        self.probation = int(probation)
        self._failures = 0
        self._successes = 0
        self._open = False
        #: Lifetime open transitions (telemetry).
        self.trips = 0

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def allow_ring(self) -> bool:
        """Whether lane batches may use the zero-copy ring right now."""
        return not self._open

    def _trip(self) -> None:
        if not self._open:
            self._open = True
            self.trips += 1
        self._successes = 0

    def record_failure(self) -> None:
        """One transient failure (pipe error with the worker still alive)."""
        self._failures += 1
        if self._failures >= self.threshold:
            self._trip()

    def record_death(self) -> None:
        """A worker death opens the breaker unconditionally."""
        self._failures = self.threshold
        self._trip()

    def record_success(self) -> None:
        """One successful exchange; closes an open breaker after probation."""
        self._failures = 0
        if self._open:
            self._successes += 1
            if self._successes >= self.probation:
                self._open = False
                self._successes = 0
