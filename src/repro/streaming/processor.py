"""The per-shard stream processor: R1 blocking, R2 dedup, R4 signals.

Each shard owns the alerts of its slice of the ``(service, title
template)`` key space and runs the volume-reducing reactions inline:

* **R1** — every event is tested against the blocking rules
  (:class:`~repro.core.mitigation.blocking.AlertBlocker` is already an
  O(rules-per-strategy) point lookup, so the batch component streams
  as-is);
* **R2** — survivors feed the :class:`OnlineAggregator`'s session
  windows; closed sessions surface as ``AggregatedAlert`` emissions;
* **R4** — survivors also advance the ring-buffer storm/emerging
  detector.

Correlation (R3) deliberately does *not* live here: cascades cross
services, so shard-local clustering would split them.  The gateway runs
one :class:`~repro.streaming.correlator.OnlineCorrelator` over the much
smaller merged stream of shard emissions instead.
"""

from __future__ import annotations

from repro.alerting.alert import Alert
from repro.core.mitigation.aggregation import AggregatedAlert
from repro.core.mitigation.blocking import AlertBlocker
from repro.streaming.dedup import OnlineAggregator
from repro.streaming.storm import OnlineStormDetector

__all__ = ["StreamProcessor"]


class StreamProcessor:
    """One shard's incremental reaction chain."""

    def __init__(
        self,
        shard_id: int,
        blocker: AlertBlocker,
        aggregation_window: float = 900.0,
        storm_detector: OnlineStormDetector | None = None,
    ) -> None:
        self.shard_id = shard_id
        self._blocker = blocker
        self._aggregator = OnlineAggregator(aggregation_window)
        self._storms = storm_detector
        self.seen = 0
        self.blocked = 0
        self.emitted = 0
        self.last_event_at: float | None = None

    @property
    def open_sessions(self) -> int:
        """In-flight aggregation sessions on this shard."""
        return self._aggregator.open_sessions

    @property
    def storm_detector(self) -> OnlineStormDetector | None:
        """The shard's R4 detector, when enabled."""
        return self._storms

    def min_open_first(self) -> float | None:
        """Earliest open-session start (feeds the correlator's horizon)."""
        return self._aggregator.min_open_first()

    def ingest(self, alert: Alert) -> tuple[bool, list[AggregatedAlert]]:
        """Process one event.

        Returns ``(blocked, emitted)``: whether R1 dropped the event, and
        the aggregates whose sessions this event closed.
        """
        self.seen += 1
        self.last_event_at = alert.occurred_at
        # Detection watches the raw stream (a flood of blockable noise is
        # still a flood); the reactions then shrink it.
        if self._storms is not None:
            self._storms.ingest(alert)
        if self._blocker.is_blocked(alert):
            self.blocked += 1
            return True, []
        emitted = self._aggregator.ingest(alert)
        self.emitted += len(emitted)
        return False, emitted

    def drain(self) -> list[AggregatedAlert]:
        """Flush all open aggregation state at end of stream.

        The storm detector is *not* closed here: the gateway may share
        one detector across shards, so its owner calls
        :meth:`OnlineStormDetector.finish` once with the global
        watermark.
        """
        emitted = self._aggregator.drain()
        self.emitted += len(emitted)
        return emitted
