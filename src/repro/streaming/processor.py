"""The per-shard stream processor: R1 blocking + R2 dedup.

Each shard owns the alerts of its slice of the ``(service, title
template)`` key space and runs the volume-reducing reactions inline:

* **R1** — every event is tested against the blocking rules
  (:class:`~repro.core.mitigation.blocking.AlertBlocker` is already an
  O(rules-per-strategy) point lookup, so the batch component streams
  as-is);
* **R2** — survivors feed the :class:`OnlineAggregator`'s session
  windows; closed sessions surface as ``AggregatedAlert`` emissions.

Correlation (R3) and storm detection (R4) deliberately do *not* live
here: cascades cross services (so shard-local clustering would split
them) and flood rates are per region (so per-shard counters would dilute
them).  They live one level up, on the owning
:class:`~repro.streaming.plane.RegionPlane` — regions are independent
for both reactions, so a plane-local :class:`OnlineCorrelator` over the
plane's merged shard emissions and a plane-local ``OnlineStormDetector``
over its raw in-order sub-stream are exact.  Keeping shard state free of
shared detectors is also what lets the backends run planes truly
concurrently: a processor touches nothing outside itself.
"""

from __future__ import annotations

from repro.alerting.alert import Alert
from repro.core.mitigation.aggregation import AggregatedAlert
from repro.core.mitigation.blocking import AlertBlocker
from repro.streaming.dedup import OnlineAggregator, OpenSession

__all__ = ["StreamProcessor"]


class StreamProcessor:
    """One shard's incremental reaction chain."""

    def __init__(
        self,
        shard_id: int,
        blocker: AlertBlocker,
        aggregation_window: float = 900.0,
    ) -> None:
        self.shard_id = shard_id
        self._blocker = blocker
        self._aggregator = OnlineAggregator(aggregation_window)
        self.seen = 0
        self.blocked = 0
        self.emitted = 0
        self.last_event_at: float | None = None

    @property
    def open_sessions(self) -> int:
        """In-flight aggregation sessions on this shard."""
        return self._aggregator.open_sessions

    def min_open_first(self) -> float | None:
        """Earliest open-session start (feeds the correlator's horizon)."""
        return self._aggregator.min_open_first()

    def ingest(self, alert: Alert) -> tuple[bool, list[AggregatedAlert]]:
        """Process one event.

        Returns ``(blocked, emitted)``: whether R1 dropped the event, and
        the aggregates whose sessions this event closed.
        """
        self.seen += 1
        self.last_event_at = alert.occurred_at
        if self._blocker.is_blocked(alert):
            self.blocked += 1
            return True, []
        emitted = self._aggregator.ingest(alert)
        self.emitted += len(emitted)
        return False, emitted

    def ingest_batch(
        self,
        alerts: list[Alert],
        blocked_by_region: dict[str, int] | None = None,
    ) -> tuple[int, list[AggregatedAlert]]:
        """Process one micro-batch; equivalent to ``ingest`` per event.

        Returns ``(blocked_count, emitted)``.  R1 skips the rule scan for
        strategies no rule targets, and R2 takes the run-compressed path.
        ``blocked_by_region``, when given, accumulates the per-region
        blocked counts (one dict increment per *blocked* alert only) —
        the owning plane's migration-grade accounting.
        """
        ruled = self._blocker.ruled_strategies
        is_blocked = self._blocker.is_blocked
        blocked = 0
        if ruled:
            survivors = []
            append = survivors.append
            for alert in alerts:
                if alert.strategy_id in ruled and is_blocked(alert):
                    blocked += 1
                    if blocked_by_region is not None:
                        region = alert.region
                        blocked_by_region[region] = (
                            blocked_by_region.get(region, 0) + 1
                        )
                else:
                    append(alert)
        else:
            survivors = alerts
        emitted = self._aggregator.ingest_batch(survivors)
        self.seen += len(alerts)
        self.blocked += blocked
        self.emitted += len(emitted)
        if alerts:
            self.last_event_at = alerts[-1].occurred_at
        return blocked, emitted

    def export_sessions(self) -> list[OpenSession]:
        """Hand over every open R2 session (shard rebalancing)."""
        return self._aggregator.export_sessions()

    def export_region(self, region: str) -> list[OpenSession]:
        """Hand over one region's open R2 sessions (plane migration)."""
        return self._aggregator.export_region(region)

    def adopt_sessions(self, sessions: list[OpenSession]) -> None:
        """Install R2 sessions migrated from another shard."""
        self._aggregator.adopt(sessions)

    def drain(self) -> list[AggregatedAlert]:
        """Flush all open aggregation state at end of stream."""
        emitted = self._aggregator.drain()
        self.emitted += len(emitted)
        return emitted
