"""Partitioned ingress lanes: the gateway ingress reduced to routing.

The classic ingest path does everything on the caller's thread: route,
buffer, and — on the ``process`` backend — wire-encode every flushed
batch before it crosses a pipe.  At one core that pass is a few µs per
event; at N planes on N cores it is *the* wall, because every plane's
feed serialises through it (the ROADMAP's "single-threaded ingress
ceiling").

:class:`LaneIngress` splits that work across **ingest lanes**.  The
caller's thread keeps only the irreducible sequential pass — a
region → plane table hit (:attr:`~repro.streaming.routing.PlaneRouter.
plane_cache`), an append into the plane's buffer, and the stream-global
accounting (watermark, late events, the novelty-warmup prefix).  Full
per-plane batches are handed to lane worker threads, which do the
expensive part off the ingress thread:

* in-process backends (``serial``/``thread``): the lane thread runs the
  plane's whole reaction chain via ``backend.lane_feed`` — the lane *is*
  the plane's worker;
* the ``process`` backend: the lane thread wire-encodes the batch with a
  reusable :class:`~repro.streaming.wire.AlertBatchBuilder` (encode once
  at the lane, zero re-encode downstream) and hands the encoder's output
  parts to ``backend.lane_feed_parts``, which writes them *in place*
  into the (lane, worker) shared-memory ring (:mod:`~repro.streaming.
  rings`) — or, on the ``pipe`` transport, joins and ships them over the
  worker's pipe via the classic path — so lanes drive disjoint worker
  processes concurrently and N planes on N cores scale without a
  gateway-side encode pass (or a per-batch payload copy) in the way.

Lanes own disjoint planes (``plane % n_lanes``), so no plane state is
ever touched by two lanes.  Exact parity with the classic path is a
hard invariant, and it follows from two existing frozen properties:

* with rule learning off, end-of-run drain accounting is invariant to
  flush boundaries (the flush-size/backends parity harness), and lanes
  only ever change *where* flush boundaries fall (per-plane instead of
  gateway-global);
* each dispatched batch carries the stream-global watermark at its
  dispatch point — the same value the classic path hands
  ``backend.flush`` — so the R3 safety horizon advances through the
  identical sequence of cut points per plane substream.

With rule learning or streaming QoA on, the lanes run in **barrier
mode** instead: the gateway keeps its classic gateway-global flush
trigger (so the learner's judgment schedule is *identical* to
``ingress_lanes=1``) and hands each full flush cycle's per-plane
batches to the lanes via :meth:`LaneIngress.flush_batches`, which
dispatches them all, joins every lane (quiesce), and returns the
cycle's per-plane observation digests in plane order — the same
gateway-global evidence, encoded and executed in parallel on the lane
threads.  Rule deltas are applied only inside that barrier, while
every lane is idle.

Dispatch is backpressured: lane queues are bounded at
:data:`LANE_QUEUE_DEPTH` batches, so a slow worker stalls the ingest
thread (counted in :attr:`LaneIngress.stalls`, surfaced as
``GatewayStats.lane_stalls``) instead of ballooning gateway memory.

Thread contract: one ingest caller at a time (the gateway's existing
contract — the serving layer already serialises ingest under its
lock); lane threads never touch ``GatewayStats``; results and flush
telemetry cross back to the caller only at :meth:`barrier` /
:meth:`flush_batches`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Iterable, Sequence

from repro.alerting.alert import Alert
from repro.streaming.plane import PlaneFlushResult
from repro.streaming.routing import PlaneRouter
from repro.streaming.stats import GatewayStats
from repro.streaming.wire import AlertBatchBuilder

__all__ = ["LaneIngress", "LANE_QUEUE_DEPTH", "LANE_JOIN_TIMEOUT"]

#: Bound on each lane's dispatch queue, in batches.  Deep enough that a
#: lane briefly behind its feed never stalls ingest, shallow enough
#: that a wedged worker caps buffered memory at a few flushes per lane.
LANE_QUEUE_DEPTH = 8

#: Per-thread join budget at :meth:`LaneIngress.close`.  A lane thread
#: still alive past this is surfaced as a hard error, not silently
#: leaked — a running lane holds a backend reference and may be blocked
#: inside a worker pipe exchange.
LANE_JOIN_TIMEOUT = 10.0


class LaneIngress:
    """Per-region ingest lanes feeding planes directly (disjoint planes)."""

    def __init__(
        self,
        backend,
        router: PlaneRouter,
        n_planes: int,
        n_lanes: int,
        flush_size: int,
        flush_interval: float | None,
        warmup_limit: int,
        barrier_mode: bool = False,
    ) -> None:
        self._backend = backend
        self._router = router
        self._n_lanes = min(int(n_lanes), int(n_planes))
        self._flush_size = int(flush_size)
        self._flush_interval = flush_interval
        self._warmup_limit = int(warmup_limit)
        #: Barrier mode (rule learning / QoA): the gateway owns the
        #: buffers and the classic global flush trigger; lanes only run
        #: :meth:`flush_batches` cycles.  See the module docstring.
        self.barrier_mode = bool(barrier_mode)
        self._encoded = hasattr(backend, "lane_feed_encoded")
        self._parts_feed = getattr(backend, "lane_feed_parts", None)
        self._buffers: list[list[Alert]] = [[] for _ in range(n_planes)]
        self._warmup_pending: list[int] = [0] * n_planes
        #: Per-plane interval anchor; clamped backwards by late events so
        #: a regressing source cannot stall interval flushes (the same
        #: fix the classic path's ``_last_flush_watermark`` got).
        self._interval_anchor: list[float | None] = [None] * n_planes
        self._buffered = 0
        self._queues: list[queue.Queue] | None = None
        self._threads: list[threading.Thread] = []
        self._errors: list[BaseException] = []
        #: Last flush result per plane (lifetime counters; lane threads
        #: write disjoint keys, the barrier reads after joining).
        self._last_results: dict[int, PlaneFlushResult] = {}
        #: This cycle's results (barrier mode): popped by
        #: :meth:`flush_batches` after the join, keyed by plane.
        self._cycle_results: dict[int, PlaneFlushResult] = {}
        #: Blocking puts against the bounded lane queues (backpressure
        #: events); mutated on the ingest thread only.
        self.stalls = 0
        self._flush_counts: list[int] = [0] * self._n_lanes
        self._flush_seconds: list[float] = [0.0] * self._n_lanes
        self._flush_events: list[int] = [0] * self._n_lanes
        self._closed = False

    @property
    def n_lanes(self) -> int:
        """Number of ingest lane threads (clamped to the plane count)."""
        return self._n_lanes

    @property
    def pending(self) -> int:
        """Events not yet processed by a plane (buffered + in flight)."""
        in_flight = 0
        if self._queues is not None:
            in_flight = sum(q.unfinished_tasks for q in self._queues)
        return self._buffered + in_flight

    # ------------------------------------------------------------------
    # the sequential partition pass (caller thread)
    # ------------------------------------------------------------------
    def ingest(self, alerts: Iterable[Alert], stats: GatewayStats) -> int:
        """Route a batch into per-plane buffers, dispatching full ones.

        Mirrors the classic ``ingest_batch`` hot loop, minus everything
        that moved to the lanes; the try/finally keeps the accounting
        consistent when the source iterable raises mid-stream.
        """
        if self._queues is None:
            self._start()
        buffers = self._buffers
        warmup_pending = self._warmup_pending
        warmup_limit = self._warmup_limit
        anchors = self._interval_anchor
        plane_cache = self._router.plane_cache
        plane_of = self._router.plane_of
        flush_size = self._flush_size
        interval = self._flush_interval
        count = 0
        inputs = stats.input_alerts
        late = 0
        buffered = self._buffered
        watermark = stats.watermark
        try:
            for alert in alerts:
                occurred_at = alert.occurred_at
                if watermark is None or occurred_at >= watermark:
                    watermark = occurred_at
                else:
                    late += 1
                plane = plane_cache.get(alert.region)
                if plane is None:
                    plane = plane_of(alert.region)
                batch = buffers[plane]
                batch.append(alert)
                count += 1
                inputs += 1
                buffered += 1
                if inputs <= warmup_limit:
                    warmup_pending[plane] += 1
                if len(batch) >= flush_size:
                    buffered -= len(batch)
                    self._dispatch(plane, batch, watermark)
                elif interval is not None:
                    anchor = anchors[plane]
                    if anchor is None or occurred_at < anchor:
                        anchors[plane] = anchor = occurred_at
                    if watermark - anchor >= interval:
                        buffered -= len(batch)
                        self._dispatch(plane, batch, watermark)
        finally:
            stats.watermark = watermark
            stats.input_alerts = inputs
            stats.late_events += late
            self._buffered = buffered
        return count

    def _dispatch(
        self, plane: int, batch: list[Alert], watermark: float | None,
    ) -> None:
        """Hand one full per-plane batch to its owning lane."""
        self._buffers[plane] = []
        in_warmup = self._warmup_pending[plane]
        if in_warmup:
            self._warmup_pending[plane] = 0
        if self._flush_interval is not None:
            self._interval_anchor[plane] = watermark
        self._put(plane % self._n_lanes, (plane, batch, in_warmup, watermark))

    def _put(self, lane: int, item) -> None:
        """Enqueue onto a bounded lane queue, counting backpressure stalls.

        The fast path never blocks; a full queue falls back to a
        blocking put, so a slow worker throttles ingest (bounded memory)
        instead of the queue growing without limit.  Only the ingest
        thread calls this, so the stall counter needs no lock.
        """
        work = self._queues[lane]
        try:
            work.put_nowait(item)
        except queue.Full:
            self.stalls += 1
            work.put(item)

    # ------------------------------------------------------------------
    # lane workers
    # ------------------------------------------------------------------
    def _start(self) -> None:
        queues = [
            queue.Queue(maxsize=LANE_QUEUE_DEPTH) for _ in range(self._n_lanes)
        ]
        self._queues = queues
        for lane in range(self._n_lanes):
            thread = threading.Thread(
                target=self._lane_loop, args=(lane,),
                name=f"ingress-lane-{lane}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _lane_loop(self, lane: int) -> None:
        backend = self._backend
        encoded = self._encoded
        feed_parts = self._parts_feed
        builder = AlertBatchBuilder() if encoded else None
        work = self._queues[lane]
        results = self._last_results
        cycle = self._cycle_results
        while True:
            item = work.get()
            if item is None:
                work.task_done()
                break
            plane, batch, in_warmup, watermark = item
            started = time.perf_counter()
            try:
                if feed_parts is not None:
                    # Zero-copy hand-off: the encoder's output parts go
                    # straight into the (lane, worker) shared-memory
                    # ring (or the pipe, on the ``pipe`` transport).
                    builder.extend(batch)
                    result = feed_parts(
                        lane, plane, builder.finish_parts(),
                        in_warmup, watermark,
                    )
                elif encoded:
                    builder.extend(batch)
                    result = backend.lane_feed_encoded(
                        plane, builder.finish(), in_warmup, watermark,
                    )
                else:
                    result = backend.lane_feed(
                        plane, batch, in_warmup, watermark,
                    )
                results[plane] = result
                cycle[plane] = result
                self._flush_counts[lane] += 1
                self._flush_seconds[lane] += time.perf_counter() - started
                self._flush_events[lane] += len(batch)
            except BaseException as exc:  # surfaced at the next barrier
                if builder is not None:
                    # A failed feed must not leak half a batch into the
                    # next one's encoding.
                    builder.reset()
                self._errors.append(exc)
            finally:
                work.task_done()

    # ------------------------------------------------------------------
    # barriers and lifecycle (caller thread)
    # ------------------------------------------------------------------
    def barrier(
        self, watermark: float | None,
    ) -> tuple[list[PlaneFlushResult], int, float, int]:
        """Dispatch partial buffers and wait for every lane to go idle.

        Returns ``(last per-plane results, flushes, seconds, events)``
        accumulated since the previous barrier.  Lane failures raise
        here, after the join, so the gateway's error surface stays on
        its own thread.
        """
        if self._buffered:
            for plane, batch in enumerate(self._buffers):
                if batch:
                    self._buffered -= len(batch)
                    self._dispatch(plane, batch, watermark)
        if self._queues is None:
            return [], 0, 0.0, 0
        for work in self._queues:
            work.join()
        if self._errors:
            error = self._errors[0]
            self._errors = []
            raise error
        results = [
            self._last_results[plane] for plane in sorted(self._last_results)
        ]
        flushes = sum(self._flush_counts)
        seconds = sum(self._flush_seconds)
        events = sum(self._flush_events)
        if flushes:
            self._flush_counts = [0] * self._n_lanes
            self._flush_seconds = [0.0] * self._n_lanes
            self._flush_events = [0] * self._n_lanes
        return results, flushes, seconds, events

    def flush_batches(
        self,
        batches: Sequence[tuple[int, list[Alert], int]],
        watermark: float | None,
    ) -> list[PlaneFlushResult]:
        """Run one gateway flush cycle across the lanes (barrier mode).

        ``batches`` is exactly what the classic path would hand
        ``backend.flush`` — at most one ``(plane, alerts, in_warmup)``
        row per plane — and the return contract matches it too: one
        result per batch, in ``batches`` order.  The lanes encode and
        feed the rows concurrently, then this call joins every lane
        before returning, so the caller observes a full quiesce: by the
        time the cycle's observation digests reach the learner, no lane
        holds in-flight work and a rule delta can be applied without a
        lane ever seeing a mid-feed table change.
        """
        if self._queues is None:
            self._start()
        n_lanes = self._n_lanes
        for plane, batch, in_warmup in batches:
            self._put(plane % n_lanes, (plane, batch, in_warmup, watermark))
        for work in self._queues:
            work.join()
        if self._errors:
            error = self._errors[0]
            self._errors = []
            self._cycle_results.clear()
            raise error
        cycle = self._cycle_results
        results = [cycle.pop(plane) for plane, _, _ in batches]
        return results

    def rescale(self, n_planes: int) -> None:
        """Adopt a new plane topology (call only at a barrier).

        The gateway rebuilds its per-plane accounting from
        post-migration snapshots, so the cached last results — lifetime
        counters keyed by the *old* topology — must not leak into the
        next merge.
        """
        self._buffers = [[] for _ in range(n_planes)]
        self._warmup_pending = [0] * n_planes
        self._interval_anchor = [None] * n_planes
        self._last_results.clear()
        self._cycle_results.clear()

    def close(self) -> None:
        """Stop the lane threads (queued work drains first); idempotent.

        A lane thread still alive after its join budget is surfaced as a
        ``RuntimeError`` naming the stuck lanes, never silently leaked:
        a running lane still holds the backend and may be mid-exchange
        on a worker pipe, so pretending it is gone would let the caller
        tear down resources the thread is actively using.
        """
        if self._closed:
            return
        self._closed = True
        if self._queues is None:
            return
        for work in self._queues:
            work.put(None)
        for thread in self._threads:
            thread.join(timeout=LANE_JOIN_TIMEOUT)
        stuck = [thread.name for thread in self._threads if thread.is_alive()]
        self._threads = []
        if stuck:
            raise RuntimeError(
                f"ingress lane thread(s) still running after "
                f"{LANE_JOIN_TIMEOUT:.0f}s shutdown join: {', '.join(stuck)}; "
                f"a plane worker is likely wedged (see worker_timeout) and "
                f"the lane is blocked on its pipe"
            )
