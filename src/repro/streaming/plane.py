"""Region-partitioned execution planes: one self-contained R1-R4 chain.

A :class:`RegionPlane` is the unit of parallelism of the refactored
gateway.  It owns everything needed to run the mitigation chain for a
disjoint set of regions:

* a bank of per-shard :class:`~repro.streaming.processor.StreamProcessor`
  instances behind the plane's own consistent-hash
  :class:`~repro.streaming.routing.ShardRouter` (R1 blocking + R2
  session-window dedup, partitioned by ``(service, title template)``);
* one :class:`~repro.streaming.correlator.OnlineCorrelator` over the
  plane's merged aggregate-representative stream (R3 — exact, because
  correlation evidence requires equal regions, so no component can span
  planes);
* one :class:`~repro.streaming.storm.OnlineStormDetector` over the
  plane's raw in-order sub-stream (R4 — exact, because flood rates and
  novelty are keyed per region; the stream-global novelty warmup is
  threaded through as a per-batch ``in_warmup`` prefix computed by the
  gateway).

Because a plane touches nothing outside itself, the execution backends
can run whole planes on worker threads or processes: R3 correlation and
R4 detection execute inside the workers, off the gateway loop — the
gateway is reduced to routing, watermark tracking, and snapshot/stat
merging.

The plane's safety horizon for R3 finalisation is plane-local: any
future representative in this plane's regions must come from this
plane's open sessions, so ``min(gateway watermark, plane min-open-first)
- window`` is a valid (and tighter) horizon than the PR-2 global one.
Finalising earlier never changes what is finalised — components are
closed only when provably unreachable — so end-of-run accounting is
identical to the flat gateway for in-order streams.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.alerting.alert import Alert, AlertState
from repro.common.timeutil import HOUR
from repro.core.antipatterns.base import DetectorThresholds
from repro.ml.sketch import DEFAULT_SKETCH_BUCKETS, alert_document, hash_document
from repro.core.mitigation.aggregation import AggregatedAlert
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.core.mitigation.correlation import (
    AlertCluster,
    CorrelationAnalyzer,
    DependencyRuleBook,
)
from repro.streaming.correlator import OnlineCorrelator
from repro.streaming.dedup import OpenSession
from repro.streaming.processor import StreamProcessor
from repro.streaming.routing import ShardRouter
from repro.streaming.storm import OnlineStormDetector, RegionStormState
from repro.streaming.wire import pack_detection
from repro.topology.graph import DependencyGraph

__all__ = [
    "PlaneConfig",
    "PlaneFlushResult",
    "PlaneSnapshot",
    "PlaneDrainResult",
    "PlaneRegionState",
    "RegionPlane",
]


@dataclass(slots=True)
class PlaneConfig:
    """Everything a worker needs to build a plane (picklable once, at spawn)."""

    graph: DependencyGraph
    blocker: AlertBlocker
    rulebook: DependencyRuleBook | None
    n_shards: int
    aggregation_window: float
    correlation_window: float
    correlation_max_hops: int
    enable_storm_detection: bool
    retain_artifacts: bool
    finalize_every: int
    #: When set, every flush reports per-(strategy, region) observation
    #: digests (seen/blocked/transient/groups) for the gateway's rule
    #: learner and QoA scorer.  Off by default: the plain gateway path
    #: pays nothing and its accounting stays bit-identical.
    collect_observations: bool = False
    #: A4 transient cut-off used when digesting — defaulted from the
    #: batch detectors' single source of truth so streaming evidence and
    #: batch A4/QoA can never silently disagree.
    intermittent_threshold: float = DetectorThresholds().intermittent_threshold
    #: When set, every flush also ships a wire-packed detection digest
    #: (strategy catalog, A2 lifecycle statistics, hashed R4 documents)
    #: for the gateway's online detector suite.  Off by default.
    collect_detection: bool = False
    #: When set (in-process backends only), the detection digest is
    #: handed over as the plain ``(catalog, stats, docs, doc_rows)``
    #: tuple instead of wire bytes — the structures are built exactly as
    #: :func:`~repro.streaming.wire.unpack_detection` would decode them,
    #: so the detector suite folds identical values either way; skipping
    #: the pack/unpack round trip just removes pure overhead when no
    #: process boundary needs crossing.
    detection_inline: bool = False
    #: Bucket count of the R4 hashing sketch documents — must match the
    #: gateway suite's sketch width or the hashed ids are meaningless.
    sketch_buckets: int = DEFAULT_SKETCH_BUCKETS
    #: Raw event times kept per (strategy, region, hour) stat row.  A
    #: bucket that reaches this cap is by itself proof of a repeat-sized
    #: run, so nothing beyond it ever needs shipping; defaulted from the
    #: batch thresholds' single source of truth.
    detection_times_cap: int = DetectorThresholds().repeat_window_count


@dataclass(slots=True)
class PlaneFlushResult:
    """Lifetime accounting one plane reports after a flush cycle."""

    plane_id: int
    processed: int
    blocked: int
    aggregates: int
    clusters: int
    storm_episodes: int
    emerging_flags: int
    open_sessions: int
    active_components: int
    retained_representatives: int
    #: Aggregates closed by this flush.  In-process backends hand back the
    #: live objects; the process backend strips this to ``None`` so flush
    #: replies stay a fixed-size tuple of counters on the wire.
    emitted: list[AggregatedAlert] | None = None
    #: Per-(strategy, region) observation digests of this flush batch —
    #: ``(strategy_id, region, service, seen, blocked, transient, groups)``
    #: rows, in deterministic batch order.  ``None`` unless the plane was
    #: configured with ``collect_observations``.
    observations: list[tuple] | None = None
    #: Detection digest of this flush batch (strategy metadata catalog,
    #: per-hour severity statistics, hashed topic-sketch documents).
    #: Wire-packed bytes (:func:`repro.streaming.wire.pack_detection`)
    #: normally; the plain ``(catalog, stats, docs, doc_rows)`` tuple
    #: when the plane runs with ``detection_inline`` (in-process
    #: backends).  ``None`` unless configured with
    #: ``collect_detection``.
    detection: bytes | tuple | None = None

    def counters(self) -> dict[str, int]:
        """The accounting fields as a plain dict (stats/snapshot payload)."""
        return {
            "processed": self.processed,
            "blocked": self.blocked,
            "aggregates": self.aggregates,
            "clusters": self.clusters,
            "storm_episodes": self.storm_episodes,
            "emerging_flags": self.emerging_flags,
            "open_sessions": self.open_sessions,
            "active_components": self.active_components,
            "retained_representatives": self.retained_representatives,
        }


@dataclass(slots=True)
class PlaneRegionState:
    """One region's complete slice of a plane — the migration unit.

    Live plane scale-out (``gateway.scale_planes``) detaches this from
    the region's old plane and installs it on the new one, in-process or
    across a worker pipe (wire-packed by
    :func:`~repro.streaming.wire.pack_plane_state`).  It carries
    *everything* plane-resident the region's events ever touched: open
    R2 sessions, open R3 components (window + union-find), the R4 state
    (:class:`~repro.streaming.storm.RegionStormState`), the region's
    lifetime counter slice, any retained artifacts, and a snapshot of
    the live blocking-rule table (TTLs included) so the payload is
    self-contained — rule tables are already synchronised across
    backends at flush barriers, so adoption only verifies/repairs,
    never double-applies.
    """

    region: str
    #: [processed, blocked, aggregates, clusters] lifetime counts.
    counters: list[int]
    sessions: list[OpenSession]
    #: R3 components: (member representatives in union order, max time).
    components: list[tuple[list[Alert], float]]
    storm: RegionStormState | None
    retained_aggregates: list[AggregatedAlert] = field(default_factory=list)
    retained_clusters: list[AlertCluster] = field(default_factory=list)
    #: Live R1 rules at export time (learned TTL'd ones included).
    rules: list[BlockingRule] = field(default_factory=list)
    #: The source plane's sticky strategy → shard pins.  Rings are
    #: content-identical across planes for one shard count, so carried
    #: pins stay valid on the destination; adopting them (never
    #: overwriting existing ones) spares the new plane a blake2b
    #: re-route per strategy after a migration.
    shard_pins: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class PlaneSnapshot:
    """A point-in-time view of one plane's progress."""

    plane_id: int
    n_shards: int
    processed: int
    blocked: int
    aggregates: int
    clusters: int
    storm_episodes: int
    emerging_flags: int
    open_sessions: int
    active_components: int
    retained_representatives: int
    min_open_first: float | None

    def counters(self) -> dict[str, int]:
        """The accounting fields as a plain dict (stats/snapshot payload)."""
        return {
            "processed": self.processed,
            "blocked": self.blocked,
            "aggregates": self.aggregates,
            "clusters": self.clusters,
            "storm_episodes": self.storm_episodes,
            "emerging_flags": self.emerging_flags,
            "open_sessions": self.open_sessions,
            "active_components": self.active_components,
            "retained_representatives": self.retained_representatives,
        }


@dataclass(slots=True)
class PlaneDrainResult:
    """One plane's final accounting plus (optionally) retained artifacts."""

    plane_id: int
    processed: int
    blocked: int
    aggregates: int
    clusters: int
    storm_episodes: int
    emerging_flags: int
    retained_aggregates: list[AggregatedAlert] = field(default_factory=list)
    retained_clusters: list[AlertCluster] = field(default_factory=list)
    #: Observation digests of the drain flush (aggregates closed by the
    #: final session sweep, so the QoA group counts stay exact).
    observations: list[tuple] | None = None

    def counters(self) -> dict[str, int]:
        """The accounting fields as a plain dict (stats/snapshot payload)."""
        return {
            "processed": self.processed,
            "blocked": self.blocked,
            "aggregates": self.aggregates,
            "clusters": self.clusters,
            "storm_episodes": self.storm_episodes,
            "emerging_flags": self.emerging_flags,
            "open_sessions": 0,
            "active_components": 0,
            "retained_representatives": 0,
        }


def _new_region_row() -> list[int]:
    """A fresh [processed, blocked, aggregates, clusters] counter row."""
    return [0, 0, 0, 0]


def _count_groups(
    digest: dict[tuple[str, str], list],
    emitted: list[AggregatedAlert],
) -> None:
    """Fold emitted R2 aggregates into a digest's ``groups`` column.

    Aggregates may close for keys absent from the current batch (their
    sessions opened flushes ago), so missing rows are created on demand
    (the representative carries the service the row needs).
    """
    for aggregate in emitted:
        key = (aggregate.strategy_id, aggregate.region)
        row = digest.get(key)
        if row is None:
            digest[key] = row = [0, 0, 0, 0, aggregate.representative.service]
        row[3] += 1


def _digest_rows(digest: dict[tuple[str, str], list]) -> list[tuple]:
    """Flatten a digest dict into deterministic observation rows."""
    return [
        (strategy, region, row[4], row[0], row[1], row[2], row[3])
        for (strategy, region), row in digest.items()
    ]


class RegionPlane:
    """One execution plane: sharded R1/R2 plus plane-local R3/R4."""

    __slots__ = (
        "plane_id",
        "_config",
        "_router",
        "_shard_of",
        "processors",
        "_correlator",
        "_detector",
        "_retain",
        "_since_finalize",
        "processed",
        "blocked",
        "aggregates_emitted",
        "clusters_finalized",
        "aggregates",
        "clusters",
        "_region_counts",
        "_doc_cache",
    )

    def __init__(self, plane_id: int, config: PlaneConfig) -> None:
        self.plane_id = plane_id
        self._config = config
        self._router = ShardRouter(config.n_shards)
        self._shard_of: dict[str, int] = {}
        self.processors = [
            StreamProcessor(shard, config.blocker, config.aggregation_window)
            for shard in range(config.n_shards)
        ]
        self._correlator = OnlineCorrelator(CorrelationAnalyzer(
            config.graph,
            rulebook=config.rulebook,
            max_hops=config.correlation_max_hops,
            time_window=config.correlation_window,
        ))
        self._detector = (
            OnlineStormDetector() if config.enable_storm_detection else None
        )
        self._retain = config.retain_artifacts
        self._since_finalize = 0
        # Lifetime counters live on the plane, not the processors, so a
        # rebalance (which rebuilds the processor bank) cannot reset them.
        self.processed = 0
        self.blocked = 0
        self.aggregates_emitted = 0
        self.clusters_finalized = 0
        self.aggregates: list[AggregatedAlert] = []
        self.clusters: list[AlertCluster] = []
        # Per-region slices of the four lifetime counters above
        # ([processed, blocked, aggregates, clusters]): what lets a
        # region's whole accounting history migrate with it when the
        # gateway scales its plane topology.
        self._region_counts: dict[str, list[int]] = defaultdict(_new_region_row)
        # strategy -> (name, title, description, microservice, service,
        # hashed ids, counts): re-tokenising every alert would dominate
        # the detection digest; text changes invalidate per-field.
        self._doc_cache: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Shards on this plane's ring."""
        return len(self.processors)

    @property
    def storm_episodes(self) -> int:
        """Lifetime storm episodes detected on this plane's regions."""
        return self._detector.episode_count if self._detector is not None else 0

    @property
    def emerging_flags(self) -> int:
        """Lifetime emerging-alert flags raised on this plane's regions."""
        return self._detector.emerging_count if self._detector is not None else 0

    @property
    def open_sessions(self) -> int:
        """In-flight R2 sessions across this plane's shards."""
        return sum(p.open_sessions for p in self.processors)

    def min_open_first(self) -> float | None:
        """Earliest open-session start on this plane (R3 safety horizon)."""
        opens = [
            first for first in (p.min_open_first() for p in self.processors)
            if first is not None
        ]
        return min(opens) if opens else None

    def regions(self) -> list[str]:
        """Regions with recorded history on this plane, sorted.

        The keys of the per-region counter slices — exactly the regions
        whose state (and accounting) would migrate in a plane scale, and
        therefore exactly what a full-plane snapshot must capture.
        """
        return sorted(self._region_counts)

    def snapshot(self) -> PlaneSnapshot:
        """A consistent view of this plane's progress."""
        return PlaneSnapshot(
            plane_id=self.plane_id,
            n_shards=self.n_shards,
            processed=self.processed,
            blocked=self.blocked,
            aggregates=self.aggregates_emitted,
            clusters=self.clusters_finalized,
            storm_episodes=self.storm_episodes,
            emerging_flags=self.emerging_flags,
            open_sessions=self.open_sessions,
            active_components=self._correlator.active_components,
            retained_representatives=self._correlator.retained,
            min_open_first=self.min_open_first(),
        )

    # ------------------------------------------------------------------
    # the flush-cycle hot path
    # ------------------------------------------------------------------
    def process_batch(
        self,
        alerts: list[Alert],
        in_warmup: int,
        watermark: float | None,
        collect_emitted: bool = True,
    ) -> PlaneFlushResult:
        """Run one micro-batch through the plane's whole reaction chain.

        ``alerts`` is this plane's slice of the stream in arrival order;
        ``in_warmup`` the leading-event count inside the gateway-global
        novelty warmup; ``watermark`` the gateway's max event time, which
        caps the plane-local R3 safety horizon.  ``collect_emitted=False``
        returns the result with ``emitted=None`` — callers that only fold
        counters (process workers, ingress lanes) skip materialising the
        aggregate list in the result.
        """
        if self._detector is not None:
            self._detector.ingest_batch(alerts, in_warmup)
        if self._config.collect_detection and alerts:
            # One pass builds both digests: the detection scan already
            # touches every alert, so the learner's rows ride along.
            detection, digest = self._detection_digest(
                alerts, with_observations=self._config.collect_observations,
            )
        else:
            detection = None
            digest = (
                self._digest(alerts)
                if self._config.collect_observations else None
            )
        # Per-region processed counts, run-compressed (one dict touch
        # per contiguous same-region run, not per event).
        region_counts = self._region_counts
        n = len(alerts)
        index = 0
        while index < n:
            region = alerts[index].region
            stop = index + 1
            while stop < n and alerts[stop].region == region:
                stop += 1
            region_counts[region][0] += stop - index
            index = stop
        # Level-2 routing: partition the in-order run into per-shard
        # batches.  Strategies are pinned to the shard their first alert
        # hashes to, so sessions never straddle shards even when titles
        # drift non-numerically within one strategy.
        shard_of = self._shard_of
        route = self._router.route
        batches: dict[int, list[Alert]] = {}
        for alert in alerts:
            strategy = alert.strategy_id
            shard = shard_of.get(strategy)
            if shard is None:
                shard = route(alert)
                shard_of[strategy] = shard
            batch = batches.get(shard)
            if batch is None:
                batches[shard] = [alert]
            else:
                batch.append(alert)
        blocked = 0
        blocked_by_region: dict[str, int] = {}
        emitted_all: list[AggregatedAlert] = []
        processors = self.processors
        for shard in sorted(batches):
            shard_blocked, emitted = processors[shard].ingest_batch(
                batches[shard], blocked_by_region,
            )
            blocked += shard_blocked
            if emitted:
                emitted_all.extend(emitted)
        for region, count in blocked_by_region.items():
            region_counts[region][1] += count
        correlator = self._correlator
        for aggregate in emitted_all:
            correlator.add(aggregate.representative)
            # Aggregates may close for regions whose sessions opened
            # flushes (or migrations) ago, so rows appear on demand.
            region_counts[aggregate.region][2] += 1
        if self._retain and emitted_all:
            self.aggregates.extend(emitted_all)
        self.processed += len(alerts)
        self.blocked += blocked
        self.aggregates_emitted += len(emitted_all)
        self._since_finalize += len(alerts)
        if self._since_finalize >= self._config.finalize_every and watermark is not None:
            self._since_finalize = 0
            self._finalize_ready(watermark)
        if digest is not None:
            _count_groups(digest, emitted_all)
        return PlaneFlushResult(
            plane_id=self.plane_id,
            processed=self.processed,
            blocked=self.blocked,
            aggregates=self.aggregates_emitted,
            clusters=self.clusters_finalized,
            storm_episodes=self.storm_episodes,
            emerging_flags=self.emerging_flags,
            open_sessions=self.open_sessions,
            active_components=correlator.active_components,
            retained_representatives=correlator.retained,
            emitted=emitted_all if collect_emitted else None,
            observations=_digest_rows(digest) if digest is not None else None,
            detection=detection,
        )

    def _digest(self, alerts: list[Alert]) -> dict[tuple[str, str], list]:
        """Per-(strategy, region) seen/blocked/transient over one batch.

        Measured on the *pre-R1* stream: the learner's evidence must not
        depend on its own blocking decisions.  The blocked count re-tests
        the shared blocker — identical rules to the shard pass, because
        rule deltas only ever land between flushes — and skips the scan
        entirely for unruled strategies, mirroring the shard fast path.
        Each row also records the strategy's service (from its first
        alert of the batch), the key the learner's adaptive per-
        (service, region) baselines aggregate by.
        """
        blocker = self._config.blocker
        ruled = blocker.ruled_strategies
        is_blocked = blocker.is_blocked
        threshold = self._config.intermittent_threshold
        digest: dict[tuple[str, str], list] = {}
        for alert in alerts:
            strategy = alert.strategy_id
            key = (strategy, alert.region)
            row = digest.get(key)
            if row is None:
                digest[key] = row = [0, 0, 0, 0, alert.service]
            row[0] += 1
            if strategy in ruled and is_blocked(alert):
                row[1] += 1
            if alert.is_transient(threshold):
                row[2] += 1
        return digest

    def _detection_digest(
        self, alerts: list[Alert], with_observations: bool = False,
    ):
        """Build this batch's detection digest (pre-R1 stream).

        Catalog rows carry each strategy's deterministic first-seen
        metadata (smallest ``(occurred_at, alert_id)`` of the batch) and
        its latest event time; stat rows bucket the A2 lifecycle
        evidence per (strategy, region, hour); doc rows hash each
        alert's R4 document against the configured sketch width, with
        repeats of a strategy's unchanged document deduplicated into
        one shared table entry.
        Returns ``(detection, observations)`` — the digest wire-packed
        (or, with ``detection_inline``, as the tuple
        :func:`~repro.streaming.wire.unpack_detection` would produce)
        plus, with ``with_observations``, the learner digest
        :meth:`_digest` builds, folded in the same pass.
        """
        config = self._config
        cap = config.detection_times_cap
        threshold = config.intermittent_threshold
        n_buckets = config.sketch_buckets
        cache = self._doc_cache
        hour = HOUR
        manual_state = AlertState.CLEARED_MANUAL
        auto_state = AlertState.CLEARED_AUTO
        with_obs = with_observations
        ruled = is_blocked = None
        if with_obs:
            blocker = config.blocker
            ruled = blocker.ruled_strategies
            is_blocked = blocker.is_blocked
        # One dict probe per alert: sid -> [first-seen alert, latest
        # occurred_at, cached doc, doc-table entry,
        # {region: observation row}, {(region, bucket): stat row}].
        # The inner keys drop the shared sid, so their hashes are cheap.
        per_sid: dict[str, list] = {}
        docs: list[tuple] = []
        doc_rows: list[tuple] = []
        for alert in alerts:
            sid = alert.strategy_id
            at = alert.occurred_at
            region = alert.region
            state = alert.state
            cleared = alert.cleared_at
            # ``Alert.is_transient``, inlined for the hot loop.
            transient = (
                state is auto_state
                and cleared is not None
                and cleared - at < threshold
            )
            srec = per_sid.get(sid)
            if srec is None:
                per_sid[sid] = srec = [
                    alert, at, cache.get(sid), None, {}, {},
                ]
            else:
                # First-seen metadata: smallest (event time, id) wins.
                held = srec[0]
                if at < held.occurred_at or (
                    at == held.occurred_at and alert.alert_id < held.alert_id
                ):
                    srec[0] = alert
                if at > srec[1]:
                    srec[1] = at
            if with_obs:
                orow = srec[4].get(region)
                if orow is None:
                    srec[4][region] = orow = [0, 0, 0, 0, alert.service]
                orow[0] += 1
                if sid in ruled and is_blocked(alert):
                    orow[1] += 1
                if transient:
                    orow[2] += 1
            skey = (region, int(at // hour))
            row = srec[5].get(skey)
            if row is None:
                srec[5][skey] = row = [0, 0, 0, 0, 0.0, []]
            row[0] += 1
            if transient:
                row[1] += 1
            else:
                # Steady-alert lifecycle evidence (the A2 impact proxy).
                if state is manual_state:
                    row[2] += 1
                if cleared is not None:
                    row[3] += 1
                    row[4] += cleared - at
            if len(row[5]) < cap:
                row[5].append(at)
            cached = srec[2]
            if (
                cached is None
                or cached[0] != alert.strategy_name
                or cached[1] != alert.title
                or cached[2] != alert.description
                or cached[3] != alert.microservice
                or cached[4] != alert.service
            ):
                ids, counts = hash_document(alert_document(alert), n_buckets)
                cached = (
                    alert.strategy_name, alert.title, alert.description,
                    alert.microservice, alert.service, (ids, counts),
                )
                cache[sid] = cached
                srec[2] = cached
            content = cached[5]
            if not content[0]:
                continue
            entry = srec[3]
            if entry is None or entry[0] is not content:
                srec[3] = entry = (content, len(docs))
                docs.append(content)
            doc_rows.append((at, sid, entry[1]))
        ordered = sorted(per_sid.items())
        observations = None
        if with_obs:
            observations = {
                (sid, region): orow
                for sid, srec in ordered
                for region, orow in srec[4].items()
            }
        catalog = [
            (
                sid, alert.occurred_at, alert.alert_id, alert.title,
                alert.description, alert.severity.value, alert.service,
                srec[1],
            )
            for sid, srec in ordered
            for alert in (srec[0],)
        ]
        stat_rows = [
            (sid, region, bucket, *row[:5], tuple(row[5]))
            for sid, srec in ordered
            for (region, bucket), row in sorted(srec[5].items())
        ]
        if config.detection_inline:
            detection = (catalog, stat_rows, docs, doc_rows)
        else:
            detection = pack_detection(catalog, stat_rows, docs, doc_rows)
        return detection, observations

    def _finalize_ready(self, watermark: float) -> None:
        """Close correlation components no future representative can join."""
        clusters = self._correlator.finalize_ready(watermark, self.min_open_first())
        self._count_clusters(clusters)
        if self._retain and clusters:
            self.clusters.extend(clusters)

    def _count_clusters(self, clusters: list[AlertCluster]) -> None:
        """Fold finalised clusters into plane and per-region counters."""
        self.clusters_finalized += len(clusters)
        region_counts = self._region_counts
        for cluster in clusters:
            # Evidence requires equal regions, so one member names the
            # whole cluster's region.
            region_counts[cluster.alerts[0].region][3] += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def rebalance(self, n_shards: int) -> None:
        """Re-shard this plane onto an ``n_shards`` consistent-hash ring.

        Open R2 sessions are exported from the old shards and adopted by
        the shards that now own their strategies; each migrated strategy
        is re-pinned to its session's new home.  The plane's correlator
        and detector are untouched — they partition by region, not by
        shard — so accounting is exact across the transition.
        """
        sessions = []
        for processor in self.processors:
            sessions.extend(processor.export_sessions())
        config = self._config
        self._router = self._router.with_shards(n_shards)
        self._shard_of.clear()
        self.processors = [
            StreamProcessor(shard, config.blocker, config.aggregation_window)
            for shard in range(n_shards)
        ]
        shard_of = self._shard_of
        by_shard: dict[int, list] = {}
        for session in sorted(sessions, key=lambda s: (s.strategy_id, s.region)):
            shard = shard_of.get(session.strategy_id)
            if shard is None:
                shard = self._router.route(session.representative)
                shard_of[session.strategy_id] = shard
            by_shard.setdefault(shard, []).append(session)
        for shard, adopted in by_shard.items():
            self.processors[shard].adopt_sessions(adopted)

    def export_region(self, region: str) -> PlaneRegionState:
        """Detach one region's entire slice of this plane (scale-out).

        Open R2 sessions leave their shards, open R3 components leave
        the correlator, the R4 region state leaves the detector, and the
        region's lifetime counter slice (plus its retained artifacts,
        when artifacts are retained) is subtracted from this plane's
        totals — so after the export this plane accounts only for the
        regions it still owns, and the adopting plane continues the
        region's stream exactly where it left off.
        """
        sessions: list[OpenSession] = []
        for processor in self.processors:
            sessions.extend(processor.export_region(region))
        sessions.sort(key=lambda session: (session.strategy_id, session.region))
        components = self._correlator.export_region(region)
        storm = (
            self._detector.export_region(region)
            if self._detector is not None else None
        )
        counters = self._region_counts.pop(region, None) or _new_region_row()
        self.processed -= counters[0]
        self.blocked -= counters[1]
        self.aggregates_emitted -= counters[2]
        self.clusters_finalized -= counters[3]
        retained_aggregates: list[AggregatedAlert] = []
        retained_clusters: list[AlertCluster] = []
        if self._retain:
            retained_aggregates = [
                a for a in self.aggregates if a.region == region
            ]
            self.aggregates = [
                a for a in self.aggregates if a.region != region
            ]
            retained_clusters = [
                c for c in self.clusters if c.alerts[0].region == region
            ]
            self.clusters = [
                c for c in self.clusters if c.alerts[0].region != region
            ]
        return PlaneRegionState(
            region=region,
            counters=counters,
            sessions=sessions,
            components=components,
            storm=storm,
            retained_aggregates=retained_aggregates,
            retained_clusters=retained_clusters,
            rules=self._config.blocker.rules,
            shard_pins=dict(self._shard_of),
        )

    def adopt_region(self, state: PlaneRegionState) -> None:
        """Install a region's slice exported from another plane.

        Sessions land on the shards this plane's ring assigns their
        strategies (pinning them exactly as a first alert would have);
        components and R4 state are re-installed verbatim; the counter
        slice joins this plane's totals.  The carried rule snapshot is
        only *verified* against this plane's blocker — rule tables are
        synchronised across backends at flush barriers, so any rule the
        snapshot carries and the blocker lacks is repaired (added once),
        and nothing is ever double-applied.
        """
        region = state.region
        shard_of = self._shard_of
        n_shards = self.n_shards
        # Carried pins first (never overwriting): an existing pin may
        # anchor an open session of a region this plane already owns,
        # and sessions must stay co-located with their strategy's pin.
        for strategy, shard in state.shard_pins.items():
            if strategy not in shard_of and shard < n_shards:
                shard_of[strategy] = shard
        by_shard: dict[int, list[OpenSession]] = {}
        for session in state.sessions:
            shard = shard_of.get(session.strategy_id)
            if shard is None:
                shard = self._router.route(session.representative)
                shard_of[session.strategy_id] = shard
            by_shard.setdefault(shard, []).append(session)
        for shard, adopted in by_shard.items():
            self.processors[shard].adopt_sessions(adopted)
        self._correlator.adopt_region(region, state.components)
        if self._detector is not None and state.storm is not None:
            self._detector.adopt_region(state.storm)
        counters = state.counters
        row = self._region_counts[region]
        for slot in range(4):
            row[slot] += counters[slot]
        self.processed += counters[0]
        self.blocked += counters[1]
        self.aggregates_emitted += counters[2]
        self.clusters_finalized += counters[3]
        if self._retain:
            self.aggregates.extend(state.retained_aggregates)
            self.clusters.extend(state.retained_clusters)
        blocker = self._config.blocker
        for rule in state.rules:
            if not blocker.has_rule(rule):
                blocker.add(rule)

    def drain(self, watermark: float | None) -> PlaneDrainResult:
        """Flush all open state at end of stream and report final totals."""
        emitted_all: list[AggregatedAlert] = []
        for processor in self.processors:
            emitted_all.extend(processor.drain())
        correlator = self._correlator
        region_counts = self._region_counts
        for aggregate in emitted_all:
            correlator.add(aggregate.representative)
            region_counts[aggregate.region][2] += 1
        self.aggregates_emitted += len(emitted_all)
        if self._retain and emitted_all:
            self.aggregates.extend(emitted_all)
        clusters = correlator.drain()
        self._count_clusters(clusters)
        if self._retain and clusters:
            self.clusters.extend(clusters)
        if self._detector is not None and watermark is not None:
            self._detector.finish(watermark)
        observations = None
        if self._config.collect_observations:
            digest: dict[tuple[str, str], list] = {}
            _count_groups(digest, emitted_all)
            observations = _digest_rows(digest)
        return PlaneDrainResult(
            plane_id=self.plane_id,
            processed=self.processed,
            blocked=self.blocked,
            aggregates=self.aggregates_emitted,
            clusters=self.clusters_finalized,
            storm_episodes=self.storm_episodes,
            emerging_flags=self.emerging_flags,
            retained_aggregates=self.aggregates,
            retained_clusters=self.clusters,
            observations=observations,
        )
