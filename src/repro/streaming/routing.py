"""Two-level routing for the online alert gateway.

Level 1 — :class:`PlaneRouter` — partitions by **region**: the whole
mitigation chain is region-local (R2 sessions key on ``(strategy,
region)``, R3 evidence requires equal regions, R4 flood rates are per
``(hour, region)``), so a region is the natural unit of an execution
plane that can run R1-R4 end to end without coordination.  Regions are
assigned to planes sticky round-robin in first-seen order: deterministic
for a given stream, perfectly balanced for small region populations
(where a hash ring would leave planes empty), and never revisited — a
region's plane owns all of its state for the gateway's lifetime.

Level 2 — :class:`ShardRouter` — partitions a plane's keys by
``(service, title template)`` on a consistent-hash ring (each shard owns
``replicas`` virtual points): every alert of one strategy carries the
strategy's service and title, so all alerts a session-window
deduplicator must see land on the same shard, while hot services spread
their strategies across the plane's shards.  Growing a plane from N to
N+1 shards remaps only ~1/(N+1) of its key space, the property live
``rebalance`` relies on.  Hashing is ``blake2b``-based — Python's
builtin ``hash`` is salted per process and would break cross-run
determinism.
"""

from __future__ import annotations

import bisect
import re
from functools import lru_cache
from hashlib import blake2b
from typing import Iterable

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.common.validation import require_positive

__all__ = ["template_of", "shard_key", "PlaneRouter", "ShardRouter"]

_NUMERIC = re.compile(r"\d+")


def template_of(title: str) -> str:
    """Collapse a concrete alert title to its template.

    Numeric fragments (counts, thresholds, instance indices) become a
    ``#`` placeholder so "queue depth 1042 on node-3" and "queue depth 7
    on node-9" route identically.
    """
    return _NUMERIC.sub("#", title.strip().lower())


def shard_key(alert: Alert) -> str:
    """The routing key of one alert: ``service|title-template``."""
    return f"{alert.service}|{template_of(alert.title)}"


def _point(token: str) -> int:
    return int.from_bytes(blake2b(token.encode("utf-8"), digest_size=8).digest(), "big")


@lru_cache(maxsize=64)
def _build_ring(
    n_shards: int, replicas: int,
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """The sorted ring for one (shard count, replica count) shape.

    Rings are pure functions of their shape, so every plane's router —
    and every plane born during a live scale-out — shares one immutable
    instance instead of re-hashing ``n_shards * replicas`` points.
    """
    ring: list[tuple[int, int]] = []
    for shard in range(n_shards):
        for replica in range(replicas):
            ring.append((_point(f"shard-{shard}:{replica}"), shard))
    ring.sort()
    return (
        tuple(point for point, _ in ring),
        tuple(shard for _, shard in ring),
    )


class PlaneRouter:
    """Level-1 router: region → execution plane, sticky round-robin.

    The first distinct region observed goes to plane 0, the next to
    plane 1, and so on, wrapping around — an assignment is made exactly
    once and never moves.  For the same stream the mapping is therefore
    deterministic across runs, backends, and ingestion paths (they all
    observe regions in the same arrival order), which is what keeps
    plane-partitioned accounting reproducible.
    """

    def __init__(self, n_planes: int) -> None:
        require_positive(n_planes, "n_planes")
        self._n_planes = int(n_planes)
        self._plane_of: dict[str, int] = {}

    @property
    def n_planes(self) -> int:
        """Number of execution planes."""
        return self._n_planes

    @property
    def assignments(self) -> dict[str, int]:
        """Region → plane map so far (copy)."""
        return dict(self._plane_of)

    @property
    def plane_cache(self) -> dict[str, int]:
        """The *live* region → plane map, for hot ingest loops.

        Contract: read-only; on a miss callers must fall back to
        :meth:`plane_of`, which makes the assignment.  The dict object is
        stable for the router's lifetime, so it can be bound to a local
        once per batch.
        """
        return self._plane_of

    def assign_all(self, regions: "Iterable[str]") -> dict[str, int]:
        """Assign a whole region sequence up front; returns the live table.

        The ingress-lane fast path: sources that are partitioned by
        region before ingestion (``partition_by_region``) know their
        full region population, so the round-robin assignments can all
        be made in one call — in the given order, which must be
        first-seen order for parity with record-at-a-time routing — and
        the lanes then route against the returned table (the same live
        dict as :attr:`plane_cache`, same read-only contract) with one
        dict hit per event and no per-miss fallback.
        """
        plane_of = self.plane_of
        for region in regions:
            plane_of(region)
        return self._plane_of

    def regions_of(self, plane: int) -> tuple[str, ...]:
        """Regions assigned to ``plane``, in assignment order."""
        return tuple(
            region for region, owner in self._plane_of.items() if owner == plane
        )

    def plane_of(self, region: str) -> int:
        """The plane owning ``region`` (assigning it on first sight)."""
        plane = self._plane_of.get(region)
        if plane is None:
            plane = len(self._plane_of) % self._n_planes
            self._plane_of[region] = plane
        return plane

    def restore(self, assignments: "list[tuple[str, int]] | dict[str, int]") -> None:
        """Adopt a previously-captured region → plane map (checkpoint restore).

        ``assignments`` must be in **first-seen order** — round-robin
        continuation for regions first seen after the restore, and any
        later :meth:`rescale`, both derive a region's plane from its
        insertion index, so order is part of the state.  Only valid on a
        fresh router (no assignments made yet), and every plane id must
        fit the current plane count.
        """
        if self._plane_of:
            raise ValidationError(
                "cannot restore assignments onto a router that already "
                "routed regions; restore into a fresh gateway instead"
            )
        items = assignments.items() if isinstance(assignments, dict) else assignments
        restored: dict[str, int] = {}
        for region, plane in items:
            plane = int(plane)
            if not 0 <= plane < self._n_planes:
                raise ValidationError(
                    f"restored assignment {region!r} -> plane {plane} does "
                    f"not fit {self._n_planes} plane(s)"
                )
            restored[str(region)] = plane
        self._plane_of = restored

    def rescale(self, n_planes: int) -> dict[str, tuple[int, int]]:
        """Regrow the ring to ``n_planes``; returns the migration plan.

        Every known region is reassigned to ``first_seen_index %
        n_planes`` — exactly the plane a fresh ``PlaneRouter(n_planes)``
        would have picked for the same first-seen sequence, which is the
        property live scale-out's *invisibility* rests on: after the
        final scale event, the region → plane map is indistinguishable
        from a gateway built with that plane count from the start.
        Returns ``{region: (old_plane, new_plane)}`` for the regions
        whose owner changed (``moved_regions``), in first-seen order;
        regions first seen later keep extending the same round-robin.
        """
        require_positive(n_planes, "n_planes")
        n = int(n_planes)
        moved: dict[str, tuple[int, int]] = {}
        for index, region in enumerate(self._plane_of):
            new_plane = index % n
            old_plane = self._plane_of[region]
            if old_plane != new_plane:
                moved[region] = (old_plane, new_plane)
                self._plane_of[region] = new_plane
        self._n_planes = n
        return moved


class ShardRouter:
    """Consistent-hash ring mapping routing keys to shard ids."""

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        require_positive(n_shards, "n_shards")
        require_positive(replicas, "replicas")
        self._n_shards = int(n_shards)
        self._replicas = int(replicas)
        self._points, self._shards = _build_ring(self._n_shards, self._replicas)

    @property
    def n_shards(self) -> int:
        """Number of shards on the ring."""
        return self._n_shards

    @property
    def replicas(self) -> int:
        """Virtual points per shard."""
        return self._replicas

    def with_shards(self, n_shards: int) -> "ShardRouter":
        """A ring over ``n_shards`` with the same replica count.

        This is the rebalancing constructor: consistent hashing
        guarantees only ~|N - M| / max(N, M) of the key space moves
        between the old ring and the new one.
        """
        return ShardRouter(n_shards, replicas=self._replicas)

    def moved_fraction(self, other: "ShardRouter", keys: list[str]) -> float:
        """Fraction of ``keys`` that map to a different shard on ``other``."""
        if not keys:
            return 0.0
        moved = sum(
            1 for key in keys if self.route_key(key) != other.route_key(key)
        )
        return moved / len(keys)

    def route_key(self, key: str) -> int:
        """The shard owning ``key`` (first ring point at or after its hash)."""
        index = bisect.bisect_left(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._shards[index]

    def route(self, alert: Alert) -> int:
        """The shard owning ``alert``."""
        return self.route_key(shard_key(alert))

    def distribution(self, keys: list[str]) -> dict[int, int]:
        """Key counts per shard — load-balance introspection."""
        counts: dict[int, int] = {shard: 0 for shard in range(self._n_shards)}
        for key in keys:
            counts[self.route_key(key)] += 1
        return counts
