"""Shard routing for the online alert gateway.

Alerts are partitioned by ``(service, title template)``: every alert of
one strategy carries the strategy's service and title, so all alerts a
session-window deduplicator must see land on the same shard, while hot
services spread their strategies across the fleet.

Routing uses a consistent-hash ring (each shard owns ``replicas``
virtual points): growing the fleet from N to N+1 shards remaps only
~1/(N+1) of the key space, the property every later scale-out PR
(multi-process shards, shard rebalancing) relies on.  Hashing is
``blake2b``-based — Python's builtin ``hash`` is salted per process and
would break cross-run determinism.
"""

from __future__ import annotations

import bisect
import re
from hashlib import blake2b

from repro.alerting.alert import Alert
from repro.common.validation import require_positive

__all__ = ["template_of", "shard_key", "ShardRouter"]

_NUMERIC = re.compile(r"\d+")


def template_of(title: str) -> str:
    """Collapse a concrete alert title to its template.

    Numeric fragments (counts, thresholds, instance indices) become a
    ``#`` placeholder so "queue depth 1042 on node-3" and "queue depth 7
    on node-9" route identically.
    """
    return _NUMERIC.sub("#", title.strip().lower())


def shard_key(alert: Alert) -> str:
    """The routing key of one alert: ``service|title-template``."""
    return f"{alert.service}|{template_of(alert.title)}"


def _point(token: str) -> int:
    return int.from_bytes(blake2b(token.encode("utf-8"), digest_size=8).digest(), "big")


class ShardRouter:
    """Consistent-hash ring mapping routing keys to shard ids."""

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        require_positive(n_shards, "n_shards")
        require_positive(replicas, "replicas")
        self._n_shards = int(n_shards)
        self._replicas = int(replicas)
        ring: list[tuple[int, int]] = []
        for shard in range(self._n_shards):
            for replica in range(self._replicas):
                ring.append((_point(f"shard-{shard}:{replica}"), shard))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._shards = [shard for _, shard in ring]

    @property
    def n_shards(self) -> int:
        """Number of shards on the ring."""
        return self._n_shards

    @property
    def replicas(self) -> int:
        """Virtual points per shard."""
        return self._replicas

    def with_shards(self, n_shards: int) -> "ShardRouter":
        """A ring over ``n_shards`` with the same replica count.

        This is the rebalancing constructor: consistent hashing
        guarantees only ~|N - M| / max(N, M) of the key space moves
        between the old ring and the new one.
        """
        return ShardRouter(n_shards, replicas=self._replicas)

    def moved_fraction(self, other: "ShardRouter", keys: list[str]) -> float:
        """Fraction of ``keys`` that map to a different shard on ``other``."""
        if not keys:
            return 0.0
        moved = sum(
            1 for key in keys if self.route_key(key) != other.route_key(key)
        )
        return moved / len(keys)

    def route_key(self, key: str) -> int:
        """The shard owning ``key`` (first ring point at or after its hash)."""
        index = bisect.bisect_left(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._shards[index]

    def route(self, alert: Alert) -> int:
        """The shard owning ``alert``."""
        return self.route_key(shard_key(alert))

    def distribution(self, keys: list[str]) -> dict[int, int]:
        """Key counts per shard — load-balance introspection."""
        counts: dict[int, int] = {shard: 0 for shard in range(self._n_shards)}
        for key in keys:
            counts[self.route_key(key)] += 1
        return counts
