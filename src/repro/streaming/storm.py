"""Online storm and emerging-alert detection (streaming R4).

The batch mining pipeline finds storms by bucketing a finished trace per
(hour, region) and flagging buckets above the flood threshold; R4's
batch form replays the whole stream through an online LDA.  The
streaming detector keeps the same two signals live with O(1) state:

* **storms** — one :class:`~repro.streaming.windows.RingCounter` per
  region tracks the rolling hourly volume; crossing the flood threshold
  opens a storm episode, falling below half of it closes the episode
  (hysteresis, so one storm is not reported once per event);
* **emerging alerts** — a ``(strategy, region)`` key alerting for the
  first time while its region's volume is *rising* toward a storm is
  exactly the "few alerts corresponding to a root cause appear first"
  pattern §III-C [R4] describes.  Keys are remembered with a bounded
  recency map, so a strategy quiet for longer than ``novelty_horizon``
  counts as new again.
"""

from __future__ import annotations

from collections import deque

from dataclasses import dataclass

from repro.alerting.alert import Alert
from repro.common.timeutil import HOUR
from repro.common.validation import require_positive
from repro.streaming.windows import RingCounter

__all__ = [
    "StormEpisode",
    "EmergingSignal",
    "RegionStormState",
    "OnlineStormDetector",
]


@dataclass(slots=True)
class StormEpisode:
    """One contiguous flood of alerts in a region."""

    region: str
    started_at: float
    peak_rate: float
    ended_at: float | None = None

    @property
    def active(self) -> bool:
        """Whether the episode is still open."""
        return self.ended_at is None


@dataclass(frozen=True, slots=True)
class EmergingSignal:
    """A first-seen strategy firing while its region's volume ramps up."""

    alert: Alert
    region_rate: float


@dataclass(slots=True)
class RegionStormState:
    """One region's complete R4 state, detached for plane migration.

    Everything the detector keys by this region (or by ``(strategy,
    region)``): the ring-counter rate window, the open storm episode if
    one is in flight, the novelty recency map, the region's lifetime
    episode/emerging counts, and its ingested-event count (the novelty
    warmup position a standalone detector derives ``in_warmup`` from).
    """

    region: str
    bucket_seconds: float
    #: Ring-counter state (``None`` when the region never built one).
    counts: list[int] | None
    total: int
    head: int | None
    #: Open episode, if the region is mid-flood at export time.
    episode_started_at: float | None
    episode_peak_rate: float
    #: strategy → last event time in this region (novelty state).
    last_seen: dict[str, float]
    episode_count: int
    emerging_count: int
    ingested: int


#: Default number of leading gateway events exempt from novelty flags.
DEFAULT_WARMUP_ALERTS = 50


class OnlineStormDetector:
    """Streaming detector for floods and their precursors.

    All detector state is keyed by region (rate counters, episodes) or by
    ``(strategy, region)`` (novelty), so the detector partitions cleanly
    along region boundaries: one instance per execution plane is exact as
    long as every alert of a region reaches the same instance.  Per-*shard*
    instances would still be wrong — shards split within a region and
    would dilute its rate against the flood threshold.  The one global
    coupling is the warmup count, which callers that partition the stream
    thread through as an explicit ``in_warmup`` prefix (see
    :meth:`ingest_batch`).
    """

    def __init__(
        self,
        flood_hourly_threshold: int = 100,
        bucket_seconds: float = 60.0,
        novelty_horizon: float = 24 * HOUR,
        warmup_alerts: int = DEFAULT_WARMUP_ALERTS,
    ) -> None:
        require_positive(flood_hourly_threshold, "flood_hourly_threshold")
        require_positive(novelty_horizon, "novelty_horizon")
        require_positive(warmup_alerts, "warmup_alerts")
        self._threshold = int(flood_hourly_threshold)
        self._bucket_seconds = float(bucket_seconds)
        self._horizon = float(novelty_horizon)
        self._warmup = int(warmup_alerts)
        self._counters: dict[str, RingCounter] = {}
        self._active: dict[str, StormEpisode] = {}
        self._last_seen: dict[tuple[str, str], float] = {}
        self._last_sweep_at: float | None = None
        self._ingested = 0
        # Per-region slices of the lifetime counters, so a region's
        # whole detection history can migrate with it (plane scale-out).
        self._episodes_by_region: dict[str, int] = {}
        self._emerging_by_region: dict[str, int] = {}
        self._ingested_by_region: dict[str, int] = {}
        # Exact lifetime counters plus bounded recent-detection windows:
        # on an unbounded stream, full detection lists would grow forever.
        self.episode_count = 0
        self.emerging_count = 0
        self.episodes: deque[StormEpisode] = deque(maxlen=256)
        self.emerging: deque[EmergingSignal] = deque(maxlen=1024)

    @property
    def active_storms(self) -> int:
        """Regions currently in flood."""
        return len(self._active)

    def ingest(self, alert: Alert) -> None:
        """Advance the counters with one unblocked alert.

        Delegates to :meth:`ingest_batch` so the episode and novelty
        logic exists exactly once — the batch path is event-for-event
        equivalent, including the warmup derivation.
        """
        self.ingest_batch([alert])

    def ingest_batch(self, alerts: list[Alert], in_warmup: int | None = None) -> None:
        """Advance the counters with one in-order micro-batch.

        Event-for-event equivalent to :meth:`ingest`, but run-compressed:
        consecutive same-region events share one counter/episode lookup
        and one :meth:`RingCounter.add_run` bucket pass — on a plane that
        owns whole regions, a flood is one long run.

        ``in_warmup`` is the number of leading events that fall inside
        the *stream-global* warmup.  ``None`` (standalone use) derives it
        from this instance's own ingest count; a plane-partitioned
        gateway passes the prefix computed from its global input counter,
        which is what keeps per-plane detectors bitwise-equal to one
        shared instance.  The recency sweep runs once per batch instead
        of per event — identical behaviour below the sweep's size floor.
        """
        n = len(alerts)
        if n == 0:
            return
        if in_warmup is None:
            in_warmup = min(max(self._warmup - self._ingested, 0), n)
        self._ingested += n
        threshold = self._threshold
        half_threshold = threshold / 2
        quarter_threshold = threshold / 4
        horizon = self._horizon
        counters = self._counters
        active = self._active
        last_seen = self._last_seen
        times = [alert.occurred_at for alert in alerts]
        rates: list[float] = []
        ingested_by_region = self._ingested_by_region
        episodes_by_region = self._episodes_by_region
        emerging_by_region = self._emerging_by_region
        index = 0
        while index < n:
            region = alerts[index].region
            stop = index + 1
            while stop < n and alerts[stop].region == region:
                stop += 1
            ingested_by_region[region] = (
                ingested_by_region.get(region, 0) + stop - index
            )
            counter = counters.get(region)
            if counter is None:
                buckets = max(int(HOUR / self._bucket_seconds), 1)
                counter = RingCounter(self._bucket_seconds, buckets)
                counters[region] = counter
            del rates[:]
            counter.add_run(times, index, stop, rates)
            episode = active.get(region)
            for position in range(index, stop):
                alert = alerts[position]
                rate = rates[position - index]
                occurred_at = times[position]
                if episode is None:
                    if rate >= threshold:
                        episode = StormEpisode(
                            region=region, started_at=occurred_at, peak_rate=rate,
                        )
                        active[region] = episode
                        self.episode_count += 1
                        episodes_by_region[region] = (
                            episodes_by_region.get(region, 0) + 1
                        )
                        self.episodes.append(episode)
                else:
                    if rate > episode.peak_rate:
                        episode.peak_rate = rate
                    if rate < half_threshold:
                        episode.ended_at = occurred_at
                        del active[region]
                        episode = None
                key = (alert.strategy_id, region)
                last = last_seen.get(key)
                last_seen[key] = occurred_at
                if position < in_warmup:
                    continue
                if (last is None or occurred_at - last > horizon) and (
                    quarter_threshold <= rate < threshold
                ):
                    self.emerging_count += 1
                    emerging_by_region[region] = (
                        emerging_by_region.get(region, 0) + 1
                    )
                    self.emerging.append(EmergingSignal(alert=alert, region_rate=rate))
            index = stop
        if n > in_warmup:
            self._sweep(times[-1])

    def finish(self, at: float) -> None:
        """Close any episodes still open at end of stream."""
        for episode in self._active.values():
            episode.ended_at = at
        self._active.clear()

    # ------------------------------------------------------------------
    # plane migration
    # ------------------------------------------------------------------
    def export_region(self, region: str) -> RegionStormState:
        """Detach one region's whole R4 state (plane migration).

        All of it is removed from this instance: the rate window, the
        open episode, the novelty recency entries, and the region's
        slice of the lifetime episode/emerging/ingested counts — so the
        exporting detector's counts reflect only the regions it still
        owns, and :meth:`adopt_region` restores them on the new owner
        without loss or double counting.  The bounded ``episodes``/
        ``emerging`` recency deques are observability extras interleaved
        across regions and do not migrate; the exact counters do.
        """
        counter = self._counters.pop(region, None)
        if counter is not None:
            bucket_seconds, counts, total, head = counter.export_state()
        else:
            bucket_seconds = self._bucket_seconds
            counts, total, head = None, 0, None
        episode = self._active.pop(region, None)
        last_seen: dict[str, float] = {}
        for key in [k for k in self._last_seen if k[1] == region]:
            last_seen[key[0]] = self._last_seen.pop(key)
        episode_count = self._episodes_by_region.pop(region, 0)
        emerging_count = self._emerging_by_region.pop(region, 0)
        ingested = self._ingested_by_region.pop(region, 0)
        self.episode_count -= episode_count
        self.emerging_count -= emerging_count
        self._ingested -= ingested
        return RegionStormState(
            region=region,
            bucket_seconds=bucket_seconds,
            counts=counts,
            total=total,
            head=head,
            episode_started_at=episode.started_at if episode is not None else None,
            episode_peak_rate=episode.peak_rate if episode is not None else 0.0,
            last_seen=last_seen,
            episode_count=episode_count,
            emerging_count=emerging_count,
            ingested=ingested,
        )

    def adopt_region(self, state: RegionStormState) -> None:
        """Install a region's R4 state exported from another detector."""
        region = state.region
        if region in self._counters or region in self._active:
            raise ValueError(f"region {region!r} already owned by this detector")
        if state.counts is not None:
            self._counters[region] = RingCounter.restore(
                state.bucket_seconds, state.counts, state.total, state.head,
            )
        if state.episode_started_at is not None:
            # The episode continues on the new owner; it was already
            # counted (and its count migrated), so only the live object
            # is rebuilt — not re-counted, not re-appended to the deque.
            self._active[region] = StormEpisode(
                region=region,
                started_at=state.episode_started_at,
                peak_rate=state.episode_peak_rate,
            )
        for strategy, seen_at in state.last_seen.items():
            self._last_seen[(strategy, region)] = seen_at
        if state.episode_count:
            self._episodes_by_region[region] = state.episode_count
            self.episode_count += state.episode_count
        if state.emerging_count:
            self._emerging_by_region[region] = state.emerging_count
            self.emerging_count += state.emerging_count
        if state.ingested:
            self._ingested_by_region[region] = state.ingested
            self._ingested += state.ingested

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sweep(self, now: float) -> None:
        """Bound the recency map: forget keys quiet past the horizon.

        Time-gated: a sweep can only evict keys older than the horizon,
        so once one ran, rerunning before a quarter-horizon has elapsed
        cannot free anything new — without the gate, a key population
        that stays above the size floor would make every ingest O(keys).
        """
        if len(self._last_seen) < 4096:
            return
        if self._last_sweep_at is not None and now - self._last_sweep_at < self._horizon / 4:
            return
        self._last_sweep_at = now
        self._last_seen = {
            key: seen
            for key, seen in self._last_seen.items()
            if now - seen <= self._horizon
        }
