"""Online storm and emerging-alert detection (streaming R4).

The batch mining pipeline finds storms by bucketing a finished trace per
(hour, region) and flagging buckets above the flood threshold; R4's
batch form replays the whole stream through an online LDA.  The
streaming detector keeps the same two signals live with O(1) state:

* **storms** — one :class:`~repro.streaming.windows.RingCounter` per
  region tracks the rolling hourly volume; crossing the flood threshold
  opens a storm episode, falling below half of it closes the episode
  (hysteresis, so one storm is not reported once per event);
* **emerging alerts** — a ``(strategy, region)`` key alerting for the
  first time while its region's volume is *rising* toward a storm is
  exactly the "few alerts corresponding to a root cause appear first"
  pattern §III-C [R4] describes.  Keys are remembered with a bounded
  recency map, so a strategy quiet for longer than ``novelty_horizon``
  counts as new again.
"""

from __future__ import annotations

from collections import deque

from dataclasses import dataclass

from repro.alerting.alert import Alert
from repro.common.timeutil import HOUR
from repro.common.validation import require_positive
from repro.streaming.windows import RingCounter

__all__ = ["StormEpisode", "EmergingSignal", "OnlineStormDetector"]


@dataclass(slots=True)
class StormEpisode:
    """One contiguous flood of alerts in a region."""

    region: str
    started_at: float
    peak_rate: float
    ended_at: float | None = None

    @property
    def active(self) -> bool:
        """Whether the episode is still open."""
        return self.ended_at is None


@dataclass(frozen=True, slots=True)
class EmergingSignal:
    """A first-seen strategy firing while its region's volume ramps up."""

    alert: Alert
    region_rate: float


class OnlineStormDetector:
    """Streaming detector for floods and their precursors.

    Share ONE instance across all shards of a gateway (ingestion is
    single-threaded): per-shard instances would dilute each region's
    rate against the flood threshold and double-count episodes that
    span shards.
    """

    def __init__(
        self,
        flood_hourly_threshold: int = 100,
        bucket_seconds: float = 60.0,
        novelty_horizon: float = 24 * HOUR,
        warmup_alerts: int = 50,
    ) -> None:
        require_positive(flood_hourly_threshold, "flood_hourly_threshold")
        require_positive(novelty_horizon, "novelty_horizon")
        require_positive(warmup_alerts, "warmup_alerts")
        self._threshold = int(flood_hourly_threshold)
        self._bucket_seconds = float(bucket_seconds)
        self._horizon = float(novelty_horizon)
        self._warmup = int(warmup_alerts)
        self._counters: dict[str, RingCounter] = {}
        self._active: dict[str, StormEpisode] = {}
        self._last_seen: dict[tuple[str, str], float] = {}
        self._last_sweep_at: float | None = None
        self._ingested = 0
        # Exact lifetime counters plus bounded recent-detection windows:
        # on an unbounded stream, full detection lists would grow forever.
        self.episode_count = 0
        self.emerging_count = 0
        self.episodes: deque[StormEpisode] = deque(maxlen=256)
        self.emerging: deque[EmergingSignal] = deque(maxlen=1024)

    @property
    def active_storms(self) -> int:
        """Regions currently in flood."""
        return len(self._active)

    def ingest(self, alert: Alert) -> None:
        """Advance the counters with one unblocked alert."""
        self._ingested += 1
        region = alert.region
        counter = self._counters.get(region)
        if counter is None:
            buckets = max(int(HOUR / self._bucket_seconds), 1)
            counter = RingCounter(self._bucket_seconds, buckets)
            self._counters[region] = counter
        rate = counter.add_and_rate(alert.occurred_at)

        episode = self._active.get(region)
        if episode is None:
            if rate >= self._threshold:
                episode = StormEpisode(
                    region=region, started_at=alert.occurred_at, peak_rate=rate,
                )
                self._active[region] = episode
                self.episode_count += 1
                self.episodes.append(episode)
        else:
            episode.peak_rate = max(episode.peak_rate, rate)
            if rate < self._threshold / 2:
                episode.ended_at = alert.occurred_at
                del self._active[region]

        self._observe_novelty(alert, rate)

    def finish(self, at: float) -> None:
        """Close any episodes still open at end of stream."""
        for episode in self._active.values():
            episode.ended_at = at
        self._active.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _observe_novelty(self, alert: Alert, rate: float) -> None:
        key = (alert.strategy_id, alert.region)
        last = self._last_seen.get(key)
        self._last_seen[key] = alert.occurred_at
        if self._ingested <= self._warmup:
            return
        is_new = last is None or alert.occurred_at - last > self._horizon
        # "A few alerts ... appear first": novel keys while volume climbs
        # toward flood level but before the flood is declared.
        if is_new and self._threshold / 4 <= rate < self._threshold:
            self.emerging_count += 1
            self.emerging.append(EmergingSignal(alert=alert, region_rate=rate))
        self._sweep(alert.occurred_at)

    def _sweep(self, now: float) -> None:
        """Bound the recency map: forget keys quiet past the horizon.

        Time-gated: a sweep can only evict keys older than the horizon,
        so once one ran, rerunning before a quarter-horizon has elapsed
        cannot free anything new — without the gate, a key population
        that stays above the size floor would make every ingest O(keys).
        """
        if len(self._last_seen) < 4096:
            return
        if self._last_sweep_at is not None and now - self._last_sweep_at < self._horizon / 4:
            return
        self._last_sweep_at = now
        self._last_seen = {
            key: seen
            for key, seen in self._last_seen.items()
            if now - seen <= self._horizon
        }
