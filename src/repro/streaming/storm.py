"""Online storm and emerging-alert detection (streaming R4).

The batch mining pipeline finds storms by bucketing a finished trace per
(hour, region) and flagging buckets above the flood threshold; R4's
batch form replays the whole stream through an online LDA.  The
streaming detector keeps the same two signals live with O(1) state:

* **storms** — one :class:`~repro.streaming.windows.RingCounter` per
  region tracks the rolling hourly volume; crossing the flood threshold
  opens a storm episode, falling below half of it closes the episode
  (hysteresis, so one storm is not reported once per event);
* **emerging alerts** — a ``(strategy, region)`` key alerting for the
  first time while its region's volume is *rising* toward a storm is
  exactly the "few alerts corresponding to a root cause appear first"
  pattern §III-C [R4] describes.  Keys are remembered with a bounded
  recency map, so a strategy quiet for longer than ``novelty_horizon``
  counts as new again.
"""

from __future__ import annotations

from collections import deque

from dataclasses import dataclass

from repro.alerting.alert import Alert
from repro.common.timeutil import HOUR
from repro.common.validation import require_positive
from repro.streaming.windows import RingCounter

__all__ = ["StormEpisode", "EmergingSignal", "OnlineStormDetector"]


@dataclass(slots=True)
class StormEpisode:
    """One contiguous flood of alerts in a region."""

    region: str
    started_at: float
    peak_rate: float
    ended_at: float | None = None

    @property
    def active(self) -> bool:
        """Whether the episode is still open."""
        return self.ended_at is None


@dataclass(frozen=True, slots=True)
class EmergingSignal:
    """A first-seen strategy firing while its region's volume ramps up."""

    alert: Alert
    region_rate: float


#: Default number of leading gateway events exempt from novelty flags.
DEFAULT_WARMUP_ALERTS = 50


class OnlineStormDetector:
    """Streaming detector for floods and their precursors.

    All detector state is keyed by region (rate counters, episodes) or by
    ``(strategy, region)`` (novelty), so the detector partitions cleanly
    along region boundaries: one instance per execution plane is exact as
    long as every alert of a region reaches the same instance.  Per-*shard*
    instances would still be wrong — shards split within a region and
    would dilute its rate against the flood threshold.  The one global
    coupling is the warmup count, which callers that partition the stream
    thread through as an explicit ``in_warmup`` prefix (see
    :meth:`ingest_batch`).
    """

    def __init__(
        self,
        flood_hourly_threshold: int = 100,
        bucket_seconds: float = 60.0,
        novelty_horizon: float = 24 * HOUR,
        warmup_alerts: int = DEFAULT_WARMUP_ALERTS,
    ) -> None:
        require_positive(flood_hourly_threshold, "flood_hourly_threshold")
        require_positive(novelty_horizon, "novelty_horizon")
        require_positive(warmup_alerts, "warmup_alerts")
        self._threshold = int(flood_hourly_threshold)
        self._bucket_seconds = float(bucket_seconds)
        self._horizon = float(novelty_horizon)
        self._warmup = int(warmup_alerts)
        self._counters: dict[str, RingCounter] = {}
        self._active: dict[str, StormEpisode] = {}
        self._last_seen: dict[tuple[str, str], float] = {}
        self._last_sweep_at: float | None = None
        self._ingested = 0
        # Exact lifetime counters plus bounded recent-detection windows:
        # on an unbounded stream, full detection lists would grow forever.
        self.episode_count = 0
        self.emerging_count = 0
        self.episodes: deque[StormEpisode] = deque(maxlen=256)
        self.emerging: deque[EmergingSignal] = deque(maxlen=1024)

    @property
    def active_storms(self) -> int:
        """Regions currently in flood."""
        return len(self._active)

    def ingest(self, alert: Alert) -> None:
        """Advance the counters with one unblocked alert.

        Delegates to :meth:`ingest_batch` so the episode and novelty
        logic exists exactly once — the batch path is event-for-event
        equivalent, including the warmup derivation.
        """
        self.ingest_batch([alert])

    def ingest_batch(self, alerts: list[Alert], in_warmup: int | None = None) -> None:
        """Advance the counters with one in-order micro-batch.

        Event-for-event equivalent to :meth:`ingest`, but run-compressed:
        consecutive same-region events share one counter/episode lookup
        and one :meth:`RingCounter.add_run` bucket pass — on a plane that
        owns whole regions, a flood is one long run.

        ``in_warmup`` is the number of leading events that fall inside
        the *stream-global* warmup.  ``None`` (standalone use) derives it
        from this instance's own ingest count; a plane-partitioned
        gateway passes the prefix computed from its global input counter,
        which is what keeps per-plane detectors bitwise-equal to one
        shared instance.  The recency sweep runs once per batch instead
        of per event — identical behaviour below the sweep's size floor.
        """
        n = len(alerts)
        if n == 0:
            return
        if in_warmup is None:
            in_warmup = min(max(self._warmup - self._ingested, 0), n)
        self._ingested += n
        threshold = self._threshold
        half_threshold = threshold / 2
        quarter_threshold = threshold / 4
        horizon = self._horizon
        counters = self._counters
        active = self._active
        last_seen = self._last_seen
        times = [alert.occurred_at for alert in alerts]
        rates: list[float] = []
        index = 0
        while index < n:
            region = alerts[index].region
            stop = index + 1
            while stop < n and alerts[stop].region == region:
                stop += 1
            counter = counters.get(region)
            if counter is None:
                buckets = max(int(HOUR / self._bucket_seconds), 1)
                counter = RingCounter(self._bucket_seconds, buckets)
                counters[region] = counter
            del rates[:]
            counter.add_run(times, index, stop, rates)
            episode = active.get(region)
            for position in range(index, stop):
                alert = alerts[position]
                rate = rates[position - index]
                occurred_at = times[position]
                if episode is None:
                    if rate >= threshold:
                        episode = StormEpisode(
                            region=region, started_at=occurred_at, peak_rate=rate,
                        )
                        active[region] = episode
                        self.episode_count += 1
                        self.episodes.append(episode)
                else:
                    if rate > episode.peak_rate:
                        episode.peak_rate = rate
                    if rate < half_threshold:
                        episode.ended_at = occurred_at
                        del active[region]
                        episode = None
                key = (alert.strategy_id, region)
                last = last_seen.get(key)
                last_seen[key] = occurred_at
                if position < in_warmup:
                    continue
                if (last is None or occurred_at - last > horizon) and (
                    quarter_threshold <= rate < threshold
                ):
                    self.emerging_count += 1
                    self.emerging.append(EmergingSignal(alert=alert, region_rate=rate))
            index = stop
        if n > in_warmup:
            self._sweep(times[-1])

    def finish(self, at: float) -> None:
        """Close any episodes still open at end of stream."""
        for episode in self._active.values():
            episode.ended_at = at
        self._active.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sweep(self, now: float) -> None:
        """Bound the recency map: forget keys quiet past the horizon.

        Time-gated: a sweep can only evict keys older than the horizon,
        so once one ran, rerunning before a quarter-horizon has elapsed
        cannot free anything new — without the gate, a key population
        that stays above the size floor would make every ingest O(keys).
        """
        if len(self._last_seen) < 4096:
            return
        if self._last_sweep_at is not None and now - self._last_sweep_at < self._horizon / 4:
            return
        self._last_sweep_at = now
        self._last_seen = {
            key: seen
            for key, seen in self._last_seen.items()
            if now - seen <= self._horizon
        }
