"""Shared-memory SPSC rings: the zero-copy ingress-lane transport.

PR 7's ingress lanes moved wire-encode off the caller thread, but the
encoded batch still crossed a ``multiprocessing.Pipe``: pickled on the
lane thread, copied through the kernel, re-materialised in the worker —
at least three full copies of every payload byte before
:func:`~repro.streaming.wire.unpack_alerts` even starts.  This module
removes those copies.  Each (lane, worker) pair shares one
:class:`multiprocessing.shared_memory.SharedMemory` segment laid out as
a fixed-slot ring:

* a 32-byte control header — magic, slot geometry, and the ``head``
  (producer) / ``tail`` (consumer) sequence cursors;
* ``slot_count`` slots of ``16 + slot_size`` bytes each.  Batch ``seq``
  lives in slot ``seq % slot_count`` (wraparound is just the modulo);
  the 16-byte slot header carries ``(seq u64, length u32, crc u32)`` so
  the consumer can detect a torn or stale slot before trusting a byte
  (the CRC covers the payload's guard windows — full payload when
  small — at a cost that stays far below the copy it protects).

The lane thread writes :class:`~repro.streaming.wire.AlertBatchBuilder`
output *in place* into the next free slot (:meth:`SpscRing.try_write`)
and sends only a tiny control message down the pipe; the worker maps
the slot as a :class:`memoryview` (:meth:`SpscRing.peek`) and decodes
straight out of shared memory — zero payload copies on either side of
the hand-off.  When a batch exceeds ``slot_size``, or every slot is
still unconsumed, ``try_write`` returns ``None`` and the caller spills
to the classic pipe path (slow, but always correct).

Synchronisation contract (strict SPSC): exactly one producer advances
``head`` and one consumer advances ``tail``.  The ingress protocol is
synchronous — the lane sends a control message after writing and waits
for the worker's counter reply before writing again — so the pipe
round-trip is the memory barrier; the in-slot CRC exists to make any
violation of that contract loud, not silent.

The creating side owns the segment's lifetime (``close`` + ``unlink``);
attachers only ever ``close`` their mapping.  Workers share the
creator's ``multiprocessing`` resource tracker (see :meth:`SpscRing.
attach`), so the creator's single ``unlink`` retires each name exactly
once.
"""

from __future__ import annotations

import struct
import zlib
from multiprocessing import shared_memory
from typing import Sequence

from repro.common.errors import ValidationError

__all__ = ["RingError", "SpscRing", "DEFAULT_SLOT_SIZE", "DEFAULT_SLOT_COUNT"]

#: Default payload capacity per slot.  Sized for the default pooled
#: flush (512 alerts at ~100-200 encoded bytes each) with generous
#: headroom; oversized batches spill to the pipe rather than fail.
DEFAULT_SLOT_SIZE = 1 << 18
#: Default slots per ring.  The synchronous lane protocol keeps at most
#: one batch in flight, so depth buys wraparound coverage and future
#: pipelining, not throughput.
DEFAULT_SLOT_COUNT = 4

_MAGIC = b"RRG1"
#: magic, slot_size, slot_count, pad, head cursor, tail cursor.
_CTRL = struct.Struct("<4sII4xQQ")
_HEAD_OFFSET = 16
_TAIL_OFFSET = 24
_CURSOR = struct.Struct("<Q")
#: Per-slot header: seq, payload length, CRC32 of the payload's guard
#: windows (see :data:`_CRC_GUARD`).
_SLOT = struct.Struct("<QII")
#: Bytes of payload covered by the slot CRC at each end.  Payloads up
#: to twice this are CRC'd in full; larger ones CRC the first and last
#: window.  Full-payload CRC would cost two extra passes over every
#: byte (producer + consumer) — more than the single copy the ring
#: saves — and the commit order (payload, then header, then ``head``)
#: already keeps uncommitted payloads invisible, so the CRC is
#: defense-in-depth: any torn or stale slot reuse changes the framing
#: at the slot's ends, which the guard windows always cover.
_CRC_GUARD = 1024


class RingError(ValidationError):
    """A ring invariant was violated (torn slot, bad magic, stale seq)."""


class SpscRing:
    """One fixed-slot SPSC ring over a shared-memory segment.

    Build with :meth:`create` (producer side, owns the segment) or
    :meth:`attach` (consumer side, geometry read from the header).  The
    object is not thread-safe; the SPSC contract is the caller's.
    """

    __slots__ = ("_shm", "_buf", "_owner", "slot_size", "slot_count")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slot_size: int,
        slot_count: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._buf = shm.buf
        self._owner = owner
        self.slot_size = slot_size
        self.slot_count = slot_count

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        slot_size: int = DEFAULT_SLOT_SIZE,
        slot_count: int = DEFAULT_SLOT_COUNT,
    ) -> "SpscRing":
        """Allocate a fresh ring segment (auto-named, caller owns it)."""
        if slot_size <= 0:
            raise ValidationError(f"slot_size must be positive, got {slot_size}")
        if slot_count <= 0:
            raise ValidationError(f"slot_count must be positive, got {slot_count}")
        total = _CTRL.size + slot_count * (_SLOT.size + slot_size)
        shm = shared_memory.SharedMemory(create=True, size=total)
        _CTRL.pack_into(shm.buf, 0, _MAGIC, slot_size, slot_count, 0, 0)
        return cls(shm, slot_size, slot_count, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SpscRing":
        """Map an existing ring by name; geometry comes from its header.

        Python 3.11's ``SharedMemory`` registers with the
        ``multiprocessing`` resource tracker on *attach*, not just
        create — and which tracker that is depends on fork timing (a
        worker forked before the parent's tracker started lazily spawns
        its own).  A second tracker tracking the same segment would
        unlink it at worker exit (or warn about a "leak" it does not
        own), so the attach is done with registration suppressed: only
        the creator's tracker ever knows the name, and the creator's
        single :meth:`unlink` retires it exactly once.  (3.13's
        ``track=False`` does this officially.)
        """
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        magic, slot_size, slot_count, _, _ = _CTRL.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise RingError(
                f"shared-memory segment {name!r} has magic {magic!r}, "
                f"expected {_MAGIC!r} — not an ingress ring"
            )
        return cls(shm, slot_size, slot_count, owner=False)

    @property
    def name(self) -> str:
        """The segment name attachers pass to :meth:`attach`."""
        return self._shm.name

    def close(self) -> None:
        """Unmap this side's view; idempotent."""
        buf = self._buf
        if buf is None:
            return
        self._buf = None
        try:
            buf.release()
        except Exception:
            pass
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator side only); idempotent."""
        if not self._owner:
            return
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        self._owner = False

    def __del__(self) -> None:
        try:
            self.close()
            self.unlink()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # cursors
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        """Next sequence number the producer will write."""
        return _CURSOR.unpack_from(self._buf, _HEAD_OFFSET)[0]

    @property
    def tail(self) -> int:
        """Next sequence number the consumer will read."""
        return _CURSOR.unpack_from(self._buf, _TAIL_OFFSET)[0]

    @property
    def readable(self) -> bool:
        """Whether at least one committed batch awaits the consumer."""
        return self.head > self.tail

    def _slot_offset(self, seq: int) -> int:
        return _CTRL.size + (seq % self.slot_count) * (_SLOT.size + self.slot_size)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def try_write(self, parts: Sequence[bytes]) -> int | None:
        """Write one batch (concatenated ``parts``) into the next slot.

        Returns the batch's sequence number, or ``None`` when the batch
        exceeds ``slot_size`` or every slot is still unconsumed — the
        caller's cue to spill to the pipe.  The payload is copied part
        by part straight into shared memory (the only copy the ring
        transport makes), CRC'd as it goes, and committed by writing the
        slot header and then advancing ``head``.
        """
        buf = self._buf
        length = 0
        for part in parts:
            length += len(part)
        if length > self.slot_size:
            return None
        head = _CURSOR.unpack_from(buf, _HEAD_OFFSET)[0]
        tail = _CURSOR.unpack_from(buf, _TAIL_OFFSET)[0]
        if head - tail >= self.slot_count:
            return None
        slot = self._slot_offset(head)
        offset = slot + _SLOT.size
        for part in parts:
            n = len(part)
            buf[offset:offset + n] = part
            offset += n
        crc = self._guard_crc(slot + _SLOT.size, length)
        _SLOT.pack_into(buf, slot, head, length, crc)
        _CURSOR.pack_into(buf, _HEAD_OFFSET, head + 1)
        return head

    def _guard_crc(self, start: int, length: int) -> int:
        """CRC32 of the payload's guard windows, read back from the slot."""
        buf = self._buf
        if length <= 2 * _CRC_GUARD:
            return zlib.crc32(buf[start:start + length])
        crc = zlib.crc32(buf[start:start + _CRC_GUARD])
        return zlib.crc32(
            buf[start + length - _CRC_GUARD:start + length], crc,
        )

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def peek(self) -> memoryview:
        """A zero-copy view of the oldest unconsumed batch's payload.

        Validates the slot header before exposing a byte: the recorded
        sequence must match ``tail`` exactly (a stale or skipped slot
        means the producer and consumer disagree about the protocol) and
        the payload's guard windows must CRC-match the header (a torn
        or corrupted write).  Either failure raises :class:`RingError`.
        The caller
        must release the view before :meth:`close` and should
        :meth:`consume` once the payload is decoded.
        """
        buf = self._buf
        tail = _CURSOR.unpack_from(buf, _TAIL_OFFSET)[0]
        head = _CURSOR.unpack_from(buf, _HEAD_OFFSET)[0]
        if head <= tail:
            raise RingError(f"ring is empty at seq {tail} (head {head})")
        slot = self._slot_offset(tail)
        seq, length, crc = _SLOT.unpack_from(buf, slot)
        if seq != tail:
            raise RingError(
                f"torn slot: expected seq {tail}, slot holds seq {seq}"
            )
        if length > self.slot_size:
            raise RingError(
                f"torn slot: seq {tail} claims {length} bytes, slot "
                f"capacity is {self.slot_size}"
            )
        start = slot + _SLOT.size
        if self._guard_crc(start, length) != crc:
            raise RingError(f"torn slot: seq {tail} failed its CRC check")
        return memoryview(buf)[start:start + length]

    def consume(self) -> None:
        """Mark the oldest batch consumed, freeing its slot for reuse."""
        buf = self._buf
        tail = _CURSOR.unpack_from(buf, _TAIL_OFFSET)[0]
        _CURSOR.pack_into(buf, _TAIL_OFFSET, tail + 1)
