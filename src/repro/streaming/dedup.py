"""Online duplicate suppression — the streaming form of R2 aggregation.

The batch :class:`~repro.core.mitigation.aggregation.AlertAggregator`
sorts a finished trace and sessionises per ``(strategy, region)``.  The
online aggregator reaches the *identical* partition one event at a time:
it keeps one open session per active key, extends it while the gap stays
within the window, and emits the finished
:class:`~repro.core.mitigation.aggregation.AggregatedAlert` the moment
the watermark proves no future in-order alert can extend it.

Memory is bounded by the number of keys active within one window (plus a
lazily-compacted expiry heap), never by stream length.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.common.timeutil import TimeWindow
from repro.common.validation import require_positive
from repro.core.mitigation.aggregation import AggregatedAlert

__all__ = ["OpenSession", "OnlineAggregator"]


@dataclass(slots=True)
class OpenSession:
    """One in-flight aggregation session for a ``(strategy, region)`` key."""

    strategy_id: str
    region: str
    first_at: float
    last_at: float
    count: int
    representative: Alert
    alert_ids: list[str] = field(default_factory=list)

    def absorb(self, alert: Alert) -> None:
        """Fold one more alert into the session.

        min/max keep the window valid even for late (out-of-order)
        events, which the gateway processes best-effort.
        """
        self.first_at = min(self.first_at, alert.occurred_at)
        self.last_at = max(self.last_at, alert.occurred_at)
        self.count += 1
        self.alert_ids.append(alert.alert_id)
        # Same tie-break as the batch aggregator's representative pick:
        # most severe wins, earliest breaks ties.
        if (alert.severity.value, alert.occurred_at) < (
            self.representative.severity.value,
            self.representative.occurred_at,
        ):
            self.representative = alert

    def emit(self) -> AggregatedAlert:
        """The finished aggregate record."""
        return AggregatedAlert(
            strategy_id=self.strategy_id,
            strategy_name=self.representative.strategy_name,
            region=self.region,
            severity=self.representative.severity,
            window=TimeWindow(self.first_at, self.last_at + 1e-9),
            count=self.count,
            representative=self.representative,
            alert_ids=tuple(self.alert_ids),
        )


class OnlineAggregator:
    """Incremental session-window aggregation over a time-ordered stream."""

    def __init__(self, window_seconds: float = 900.0) -> None:
        require_positive(window_seconds, "window_seconds")
        self._window = float(window_seconds)
        self._sessions: dict[tuple[str, str], OpenSession] = {}
        # (last_at + window, tiebreak, key): lazily invalidated on extension.
        self._expiry: list[tuple[float, int, tuple[str, str]]] = []
        self._sequence = 0

    @property
    def window_seconds(self) -> float:
        """Session gap: a larger gap starts a new aggregate."""
        return self._window

    @property
    def open_sessions(self) -> int:
        """Number of in-flight sessions (the bounded working set)."""
        return len(self._sessions)

    def min_open_first(self) -> float | None:
        """Earliest ``first_at`` among open sessions (correlator watermark)."""
        if not self._sessions:
            return None
        return min(session.first_at for session in self._sessions.values())

    def ingest(self, alert: Alert) -> list[AggregatedAlert]:
        """Feed one alert; returns the aggregates this event closed."""
        emitted = self._expire(alert.occurred_at)
        key = (alert.strategy_id, alert.region)
        session = self._sessions.get(key)
        if session is not None:
            # _expire already closed any session with a gap beyond the
            # window, so a surviving session is always extendable.
            session.absorb(alert)
            self._push_expiry(key, session)
            return emitted
        self._sessions[key] = session = OpenSession(
            strategy_id=alert.strategy_id,
            region=alert.region,
            first_at=alert.occurred_at,
            last_at=alert.occurred_at,
            count=1,
            representative=alert,
            alert_ids=[alert.alert_id],
        )
        self._push_expiry(key, session)
        return emitted

    def ingest_batch(self, alerts: list[Alert]) -> list[AggregatedAlert]:
        """Feed a micro-batch; equivalent to ``ingest`` per event.

        The batch path compresses *runs* — consecutive events of one
        ``(strategy, region)`` key, the common shape inside an alert
        storm — into a single dict lookup and a single expiry-heap push,
        instead of one of each per event.  Session boundaries are
        identical to the per-event path: a session closes exactly when
        the gap to the key's next event exceeds the window, and expiry
        of *other* keys' sessions only ever happens later than it would
        per-event, which delays emission but never changes it.
        """
        emitted: list[AggregatedAlert] = []
        window = self._window
        index = 0
        total = len(alerts)
        while index < total:
            first = alerts[index]
            strategy, region = first.strategy_id, first.region
            stop = index + 1
            while (
                stop < total
                and alerts[stop].strategy_id == strategy
                and alerts[stop].region == region
            ):
                stop += 1
            emitted.extend(self._expire(first.occurred_at))
            key = (strategy, region)
            session = self._sessions.get(key)
            for position in range(index, stop):
                alert = alerts[position]
                if session is not None and session.last_at + window < alert.occurred_at:
                    emitted.append(session.emit())
                    session = None
                if session is None:
                    session = OpenSession(
                        strategy_id=strategy,
                        region=region,
                        first_at=alert.occurred_at,
                        last_at=alert.occurred_at,
                        count=1,
                        representative=alert,
                        alert_ids=[alert.alert_id],
                    )
                else:
                    session.absorb(alert)
            self._sessions[key] = session
            self._push_expiry(key, session)
            index = stop
        return emitted

    def export_sessions(self) -> list[OpenSession]:
        """Hand over every open session (shard rebalancing).

        The aggregator is left empty; the caller re-installs the
        sessions on their new shards via :meth:`adopt`.  Deterministic
        key order, so rebalancing is reproducible.
        """
        sessions = [session for _, session in sorted(self._sessions.items())]
        self._sessions.clear()
        self._expiry.clear()
        return sessions

    def export_region(self, region: str) -> list[OpenSession]:
        """Hand over the open sessions of one region (plane migration).

        Sessions key on ``(strategy, region)``, so a region's slice is
        exact.  Their expiry-heap entries are left behind as stale
        tombstones — :meth:`_expire` already skips entries whose session
        is gone, so no heap rebuild is needed.  Deterministic key order.
        """
        keys = sorted(
            key for key in self._sessions if key[1] == region
        )
        return [self._sessions.pop(key) for key in keys]

    def adopt(self, sessions: list[OpenSession]) -> None:
        """Install sessions exported from another aggregator."""
        for session in sessions:
            key = (session.strategy_id, session.region)
            if key in self._sessions:
                raise ValidationError(f"session for {key} already open")
            self._sessions[key] = session
            self._push_expiry(key, session)

    def drain(self) -> list[AggregatedAlert]:
        """Close and emit every open session (end of stream)."""
        emitted = [
            session.emit()
            for _, session in sorted(self._sessions.items())
        ]
        self._sessions.clear()
        self._expiry.clear()
        return emitted

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _push_expiry(self, key: tuple[str, str], session: OpenSession) -> None:
        self._sequence += 1
        heapq.heappush(self._expiry, (session.last_at + self._window, self._sequence, key))

    def _expire(self, watermark: float) -> list[AggregatedAlert]:
        """Emit sessions no in-order event at ``watermark`` can still extend."""
        emitted: list[AggregatedAlert] = []
        while self._expiry and self._expiry[0][0] < watermark:
            expiry, _, key = heapq.heappop(self._expiry)
            session = self._sessions.get(key)
            if session is None or session.last_at + self._window != expiry:
                continue  # stale entry: session was extended or already closed
            emitted.append(session.emit())
            del self._sessions[key]
        return emitted
