"""Streaming QoA: per-strategy quality scored live from gateway counters.

The batch QoA path (:mod:`repro.core.qoa`) needs a *finished* trace —
incident windows, lifecycle quantiles, processing times.  A gateway that
runs forever never has one, so this module scores what the reaction
chain itself observes, incrementally, from the same per-flush
observation digests that feed the rule learner:

* **coverage** — the share of a strategy's alerts that survive R1
  blocking.  A strategy whose alerts are mostly rule-blocked is, by the
  OCEs' own configured judgement, mostly noise.
* **actionability** — one minus the transient share: short-lived
  auto-cleared alerts (the paper's A4) resolve themselves before anyone
  could act.
* **distinctness** — R2 aggregates emitted per surviving alert: the
  inverse-redundancy proxy.  A strategy whose hundred alerts collapse
  into two session groups carries two alerts' worth of information
  (the paper's A5 in volume terms).

All three are ratios of *lifetime counters*, so the streaming scores are
exact at any point in the stream — and at drain they equal the same
ratios computed batch-wise from the finished trace
(:func:`measure_stream_qoa`) to within floating-point division, the
tolerance ``tests/streaming/test_differential.py`` documents and
asserts.  With rule learning enabled the two legitimately diverge
(different rules block different alerts); that divergence is one of the
differential harness's reported metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alerting.alert import Alert
from repro.core.antipatterns.base import DetectorThresholds
from repro.core.mitigation.aggregation import AlertAggregator
from repro.core.mitigation.blocking import AlertBlocker

__all__ = ["StreamQoA", "StreamQoAScorer", "measure_stream_qoa"]

#: Tolerance within which streaming scores match the batch-side ratios
#: at drain (pure float-division noise; the counters are identical).
QOA_DRAIN_TOLERANCE = 1e-9


@dataclass(frozen=True, slots=True)
class StreamQoA:
    """Counter-derived quality of one strategy's alerts, all in [0, 1]."""

    strategy_id: str
    seen: int
    blocked: int
    transient: int
    groups: int

    @property
    def coverage(self) -> float:
        """Share of alerts surviving R1 (1.0 = nothing rule-blocked)."""
        return (self.seen - self.blocked) / self.seen if self.seen else 1.0

    @property
    def actionability(self) -> float:
        """1 - transient share (A4-style self-resolving alerts score low)."""
        return 1.0 - self.transient / self.seen if self.seen else 1.0

    @property
    def distinctness(self) -> float:
        """Aggregate groups per surviving alert (inverse redundancy)."""
        passed = self.seen - self.blocked
        if passed <= 0:
            return 1.0
        return min(self.groups / passed, 1.0)

    @property
    def overall(self) -> float:
        """Unweighted mean of the three criteria."""
        return (self.coverage + self.actionability + self.distinctness) / 3.0

    def as_dict(self) -> dict[str, float]:
        """The scores plus raw counters as one plain dict (snapshots)."""
        return {
            "seen": self.seen,
            "blocked": self.blocked,
            "transient": self.transient,
            "groups": self.groups,
            "coverage": self.coverage,
            "actionability": self.actionability,
            "distinctness": self.distinctness,
            "overall": self.overall,
        }


class StreamQoAScorer:
    """Accumulates per-strategy QoA counters from flush digests."""

    def __init__(self) -> None:
        # strategy -> [seen, blocked, transient, groups]
        self._counters: dict[str, list[int]] = {}

    def observe(self, observations: list[tuple]) -> None:
        """Fold one flush cycle's observation digests."""
        counters = self._counters
        for strategy_id, _region, _service, seen, blocked, transient, groups in observations:
            row = counters.get(strategy_id)
            if row is None:
                counters[strategy_id] = [seen, blocked, transient, groups]
            else:
                row[0] += seen
                row[1] += blocked
                row[2] += transient
                row[3] += groups

    @property
    def strategies(self) -> int:
        """Number of strategies observed so far."""
        return len(self._counters)

    def export_state(self) -> dict:
        """The lifetime counters as a JSON-safe dict (checkpointing)."""
        return {
            "counters": {
                strategy_id: list(row)
                for strategy_id, row in self._counters.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Adopt counters captured by :meth:`export_state` (exact)."""
        self._counters = {
            str(strategy_id): [int(value) for value in row]
            for strategy_id, row in state["counters"].items()
        }

    def score(self, strategy_id: str) -> StreamQoA | None:
        """The current scores of one strategy (``None`` if unseen)."""
        row = self._counters.get(strategy_id)
        if row is None:
            return None
        return StreamQoA(strategy_id, *row)

    def scores(self, min_alerts: int = 1) -> dict[str, StreamQoA]:
        """Scores of every strategy with at least ``min_alerts`` seen."""
        return {
            strategy_id: StreamQoA(strategy_id, *row)
            for strategy_id, row in sorted(self._counters.items())
            if row[0] >= min_alerts
        }

    def snapshot(self, min_alerts: int = 1) -> dict[str, dict[str, float]]:
        """All scores as plain dicts (``GatewayStats.snapshot`` payload)."""
        return {
            strategy_id: qoa.as_dict()
            for strategy_id, qoa in self.scores(min_alerts).items()
        }


def measure_stream_qoa(
    alerts: list[Alert],
    blocker: AlertBlocker,
    aggregation_window: float = 900.0,
    thresholds: DetectorThresholds | None = None,
) -> dict[str, StreamQoA]:
    """The batch counterpart: identical counters from a finished trace.

    Runs the batch R1 blocker and R2 aggregator over ``alerts`` and
    derives the same four per-strategy counters the streaming scorer
    accumulates.  With a static rule set the streaming scores at drain
    equal these to within :data:`QOA_DRAIN_TOLERANCE` — the batch-vs-
    stream QoA leg of the differential harness.
    """
    thresholds = thresholds or DetectorThresholds()
    threshold = thresholds.intermittent_threshold
    counters: dict[str, list[int]] = {}
    survivors: list[Alert] = []
    for alert in alerts:
        row = counters.setdefault(alert.strategy_id, [0, 0, 0, 0])
        row[0] += 1
        if alert.is_transient(threshold):
            row[2] += 1
        if blocker.is_blocked(alert):
            row[1] += 1
        else:
            survivors.append(alert)
    for aggregate in AlertAggregator(aggregation_window).aggregate(survivors):
        counters[aggregate.strategy_id][3] += 1
    return {
        strategy_id: StreamQoA(strategy_id, *row)
        for strategy_id, row in sorted(counters.items())
    }
