"""The 18-OCE survey instrument (Figures 2(a), 2(b), 2(c), and 4).

The paper's survey responses are proprietary; what it publishes are the
per-question answer distributions and one cross-tab fact (all >3-year OCEs
answered "Limited Help" on Q1).  The instrument here simulates a panel
whose *response model is calibrated to those published marginals*: target
counts come from :mod:`repro.analysis.paper_reference`, hard behavioural
constraints (the Figure 4 fact) are honoured, and the root seed only
shuffles *which* OCE within an eligible group gives which answer.

Re-measuring the paper's figures through this instrument exercises the
full tabulation machinery — question banks, panel composition,
constraint-aware allocation, count and cross-tab computation — which is
the reproducible deliverable.  Custom target tables are accepted so the
instrument is reusable beyond the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import paper_reference as paper
from repro.common.errors import ValidationError
from repro.common.rng import derive_rng
from repro.oce.engineer import ExperienceBand, OnCallEngineer, build_panel

__all__ = [
    "IMPACT_OPTIONS",
    "SOP_OPTIONS",
    "REACTION_OPTIONS",
    "SurveyResponse",
    "SurveyResults",
    "SurveyInstrument",
]

IMPACT_OPTIONS: tuple[str, ...] = ("High", "Low", "No Impact")
SOP_OPTIONS: tuple[str, ...] = ("Helpful", "Limited Help", "Not Helpful")
REACTION_OPTIONS: tuple[str, ...] = ("Effective", "Limited Effect", "Not Effective")


@dataclass(frozen=True, slots=True)
class SurveyResponse:
    """One OCE's answer to one question."""

    oce_name: str
    band: ExperienceBand
    question_id: str
    answer: str


@dataclass(slots=True)
class SurveyResults:
    """All responses of one survey run, with tabulation helpers."""

    panel: list[OnCallEngineer]
    responses: list[SurveyResponse] = field(default_factory=list)

    def counts(self, question_id: str, options: tuple[str, ...]) -> dict[str, int]:
        """Answer counts for one question, keyed in option order."""
        counts = {option: 0 for option in options}
        for response in self.responses:
            if response.question_id == question_id:
                if response.answer not in counts:
                    raise ValidationError(
                        f"answer {response.answer!r} not among options {options!r}"
                    )
                counts[response.answer] += 1
        return counts

    def crosstab(self, question_id: str) -> dict[ExperienceBand, dict[str, int]]:
        """Per-band answer counts for one question (Figure 4 style)."""
        table: dict[ExperienceBand, dict[str, int]] = {}
        for response in self.responses:
            if response.question_id != question_id:
                continue
            band_row = table.setdefault(response.band, {})
            band_row[response.answer] = band_row.get(response.answer, 0) + 1
        return table

    def agreement_fraction(self, question_id: str, agreeing: tuple[str, ...]) -> float:
        """Fraction of the panel whose answer is in ``agreeing``.

        Used for the paper's in-text percentages, e.g. "88.9 % of OCEs
        agree with the impact of misleading severity" (High + Low).
        """
        total = sum(1 for r in self.responses if r.question_id == question_id)
        if total == 0:
            raise ValidationError(f"no responses recorded for {question_id!r}")
        hits = sum(
            1
            for r in self.responses
            if r.question_id == question_id and r.answer in agreeing
        )
        return hits / total


class SurveyInstrument:
    """Runs the calibrated survey over a panel.

    ``impact_targets`` / ``sop_targets`` / ``reaction_targets`` may be
    overridden with custom ``{question: (count, count, count)}`` tables;
    they default to the paper's published distributions.
    """

    def __init__(
        self,
        panel: list[OnCallEngineer] | None = None,
        seed: int = 42,
        impact_targets: dict[str, tuple[int, int, int]] | None = None,
        sop_targets: dict[str, tuple[int, int, int]] | None = None,
        reaction_targets: dict[str, tuple[int, int, int]] | None = None,
    ) -> None:
        self._panel = build_panel() if panel is None else panel
        self._seed = seed
        self._impact_targets = (
            paper.ANTIPATTERN_IMPACT if impact_targets is None else impact_targets
        )
        self._sop_targets = (
            paper.SOP_HELPFULNESS if sop_targets is None else sop_targets
        )
        self._reaction_targets = (
            paper.REACTION_EFFECTIVENESS if reaction_targets is None else reaction_targets
        )

    @property
    def panel(self) -> list[OnCallEngineer]:
        """The surveyed OCEs (copy)."""
        return list(self._panel)

    def run(self) -> SurveyResults:
        """Ask every question bank; returns the tabulated results."""
        results = SurveyResults(panel=self.panel)
        for pattern, targets in self._impact_targets.items():
            results.responses.extend(
                self._allocate(f"impact/{pattern}", IMPACT_OPTIONS, targets)
            )
        for question, targets in self._sop_targets.items():
            constraints = None
            if question == "Q1":
                # Figure 4: every >3-year OCE found overall SOP help limited.
                constraints = {ExperienceBand.GT3: "Limited Help"}
            results.responses.extend(
                self._allocate(f"sop/{question}", SOP_OPTIONS, targets, constraints)
            )
        for reaction, targets in self._reaction_targets.items():
            results.responses.extend(
                self._allocate(f"reaction/{reaction}", REACTION_OPTIONS, targets)
            )
        return results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _allocate(
        self,
        question_id: str,
        options: tuple[str, ...],
        targets: tuple[int, ...],
        constraints: dict[ExperienceBand, str] | None = None,
    ) -> list[SurveyResponse]:
        """Deal answers to OCEs matching target counts and band constraints."""
        if len(targets) != len(options):
            raise ValidationError(
                f"{question_id}: got {len(targets)} targets for {len(options)} options"
            )
        if sum(targets) != len(self._panel):
            raise ValidationError(
                f"{question_id}: targets sum to {sum(targets)}, panel has {len(self._panel)}"
            )
        remaining = dict(zip(options, targets))
        responses: list[SurveyResponse] = []
        free_oces: list[OnCallEngineer] = []

        for oce in self._panel:
            forced = (constraints or {}).get(oce.band)
            if forced is not None:
                if remaining.get(forced, 0) <= 0:
                    raise ValidationError(
                        f"{question_id}: constraint {oce.band.value} -> {forced!r} "
                        f"is infeasible with the target counts"
                    )
                remaining[forced] -= 1
                responses.append(
                    SurveyResponse(oce.name, oce.band, question_id, forced)
                )
            else:
                free_oces.append(oce)

        rng = derive_rng(self._seed, f"survey/{question_id}")
        order = rng.permutation(len(free_oces))
        deck: list[str] = []
        for option in options:
            deck.extend([option] * remaining[option])
        for position, oce_index in enumerate(order):
            oce = free_oces[int(oce_index)]
            responses.append(
                SurveyResponse(oce.name, oce.band, question_id, deck[position])
            )
        return responses
