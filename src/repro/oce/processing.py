"""Alert-processing (diagnosis) time model.

The paper mines individual anti-pattern candidates by "grouping the alerts
according to the alert strategies, then calculating each strategy's
average processing time" and taking the top 30 %.  For that pipeline to be
reproducible, the simulated OCE must take *longer* on alerts whose
strategies are badly configured — which is the documented pain: vague
titles slow down intuitive judgment (A1), misleading severity wastes
prioritisation (A2), irrelevant rules send OCEs chasing infra noise (A3),
and transient alerts burn time on anomalies that are gone on arrival (A4).

The model is multiplicative over quality penalties with lognormal noise:

    time = base(severity) * skill(OCE) * sop_factor * Π penalties * noise
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alerting.alert import Alert, Severity
from repro.alerting.sop import SOPLibrary
from repro.alerting.strategy import AlertStrategy
from repro.common.rng import derive_rng
from repro.common.timeutil import MINUTE
from repro.common.validation import require_positive
from repro.oce.engineer import OnCallEngineer

__all__ = ["ProcessingOutcome", "ProcessingModel"]

#: Mean diagnosis time (seconds) by configured severity: severe alerts get
#: deeper investigations.
_BASE_BY_SEVERITY: dict[Severity, float] = {
    Severity.CRITICAL: 25 * MINUTE,
    Severity.MAJOR: 18 * MINUTE,
    Severity.MINOR: 12 * MINUTE,
    Severity.WARNING: 8 * MINUTE,
}

#: Multiplier weights of each quality degradation (calibrated so injected
#: anti-pattern strategies land in the slow tail of the distribution).
_PENALTY_UNCLEAR_TITLE = 1.8     # A1: no intuitive first-sight judgment
_PENALTY_SEVERITY_BIAS = 0.35    # A2: per level of bias
_PENALTY_IRRELEVANT_TARGET = 1.2  # A3: chasing an infra signal with no user impact
_PENALTY_SENSITIVE_RULE = 0.9    # A4: anomaly often gone before inspection finishes
_SOP_ACTIONABLE_FACTOR = 0.75    # a concrete SOP speeds diagnosis up
_SOP_MISSING_FACTOR = 1.25       # no SOP at all slows it down
_LOGNORMAL_SIGMA = 0.35


@dataclass(frozen=True, slots=True)
class ProcessingOutcome:
    """The result of one OCE processing one alert."""

    alert_id: str
    strategy_id: str
    oce_name: str
    started_at: float
    processing_seconds: float
    resolved: bool

    @property
    def finished_at(self) -> float:
        """When the OCE finished working on the alert."""
        return self.started_at + self.processing_seconds


class ProcessingModel:
    """Draws diagnosis times for (alert, strategy, OCE) triples."""

    def __init__(self, seed: int = 42, sops: SOPLibrary | None = None) -> None:
        self._seed = seed
        self._sops = sops

    def expected_seconds(self, strategy: AlertStrategy, oce: OnCallEngineer) -> float:
        """The noise-free mean processing time for a strategy/OCE pair."""
        quality = strategy.quality
        time = _BASE_BY_SEVERITY[strategy.severity] * oce.skill
        time *= 1.0 + _PENALTY_UNCLEAR_TITLE * (1.0 - quality.title_clarity)
        time *= 1.0 + _PENALTY_SEVERITY_BIAS * abs(quality.severity_bias)
        time *= 1.0 + _PENALTY_IRRELEVANT_TARGET * (1.0 - quality.target_relevance)
        time *= 1.0 + _PENALTY_SENSITIVE_RULE * quality.sensitivity
        time *= self._sop_factor(strategy)
        return time

    def process(
        self,
        alert: Alert,
        strategy: AlertStrategy,
        oce: OnCallEngineer,
        started_at: float,
    ) -> ProcessingOutcome:
        """Simulate one diagnosis; deterministic per (alert, OCE, seed)."""
        require_positive(started_at + 1.0, "started_at + 1")  # allow 0.0
        rng = derive_rng(self._seed, f"processing/{alert.alert_id}/{oce.name}")
        mean = self.expected_seconds(strategy, oce)
        noise = float(rng.lognormal(mean=0.0, sigma=_LOGNORMAL_SIGMA))
        seconds = mean * noise
        # Resolution odds drop with quality degradation; unresolved alerts
        # get escalated after the diagnosis attempt.
        p_resolved = 0.95 if strategy.quality.is_clean else 0.80
        resolved = bool(rng.random() < p_resolved)
        return ProcessingOutcome(
            alert_id=alert.alert_id,
            strategy_id=strategy.strategy_id,
            oce_name=oce.name,
            started_at=started_at,
            processing_seconds=seconds,
            resolved=resolved,
        )

    def _sop_factor(self, strategy: AlertStrategy) -> float:
        if self._sops is None:
            return 1.0
        sop = self._sops.lookup(strategy.name)
        if sop is None:
            return _SOP_MISSING_FACTOR
        return _SOP_ACTIONABLE_FACTOR if sop.is_actionable else 1.0
