"""On-call engineer agents and the paper's survey panel composition."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.paper_reference import EXPERIENCE_MIX
from repro.common.errors import ValidationError

__all__ = ["ExperienceBand", "OnCallEngineer", "build_panel"]


class ExperienceBand(enum.Enum):
    """Working-experience bands as the paper's §III reports them."""

    LT1 = "<1y"
    Y1TO2 = "1-2y"
    Y2TO3 = "2-3y"
    GT3 = ">3y"

    @property
    def label(self) -> str:
        """Display form used in Figure 4's legend."""
        return {
            ExperienceBand.LT1: "less than 1 year",
            ExperienceBand.Y1TO2: "1 to 2 years",
            ExperienceBand.Y2TO3: "2 to 3 years",
            ExperienceBand.GT3: "more than 3 years",
        }[self]

    @property
    def skill(self) -> float:
        """Diagnosis-speed multiplier: seniors diagnose faster (< 1.0)."""
        return {
            ExperienceBand.LT1: 1.6,
            ExperienceBand.Y1TO2: 1.3,
            ExperienceBand.Y2TO3: 1.1,
            ExperienceBand.GT3: 0.8,
        }[self]

    @classmethod
    def from_value(cls, value: str) -> "ExperienceBand":
        """Parse a band from its short form, e.g. ``">3y"``."""
        for band in cls:
            if band.value == value:
                return band
        raise ValidationError(f"unknown experience band {value!r}")


@dataclass(frozen=True, slots=True)
class OnCallEngineer:
    """One OCE with a name and an experience band."""

    name: str
    band: ExperienceBand

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("OCE name must be non-empty")

    @property
    def skill(self) -> float:
        """Diagnosis-speed multiplier inherited from the band."""
        return self.band.skill


def build_panel(mix: dict[str, int] | None = None) -> list[OnCallEngineer]:
    """Build the survey panel with the paper's experience mix.

    Default mix (§III): 10 OCEs with more than three years of experience,
    3 with two-to-three, 2 with one-to-two, 3 with under one year —
    eighteen in total.  Seniors come first so panel indices are stable.
    """
    mix = EXPERIENCE_MIX if mix is None else mix
    panel: list[OnCallEngineer] = []
    order = (ExperienceBand.GT3, ExperienceBand.Y2TO3, ExperienceBand.Y1TO2, ExperienceBand.LT1)
    for band in order:
        count = mix.get(band.value, 0)
        if count < 0:
            raise ValidationError(f"negative count for band {band.value!r}")
        for index in range(count):
            panel.append(OnCallEngineer(name=f"oce-{band.value}-{index:02d}", band=band))
    if not panel:
        raise ValidationError("panel must contain at least one OCE")
    return panel
