"""On-call engineer simulation: processing behaviour and the survey panel.

Three pieces:

* :mod:`repro.oce.engineer` — OCE agents with the paper's experience
  bands (§III: 10 OCEs >3y, 3 with 2-3y, 2 with 1-2y, 3 with <1y);
* :mod:`repro.oce.processing` — how long an OCE takes to diagnose an
  alert as a function of the alert strategy's quality; this is what makes
  anti-pattern strategies surface in the paper's top-30 %-processing-time
  candidate mining;
* :mod:`repro.oce.survey` — the 18-OCE survey instrument reproducing
  Figures 2(a)-(c) and Figure 4.
"""

from repro.oce.engineer import ExperienceBand, OnCallEngineer, build_panel
from repro.oce.processing import ProcessingModel, ProcessingOutcome
from repro.oce.survey import (
    SurveyInstrument,
    SurveyResponse,
    SurveyResults,
)
from repro.oce.team import OCETeam

__all__ = [
    "ExperienceBand",
    "OnCallEngineer",
    "build_panel",
    "ProcessingModel",
    "ProcessingOutcome",
    "OCETeam",
    "SurveyInstrument",
    "SurveyResponse",
    "SurveyResults",
]
