"""OCE teams: alert assignment and load accounting.

The paper sets the collective-candidate threshold at 200 alerts/hour/region
because that is "the estimated maximum number of alerts an OCE team can
deal with".  The team model makes that capacity concrete: alerts are
assigned round-robin, each diagnosis occupies its OCE for the processing
time, and the team saturates when arrivals outpace capacity.
"""

from __future__ import annotations

from repro.alerting.alert import Alert
from repro.alerting.strategy import AlertStrategy
from repro.common.errors import ValidationError
from repro.oce.engineer import OnCallEngineer
from repro.oce.processing import ProcessingModel, ProcessingOutcome

__all__ = ["OCETeam"]


class OCETeam:
    """A team of OCEs sharing an on-call queue."""

    def __init__(
        self,
        name: str,
        engineers: list[OnCallEngineer],
        model: ProcessingModel,
    ) -> None:
        if not name:
            raise ValidationError("team name must be non-empty")
        if not engineers:
            raise ValidationError("team must have at least one engineer")
        self._name = name
        self._engineers = list(engineers)
        self._model = model
        self._busy_until: dict[str, float] = {e.name: 0.0 for e in engineers}
        self._outcomes: list[ProcessingOutcome] = []

    @property
    def name(self) -> str:
        """Team name."""
        return self._name

    @property
    def engineers(self) -> list[OnCallEngineer]:
        """Team members (copy)."""
        return list(self._engineers)

    @property
    def outcomes(self) -> list[ProcessingOutcome]:
        """All processing outcomes so far (copy)."""
        return list(self._outcomes)

    def handle(self, alert: Alert, strategy: AlertStrategy, now: float) -> ProcessingOutcome:
        """Assign ``alert`` to the earliest-free OCE and process it.

        The diagnosis starts when that OCE becomes free (>= ``now``), so a
        saturated team accumulates queueing delay — exactly the effect the
        paper describes during alert storms.
        """
        oce = min(
            self._engineers,
            key=lambda e: (self._busy_until[e.name], e.name),
        )
        start = max(now, self._busy_until[oce.name])
        outcome = self._model.process(alert, strategy, oce, start)
        self._busy_until[oce.name] = outcome.finished_at
        self._outcomes.append(outcome)
        return outcome

    def backlog_seconds(self, now: float) -> float:
        """Total busy time scheduled beyond ``now`` across the team."""
        return sum(max(until - now, 0.0) for until in self._busy_until.values())

    def hourly_capacity(self, strategy: AlertStrategy) -> float:
        """Alerts/hour the team can absorb for a given strategy's profile."""
        per_oce = [
            3600.0 / self._model.expected_seconds(strategy, oce) for oce in self._engineers
        ]
        return sum(per_oce)
