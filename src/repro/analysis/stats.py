"""Summary statistics over alert collections."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.alerting.alert import Alert, AlertState, Severity
from repro.common.errors import ValidationError
from repro.common.timeutil import DAY

__all__ = ["TraceStats", "compute_trace_stats"]


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Aggregate shape of an alert collection."""

    n_alerts: int
    n_strategies: int
    n_services: int
    n_regions: int
    span_seconds: float
    by_severity: dict[Severity, int] = field(default_factory=dict)
    by_channel: dict[str, int] = field(default_factory=dict)
    by_state: dict[AlertState, int] = field(default_factory=dict)

    @property
    def alerts_per_day(self) -> float:
        """Mean daily alert volume over the observed span."""
        if self.span_seconds <= 0:
            return float(self.n_alerts)
        return self.n_alerts / (self.span_seconds / DAY)

    def render(self) -> str:
        """Multi-line human-readable summary."""
        severity = ", ".join(
            f"{sev.label}={count}" for sev, count in sorted(self.by_severity.items())
        )
        channel = ", ".join(f"{ch}={count}" for ch, count in sorted(self.by_channel.items()))
        state = ", ".join(f"{st.value}={count}" for st, count in self.by_state.items())
        return "\n".join([
            f"alerts: {self.n_alerts:,} over {self.span_seconds / DAY:.1f} days "
            f"({self.alerts_per_day:,.0f}/day)",
            f"strategies: {self.n_strategies:,}; services: {self.n_services}; "
            f"regions: {self.n_regions}",
            f"severity: {severity}",
            f"channel: {channel}",
            f"state: {state}",
        ])


def compute_trace_stats(alerts: Sequence[Alert]) -> TraceStats:
    """Compute :class:`TraceStats` for a non-empty alert collection."""
    if not alerts:
        raise ValidationError("cannot compute stats of an empty alert collection")
    by_severity: dict[Severity, int] = {}
    by_channel: dict[str, int] = {}
    by_state: dict[AlertState, int] = {}
    strategies: set[str] = set()
    services: set[str] = set()
    regions: set[str] = set()
    first = float("inf")
    last = float("-inf")
    for alert in alerts:
        by_severity[alert.severity] = by_severity.get(alert.severity, 0) + 1
        by_channel[alert.channel] = by_channel.get(alert.channel, 0) + 1
        by_state[alert.state] = by_state.get(alert.state, 0) + 1
        strategies.add(alert.strategy_id)
        services.add(alert.service)
        regions.add(alert.region)
        first = min(first, alert.occurred_at)
        last = max(last, alert.occurred_at)
    return TraceStats(
        n_alerts=len(alerts),
        n_strategies=len(strategies),
        n_services=len(services),
        n_regions=len(regions),
        span_seconds=max(last - first, 0.0),
        by_severity=by_severity,
        by_channel=by_channel,
        by_state=by_state,
    )
