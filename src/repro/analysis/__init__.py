"""Analysis: paper constants, trace statistics, and figure/table builders.

* :mod:`repro.analysis.paper_reference` — every number the paper reports,
  used both to calibrate the synthetic substrate and as the comparison
  column in the benchmark harness;
* :mod:`repro.analysis.stats` — summary statistics over alert traces;
* :mod:`repro.analysis.figures` — builders that turn measured data into
  the same rows/series the paper's figures plot, rendered as ASCII;
* :mod:`repro.analysis.report` — paper-vs-measured comparison tables.
"""

from repro.analysis import paper_reference
from repro.analysis.figures import render_bar_survey, render_hourly_series, render_table
from repro.analysis.report import ComparisonRow, render_comparison
from repro.analysis.stats import TraceStats, compute_trace_stats

__all__ = [
    "paper_reference",
    "render_bar_survey",
    "render_hourly_series",
    "render_table",
    "ComparisonRow",
    "render_comparison",
    "TraceStats",
    "compute_trace_stats",
]
