"""Every number the paper reports, in one place.

These constants serve two purposes: (1) calibrate the synthetic substrate
(survey response model, storm scenario shape), and (2) provide the
"paper" column that every benchmark prints next to its measured value.
Section/figure provenance is noted on each constant.
"""

from __future__ import annotations

__all__ = [
    "ANTIPATTERN_NAMES",
    "REACTION_NAMES",
    "ANTIPATTERN_IMPACT",
    "SOP_HELPFULNESS",
    "SOP_QUESTIONS",
    "REACTION_EFFECTIVENESS",
    "EXPERIENCE_MIX",
    "N_OCES",
    "Q1_LIMITED_GT3_COUNT",
    "Q1_LIMITED_GT3_SHARE",
    "STUDY_YEARS",
    "N_ALERTS_TOTAL",
    "N_SERVICES",
    "N_MICROSERVICES",
    "N_STRATEGIES",
    "TOP_PROCESSING_FRACTION",
    "COLLECTIVE_CANDIDATE_THRESHOLD",
    "STORM_THRESHOLD",
    "INDIVIDUAL_CANDIDATES",
    "INDIVIDUAL_CONFIRMED",
    "COLLECTIVE_CANDIDATES",
    "COLLECTIVE_CONFIRMED",
    "STORM_EXAMPLE",
    "QOA_CRITERIA",
]

#: §III-A: the six anti-patterns.
ANTIPATTERN_NAMES: dict[str, str] = {
    "A1": "Unclear Name or Description",
    "A2": "Misleading Severity",
    "A3": "Improper and Outdated Generation Rule",
    "A4": "Transient and Toggling Alerts",
    "A5": "Repeating Alerts",
    "A6": "Cascading Alerts",
}

#: §III-C: the four postmortem reactions.
REACTION_NAMES: dict[str, str] = {
    "R1": "Alert Blocking",
    "R2": "Alert Aggregation",
    "R3": "Alert Correlation Analysis",
    "R4": "Emerging Alert Detection",
}

#: Figure 2(a): per anti-pattern (High, Low, No-Impact) counts of 18 OCEs.
ANTIPATTERN_IMPACT: dict[str, tuple[int, int, int]] = {
    "A1": (11, 7, 0),
    "A2": (8, 8, 2),
    "A3": (13, 4, 1),
    "A4": (7, 10, 1),
    "A5": (7, 10, 1),
    "A6": (14, 4, 0),
}

#: Figure 2(b): per question (Helpful, Limited Help, Not Helpful) counts.
SOP_HELPFULNESS: dict[str, tuple[int, int, int]] = {
    "Q1": (4, 14, 0),
    "Q2": (9, 7, 2),
    "Q3": (5, 13, 0),
}

#: Figure 2(b) question texts.
SOP_QUESTIONS: dict[str, str] = {
    "Q1": "Overall helpfulness of predefined SOPs",
    "Q2": "Helpfulness for individual anti-patterns",
    "Q3": "Helpfulness for collective anti-patterns",
}

#: Figure 2(c): per reaction (Effective, Limited Effect, Not Effective) counts.
REACTION_EFFECTIVENESS: dict[str, tuple[int, int, int]] = {
    "R1": (18, 0, 0),
    "R2": (16, 2, 0),
    "R3": (18, 0, 0),
    "R4": (13, 3, 2),
}

#: §III: the 18 surveyed OCEs by working experience.
EXPERIENCE_MIX: dict[str, int] = {">3y": 10, "2-3y": 3, "1-2y": 2, "<1y": 3}

#: §III: panel size.
N_OCES = 18

#: Figure 4: all ten >3-year OCEs answered "Limited Help" on Q1 ...
Q1_LIMITED_GT3_COUNT = 10
#: ... which is 71.4 % of the fourteen "Limited Help" answers.
Q1_LIMITED_GT3_SHARE = 10 / 14

#: §I/§III study frame.
STUDY_YEARS = 2
N_ALERTS_TOTAL = 4_000_000  # "over 4 million alerts"
N_SERVICES = 11
N_MICROSERVICES = 192
N_STRATEGIES = 2010

#: §III-A candidate mining parameters.
TOP_PROCESSING_FRACTION = 0.30   # top 30 % longest mean processing time
COLLECTIVE_CANDIDATE_THRESHOLD = 200  # alerts / hour / region
STORM_THRESHOLD = 100            # alerts / hour / region counts as a storm

#: §III-A mining outcome.
INDIVIDUAL_CANDIDATES = 5
INDIVIDUAL_CONFIRMED = 4
COLLECTIVE_CANDIDATES = 2
COLLECTIVE_CONFIRMED = 2

#: §III-A2 / Figure 3: the representative 7:00-11:59 storm.
STORM_EXAMPLE: dict[str, object] = {
    "start_hour": 7,
    "end_hour": 12,           # exclusive: 7:00 AM to 11:59 AM
    "total_alerts": 2751,
    "effective_strategies": 200,
    "top_strategy": "haproxy_process_number_warning",
    "top_strategy_display": "HAProxy",
    "top_share_per_hour": 0.30,   # "around 30% of the total number in each hour"
    "top_severity": "WARNING",    # "only a WARNING level alert, i.e., the lowest level"
    "second_strategy_display": "Kafka",
}

#: §IV: the three Quality-of-Alerts criteria.
QOA_CRITERIA: tuple[str, ...] = ("indicativeness", "precision", "handleability")
