"""ASCII renderings of the paper's figure shapes.

The benchmark harness is text-only, so every figure is rendered as the
series/rows the paper plots: stacked horizontal bars for the survey
figures, an hourly series table for the storm figure, and plain aligned
tables for alert samples.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.common.errors import ValidationError

__all__ = ["render_bar_survey", "render_hourly_series", "render_table"]

_BAR_GLYPHS = ("#", "=", ".")
_BAR_WIDTH = 36


def render_bar_survey(
    title: str,
    rows: Mapping[str, Mapping[str, int]],
    options: Sequence[str],
) -> str:
    """Render stacked horizontal bars, one row per item (Figure 2 style).

    ``rows`` maps a row label (e.g. ``"A1"``) to its per-option counts.
    """
    if len(options) > len(_BAR_GLYPHS):
        raise ValidationError(f"at most {len(_BAR_GLYPHS)} options supported, got {len(options)}")
    lines = [title]
    legend = "  ".join(
        f"{glyph}={option}" for glyph, option in zip(_BAR_GLYPHS, options)
    )
    lines.append(f"  legend: {legend}")
    label_width = max((len(label) for label in rows), default=4)
    for label, counts in rows.items():
        total = sum(counts.get(option, 0) for option in options)
        if total == 0:
            lines.append(f"  {label:<{label_width}} (no responses)")
            continue
        bar = ""
        for glyph, option in zip(_BAR_GLYPHS, options):
            count = counts.get(option, 0)
            width = round(_BAR_WIDTH * count / total)
            bar += glyph * width
        numbers = " ".join(f"{counts.get(option, 0):>2}" for option in options)
        lines.append(f"  {label:<{label_width}} |{bar:<{_BAR_WIDTH}}| {numbers}")
    return "\n".join(lines)


def render_hourly_series(
    title: str,
    hours: Sequence[int],
    series: Mapping[str, Sequence[int]],
) -> str:
    """Render per-hour counts for several named series (Figure 3 style)."""
    for name, values in series.items():
        if len(values) != len(hours):
            raise ValidationError(
                f"series {name!r} has {len(values)} values for {len(hours)} hours"
            )
    lines = [title]
    name_width = max((len(name) for name in series), default=6)
    header = " " * (name_width + 2) + " ".join(f"{hour:>6}" for hour in hours) + "   total"
    lines.append(header)
    for name, values in series.items():
        cells = " ".join(f"{value:>6}" for value in values)
        lines.append(f"  {name:<{name_width}}{cells} {sum(values):>7}")
    return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a plain aligned table (Table II style)."""
    if not headers:
        raise ValidationError("headers must be non-empty")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(f"{cell:<{width}}" for cell, width in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
