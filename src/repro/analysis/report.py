"""Paper-vs-measured comparison tables for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import render_table

__all__ = ["ComparisonRow", "render_comparison"]


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One metric compared between the paper and this reproduction."""

    metric: str
    paper: object
    measured: object
    note: str = ""

    def formatted(self) -> tuple[str, str, str, str]:
        """Cells for the rendering table."""
        return (self.metric, _fmt(self.paper), _fmt(self.measured), self.note)


def render_comparison(title: str, rows: list[ComparisonRow]) -> str:
    """Render a paper-vs-measured table with a title line."""
    table = render_table(
        headers=("metric", "paper", "measured", "note"),
        rows=[row.formatted() for row in rows],
    )
    return f"{title}\n{table}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
