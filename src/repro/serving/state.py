"""Capture/restore glue between checkpoints and live gateways.

A checkpoint stores *dynamic* state only.  The static inputs — the
dependency graph and the correlation rulebook — are code-and-config,
supplied by the caller at restore time exactly as at first boot; the
checkpoint records the gateway's construction parameters
(:meth:`~repro.streaming.gateway.AlertGateway.checkpoint_config`) so
:func:`restore_gateway` can rebuild an identically-configured gateway
and verify the caller did not silently change topology-shaped knobs the
wire blobs depend on.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import DependencyRuleBook
from repro.serving.checkpoint import GatewayCheckpoint
from repro.streaming import AlertGateway, LearnerConfig
from repro.topology.graph import DependencyGraph

__all__ = ["build_gateway", "restore_gateway"]

#: Construction knobs a restore must reproduce exactly: they shape the
#: wire blobs (shard rings, windows), the flush schedule (learner
#: judgment positions), or the accounting the checkpoint carries.
_STRICT_CONFIG = (
    "backend", "n_planes", "n_shards", "flush_size", "flush_interval",
    "aggregation_window", "correlation_window", "correlation_max_hops",
    "enable_storm_detection", "retain_artifacts", "finalize_every",
    "learn_rules", "enable_qoa", "detect_antipatterns",
)

#: Strict knobs that gained existence after the first release: absent
#: from older checkpoints, which could only have been written with the
#: feature off — so absence compares equal to the off value.
_STRICT_DEFAULTS = {"detect_antipatterns": False}


def build_gateway(
    graph: DependencyGraph,
    config: dict,
    blocker: AlertBlocker | None = None,
    rulebook: DependencyRuleBook | None = None,
) -> AlertGateway:
    """Construct a gateway from a recorded configuration dict."""
    learner_config = config.get("learner_config")
    return AlertGateway(
        graph,
        blocker=blocker,
        rulebook=rulebook,
        n_shards=config["n_shards"],
        n_planes=config["n_planes"],
        aggregation_window=config["aggregation_window"],
        correlation_window=config["correlation_window"],
        correlation_max_hops=config["correlation_max_hops"],
        enable_storm_detection=config["enable_storm_detection"],
        retain_artifacts=config["retain_artifacts"],
        finalize_every=config["finalize_every"],
        backend=config["backend"],
        n_workers=config["n_workers"],
        flush_size=config["flush_size"],
        flush_interval=config["flush_interval"],
        learn_rules=config["learn_rules"],
        learner_config=(
            LearnerConfig(**learner_config) if learner_config else None
        ),
        enable_qoa=config["enable_qoa"],
        # ``get``: absent from pre-online-detection checkpoints, which
        # could only have been written with detection off.  Strictness
        # still holds — the _STRICT_CONFIG check compares the *recorded*
        # values, and adopt_checkpoint re-verifies against the state.
        detect_antipatterns=config.get("detect_antipatterns", False),
        sketch_buckets=config.get("sketch_buckets", 4096),
        # Not strict: lanes change where work runs, never what is
        # counted (the lane parity harness pins that down), so a restore
        # may use a different lane count than the checkpoint recorded.
        # Likewise the lane transport and ring geometry: ring vs pipe
        # (and slot sizing) only moves bytes differently, so pre-ring
        # checkpoints restore with the defaults.
        ingress_lanes=config.get("ingress_lanes", 1),
        lane_transport=config.get("lane_transport", "ring"),
        ring_slot_size=config.get("ring_slot_size"),
        ring_slots=config.get("ring_slots"),
        # Worker recovery is likewise non-strict: snapshot/journal replay
        # reproduces the exact same accounting, so pre-fleet checkpoints
        # restore with recovery off and current services may opt in.
        worker_recovery=config.get("worker_recovery", False),
        worker_checkpoint_every=config.get("worker_checkpoint_every", 64),
        worker_timeout=config.get("worker_timeout", 30.0),
    )


def restore_gateway(
    checkpoint: GatewayCheckpoint,
    graph: DependencyGraph,
    rulebook: DependencyRuleBook | None = None,
    expected_config: dict | None = None,
) -> AlertGateway:
    """Rebuild a live gateway from a checkpoint (bit-identical continue).

    ``expected_config`` is the configuration the caller *would* use for
    a fresh boot; when given, any strict-knob drift against the
    checkpoint fails loudly instead of resuming a stream whose flush
    schedule or shard rings no longer match its own history.
    """
    config = checkpoint.config
    if expected_config is not None:
        drift = {
            key: (
                config.get(key, _STRICT_DEFAULTS.get(key)),
                expected_config.get(key, _STRICT_DEFAULTS.get(key)),
            )
            for key in _STRICT_CONFIG
            if config.get(key, _STRICT_DEFAULTS.get(key))
            != expected_config.get(key, _STRICT_DEFAULTS.get(key))
        }
        if drift:
            details = ", ".join(
                f"{key}: checkpoint={have!r} requested={want!r}"
                for key, (have, want) in sorted(drift.items())
            )
            raise ValidationError(
                f"checkpoint configuration drift — restore would not "
                f"continue the same stream ({details}); restore with the "
                f"recorded configuration or start a fresh service directory"
            )
    # The blocker starts empty on purpose: adopt_checkpoint rebuilds the
    # table to exactly the checkpointed rules (configured + learned).
    gateway = build_gateway(
        graph, config, blocker=AlertBlocker(), rulebook=rulebook,
    )
    gateway.adopt_checkpoint(checkpoint.restore_state())
    return gateway
