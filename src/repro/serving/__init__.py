"""Durable serving: long-running alert-gateway processes.

Everything below :mod:`repro.streaming` is an in-memory library; this
package makes it a *service*.  :class:`AlertGatewayService` owns one
service directory and gives the gateway the production life cycle the
paper's mitigation chain implies — write-ahead journalled ingest,
periodic checkpoints at flush barriers, crash recovery that lands
bit-identical to an uninterrupted run, graceful signal-driven shutdown,
and an operator analytics surface (``repro serve`` / ``repro ops``).

Layering:

* :mod:`repro.serving.checkpoint` — the versioned, checksummed snapshot
  format (``RCK1``) plus writer/loader with retention;
* :mod:`repro.serving.journal` — the length-prefixed, CRC'd event
  journal (``RCJ1``) that closes the snapshot-to-crash gap;
* :mod:`repro.serving.state` — capture/restore glue with configuration
  drift detection;
* :mod:`repro.serving.service` — the long-running service;
* :mod:`repro.serving.analytics` — operator views over live status
  payloads or cold snapshots.
"""

from repro.serving.analytics import (
    render_detection,
    render_ops_report,
    render_plane_health,
    render_qoa_scoreboard,
    render_rule_history,
    render_storm_timeline,
    status_of_checkpoint,
)
from repro.serving.checkpoint import (
    CheckpointError,
    CheckpointLoader,
    CheckpointWriter,
    ChecksumError,
    GatewayCheckpoint,
    checkpoint_of_gateway,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.serving.journal import (
    JournalError,
    JournalWriter,
    journal_files,
    journal_path,
    read_journal,
)
from repro.serving.service import STATUS_FILENAME, AlertGatewayService
from repro.serving.state import build_gateway, restore_gateway

__all__ = [
    "AlertGatewayService",
    "STATUS_FILENAME",
    "GatewayCheckpoint",
    "CheckpointWriter",
    "CheckpointLoader",
    "CheckpointError",
    "ChecksumError",
    "checkpoint_of_gateway",
    "encode_checkpoint",
    "decode_checkpoint",
    "JournalWriter",
    "JournalError",
    "journal_path",
    "journal_files",
    "read_journal",
    "build_gateway",
    "restore_gateway",
    "status_of_checkpoint",
    "render_ops_report",
    "render_qoa_scoreboard",
    "render_storm_timeline",
    "render_rule_history",
    "render_plane_health",
    "render_detection",
]
