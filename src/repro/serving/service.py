"""The long-running alert-gateway service: durable ingest with recovery.

:class:`AlertGatewayService` wraps one
:class:`~repro.streaming.gateway.AlertGateway` with the production
life cycle the paper's mitigation chain implies but one-shot CLI runs
cannot provide:

* **write-ahead journalling** — every accepted batch is appended to the
  event journal *before* the gateway processes it;
* **periodic checkpoints** — at natural flush barriers only, so with
  rule learning enabled the checkpoint never perturbs the learner's
  judgment schedule (a forced flush is a barrier, like a scale event);

The journal has three durability tiers (``journal_mode``), because
serialising a batch costs more than the gateway spends processing it:

* ``"lazy"`` (default) — appends are buffered in memory; a snapshot
  *discards* the buffer it covers unserialised, a graceful stop commits
  the tail.  Steady-state durability cost is the snapshot alone; a hard
  kill loses at most the events since the last snapshot (replay them
  from the source, from the restored position).  This is the
  Flink-style contract: checkpoint + source replay.
* ``"batch"`` — every append is serialised and flushed to the OS
  before the gateway sees the batch: a hard kill loses nothing that was
  acknowledged (the journal tail replays it).  For non-replayable
  sources (sockets, pipes).
* ``"sync"`` — ``"batch"`` plus fsync on every journal commit *and*
  every snapshot: survives host death, not just process death.
* **crash recovery** — :meth:`start` restores the newest valid snapshot
  and replays the journal tail, landing bit-identical to a process that
  never died;
* **graceful shutdown** — SIGTERM/SIGINT request a stop; :meth:`stop`
  flushes, snapshots, and releases the backend without draining (the
  stream has not ended — the *process* has);
* **operator surface** — :meth:`status` / :meth:`write_status` expose
  the full accounting, a bounded history ring for storm timelines, live
  QoA scores, the learned-rule event tail, and the service's own
  runtime metrics (checkpoint latency, journal volume, restores).

Ingest arrives either programmatically (:meth:`ingest` /
:meth:`run_stream`), over a newline-delimited-JSON socket
(:meth:`serve_socket`; the line ``STATS`` queries status), or from a
stdin pipe (:meth:`run_lines`).
"""

from __future__ import annotations

import json
import signal
import socket
import socketserver
import threading
import time
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import DependencyRuleBook
from repro.io.traces import alert_from_dict
from repro.serving.checkpoint import (
    CheckpointLoader,
    CheckpointWriter,
    checkpoint_of_gateway,
)
from repro.serving.journal import JournalWriter, journal_files, read_journal
from repro.serving.state import build_gateway, restore_gateway
from repro.streaming.gateway import AlertGateway
from repro.streaming.stats import GatewayStats
from repro.telemetry.runtime import RuntimeMetrics
from repro.topology.graph import DependencyGraph

__all__ = ["AlertGatewayService", "STATUS_FILENAME"]

STATUS_FILENAME = "stats.json"


class AlertGatewayService:
    """A durable, restartable gateway process around one service directory."""

    def __init__(
        self,
        graph: DependencyGraph,
        data_dir: str | Path,
        *,
        blocker: AlertBlocker | None = None,
        rulebook: DependencyRuleBook | None = None,
        checkpoint_every: int = 4096,
        retain_checkpoints: int = 3,
        journal_mode: str = "lazy",
        sync_journal: bool = False,
        history_limit: int = 288,
        metrics: RuntimeMetrics | None = None,
        **gateway_kwargs,
    ) -> None:
        if checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be at least 1")
        if sync_journal:
            journal_mode = "sync"
        if journal_mode not in ("lazy", "batch", "sync"):
            raise ValidationError(
                f"journal_mode must be 'lazy', 'batch' or 'sync', "
                f"not {journal_mode!r}"
            )
        self.graph = graph
        self.data_dir = Path(data_dir)
        self.blocker = blocker
        self.rulebook = rulebook
        self.checkpoint_every = int(checkpoint_every)
        self.journal_mode = journal_mode
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self._gateway_kwargs = dict(gateway_kwargs)
        self.gateway: AlertGateway | None = None
        self._writer = CheckpointWriter(
            self.data_dir, retain=retain_checkpoints,
            sync=journal_mode == "sync",
        )
        self._loader = CheckpointLoader(self.data_dir)
        self._journal: JournalWriter | None = None
        self._epoch = 0
        self._since_checkpoint = 0
        self.checkpoints_written = 0
        self.recovered_from: int | None = None
        self.replayed_events = 0
        self.history: deque[dict] = deque(maxlen=history_limit)
        self._lock = threading.RLock()
        self._stop_requested = False
        self._draining = False
        self._server: socketserver.ThreadingTCPServer | None = None
        self._server_thread: threading.Thread | None = None
        # Wall clock is an informational stamp only — NTP steps make it
        # non-monotonic, so every *duration* derives from the monotonic
        # anchor instead.
        self._started_at = time.time()
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------
    def start(self) -> str:
        """Boot the gateway: fresh, or restored from snapshot + journal.

        Returns ``"fresh"`` or ``"restored"``.  Restore picks the newest
        snapshot that passes checksum verification, then replays every
        journal record the snapshot has not seen (slicing partially-
        covered records), so the resumed stream continues at exactly the
        position the dead process had made durable — everything it
        accepted under ``journal_mode="batch"``/``"sync"``, the last
        snapshot plus any committed tail under ``"lazy"`` (re-feed the
        gap from the source, starting at :attr:`input_alerts`).
        """
        with self._lock:
            if self.gateway is not None:
                raise ValidationError("service already started")
            # The fresh gateway is built first either way: it is the
            # boot path when no snapshot exists, and the configuration
            # reference for drift detection when one does.
            fresh = build_gateway(
                self.graph,
                self._fresh_config(),
                blocker=self.blocker,
                rulebook=self.rulebook,
            )
            checkpoint = self._loader.latest()
            if checkpoint is None:
                # No snapshot — but a crash before the first checkpoint
                # still leaves journal records at epoch 0 to replay.
                self.gateway = fresh
                self._epoch = 0
                self.replayed_events = self._replay_journals(0)
                if self.replayed_events:
                    self.recovered_from = 0
                    self.metrics.increment("restores")
                    outcome = "restored"
                else:
                    outcome = "fresh"
            else:
                expected = fresh.checkpoint_config()
                fresh.close()
                started = time.perf_counter()
                self.gateway = restore_gateway(
                    checkpoint, self.graph, rulebook=self.rulebook,
                    expected_config=expected,
                )
                self._epoch = checkpoint.seq
                self.recovered_from = checkpoint.seq
                self.replayed_events = self._replay_journals(checkpoint.seq)
                self.metrics.observe(
                    "restore_seconds", time.perf_counter() - started,
                )
                self.metrics.increment("restores")
                outcome = "restored"
            self._open_journal()
            self._since_checkpoint = 0
            self._draining = False
            return outcome

    def _fresh_config(self) -> dict:
        """The gateway kwargs as a recorded-config-shaped dict."""
        probe = AlertGateway(
            self.graph, blocker=AlertBlocker(), **self._gateway_kwargs,
        )
        config = probe.checkpoint_config()
        probe.close()
        return config

    def _replay_journals(self, from_epoch: int) -> int:
        """Replay every journal record newer than the restored snapshot."""
        gateway = self.gateway
        replayed = 0
        for epoch, _part, path in journal_files(self.data_dir):
            if epoch < from_epoch:
                continue
            _header, records = read_journal(path)
            for start_index, alerts in records:
                have = gateway.stats.input_alerts
                if start_index + len(alerts) <= have:
                    continue  # fully covered by the snapshot
                gateway.ingest_batch(alerts[max(have - start_index, 0):])
                replayed += start_index + len(alerts) - max(have, start_index)
        self.metrics.increment("journal_replayed_events", replayed)
        return replayed

    def _open_journal(self) -> None:
        parts = [
            part for epoch, part, _ in journal_files(self.data_dir)
            if epoch == self._epoch
        ]
        part = max(parts) + 1 if parts else 0
        self._journal = JournalWriter(
            self.data_dir, self._epoch, part,
            sync=self.journal_mode == "sync",
            lazy=self.journal_mode == "lazy",
        )

    def stop(self, drain: bool = False) -> GatewayStats | None:
        """Graceful shutdown: flush, snapshot, release; idempotent-ish.

        With ``drain=True`` the stream is declared *finished*: the
        gateway drains (finalising every open window) and the final
        stats are returned — no snapshot is written, because a drained
        gateway is an ended stream, not a resumable one.  The default
        preserves the stream: force-flush, snapshot, write status, and
        release the backend so a later :meth:`start` resumes exactly
        here.
        """
        # Raised *before* taking the lock: socket handler threads already
        # queued on the lock re-check it inside ingest(), so no event can
        # slip in between the drain/flush and the snapshot/close.
        self._draining = True
        with self._lock:
            gateway = self.gateway
            if gateway is None:
                return None
            self.close_socket()
            if drain:
                stats = gateway.drain()
                events = (
                    [
                        [e.kind, e.strategy_id, e.at_input, e.at_time,
                         e.expires_at, e.reason]
                        for e in gateway.learner.events[-100:]
                    ]
                    if gateway.learner is not None else None
                )
                self._close_journal()
                self.write_status(final_stats=stats, final_rule_events=events)
                self.gateway = None
                return stats
            self.checkpoint(force=True)
            self.write_status()
            self._close_journal()
            gateway.close()
            self.gateway = None
            return None

    def abort(self) -> None:
        """Simulate a crash: release OS resources, write *nothing*.

        Test/chaos helper — the service directory is left exactly as a
        ``kill -9`` would leave it (snapshot possibly stale, journal
        possibly ahead of it, any *uncommitted* lazy-mode buffer lost),
        which is what :meth:`start` recovery is specified against.
        """
        self._draining = True
        with self._lock:
            self.close_socket()
            if self._journal is not None:
                self._journal.abandon()
                self._journal = None
            if self.gateway is not None:
                self.gateway.close()
                self.gateway = None

    def _close_journal(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    @property
    def input_alerts(self) -> int:
        """Events accepted so far (snapshot position + live ingest)."""
        gateway = self.gateway
        return gateway.stats.input_alerts if gateway is not None else 0

    def ingest(self, alerts: Iterable[Alert]) -> int:
        """Accept one batch: journal first, then process, then maybe snap.

        Raises :class:`~repro.common.errors.ValidationError` once a stop
        or abort is in flight: a batch accepted concurrently with the
        drain-and-snapshot would be journalled into an epoch the final
        snapshot never covers (or silently dropped after the gateway is
        released), so late callers get a refusal they can ack instead.
        """
        if self._draining:
            raise ValidationError("service is draining; ingest refused")
        with self._lock:
            if self._draining:
                raise ValidationError("service is draining; ingest refused")
            gateway = self._require_gateway()
            batch = list(alerts)
            if not batch:
                return 0
            self._journal.append(gateway.stats.input_alerts, batch)
            self.metrics.increment("journal_records")
            self.metrics.increment("journal_events", len(batch))
            count = gateway.ingest_batch(batch)
            self._since_checkpoint += count
            if self._since_checkpoint >= self.checkpoint_every:
                # Only at a natural barrier — a due-but-buffered tick
                # simply stays due until a later batch lands on one.
                self.checkpoint(force=False)
            return count

    def run_stream(
        self, source: Iterable[Alert], batch_size: int = 256,
    ) -> str:
        """Feed a source until it ends or a stop is requested.

        Returns ``"exhausted"`` or ``"stopped"`` — callers decide
        whether that means :meth:`stop(drain=True) <stop>` (a finished
        replay) or :meth:`stop` (a paused stream).
        """
        if batch_size < 1:
            raise ValidationError("batch_size must be at least 1")
        batch: list[Alert] = []
        for alert in source:
            if self._stop_requested:
                if batch:
                    self.ingest(batch)
                return "stopped"
            batch.append(alert)
            if len(batch) >= batch_size:
                self.ingest(batch)
                batch = []
        if batch:
            self.ingest(batch)
        return "stopped" if self._stop_requested else "exhausted"

    def run_lines(self, lines: Iterable[str], batch_size: int = 256) -> str:
        """Stdin-pipe mode: one JSON alert per line (blank lines skipped)."""
        def decode() -> Iterator[Alert]:
            for line in lines:
                line = line.strip()
                if line:
                    yield alert_from_dict(json.loads(line))
        return self.run_stream(decode(), batch_size=batch_size)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, force: bool = False) -> Path | None:
        """Write one snapshot; rotates the journal to a new epoch.

        Without ``force`` the call is a no-op unless the gateway sits at
        a natural flush barrier (returns ``None`` otherwise); with
        ``force`` a flush is issued first — a barrier of its own, the
        same caveat as ``scale_planes`` when rule learning is on.
        """
        with self._lock:
            gateway = self._require_gateway()
            if not gateway.at_flush_barrier:
                if not force:
                    return None
                gateway.flush()
            started = time.perf_counter()
            seq = self._epoch + 1
            snapshot = checkpoint_of_gateway(gateway, seq)
            path = self._writer.write(snapshot)
            elapsed = time.perf_counter() - started
            # Every buffered journal record is now covered by the
            # snapshot: drop it unserialised instead of committing.
            self._journal.discard_pending()
            self._close_journal()
            self._epoch = seq
            self._open_journal()
            self._prune_journals()
            self._since_checkpoint = 0
            self.checkpoints_written += 1
            self.metrics.observe("checkpoint_write_seconds", elapsed)
            self.metrics.increment("checkpoints")
            if path.exists():  # retention may already have pruned it
                self.metrics.gauge("checkpoint_bytes", path.stat().st_size)
            self._record_tick(checkpoint_seq=seq, checkpoint_seconds=elapsed)
            return path

    def _prune_journals(self) -> None:
        """Drop journal epochs no retained snapshot could ever need."""
        snapshots = self._loader.paths()
        if not snapshots:
            return
        oldest = min(int(p.stem.split("-")[1]) for p in snapshots)
        for epoch, _part, path in journal_files(self.data_dir):
            if epoch < oldest:
                path.unlink(missing_ok=True)

    def _record_tick(self, **extra) -> None:
        gateway = self.gateway
        stats = gateway.stats
        tick = {
            "at_input": stats.input_alerts,
            "watermark": stats.watermark,
            "blocked": stats.blocked_alerts,
            "aggregates": stats.aggregates_emitted,
            "clusters": stats.clusters_finalized,
            "storm_episodes": stats.storm_episodes,
            "emerging_flags": stats.emerging_flags,
            "rules_active": stats.rules_active,
            "wall_time": time.time(),  # informational stamp only
            "uptime": time.monotonic() - self._started_monotonic,
        }
        tick.update(extra)
        self.history.append(tick)

    # ------------------------------------------------------------------
    # operator surface
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """The full operator view as one JSON-safe dict."""
        with self._lock:
            gateway = self._require_gateway()
            stats = gateway.stats
            payload = {
                "service": {
                    "data_dir": str(self.data_dir),
                    "started_at": self._started_at,
                    "uptime_seconds": time.monotonic() - self._started_monotonic,
                    "epoch": self._epoch,
                    "checkpoints_written": self.checkpoints_written,
                    "checkpoint_every": self.checkpoint_every,
                    "since_checkpoint": self._since_checkpoint,
                    "recovered_from": self.recovered_from,
                    "replayed_events": self.replayed_events,
                    "journal": {
                        "mode": self.journal_mode,
                        "path": str(self._journal.path)
                        if self._journal is not None else None,
                        "records": self._journal.records
                        if self._journal is not None else 0,
                        "pending_events": self._journal.pending_events
                        if self._journal is not None else 0,
                    },
                },
                "gateway": stats.snapshot(),
                "qoa_live": (
                    gateway.qoa.snapshot() if gateway.qoa is not None else None
                ),
                "detection_live": (
                    gateway.detectors.summary()
                    if gateway.detectors is not None else None
                ),
                "rule_events": (
                    [
                        [e.kind, e.strategy_id, e.at_input, e.at_time,
                         e.expires_at, e.reason]
                        for e in gateway.learner.events[-100:]
                    ]
                    if gateway.learner is not None else None
                ),
                "history": list(self.history),
                "metrics": self.metrics.snapshot(),
            }
            return payload

    def write_status(
        self,
        final_stats: GatewayStats | None = None,
        final_rule_events: list | None = None,
    ) -> Path:
        """Persist :meth:`status` (or final drained stats) to ``stats.json``."""
        path = self.data_dir / STATUS_FILENAME
        if final_stats is not None:
            payload = {
                "service": {
                    "data_dir": str(self.data_dir),
                    "epoch": self._epoch,
                    "checkpoints_written": self.checkpoints_written,
                    "drained": True,
                },
                "gateway": final_stats.snapshot(),
                "qoa_live": None,
                "rule_events": final_rule_events,
                "history": list(self.history),
                "metrics": self.metrics.snapshot(),
            }
        else:
            payload = self.status()
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    # ------------------------------------------------------------------
    # signals and sockets
    # ------------------------------------------------------------------
    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful stop request."""
        signal.signal(signal.SIGTERM, self._handle_signal)
        signal.signal(signal.SIGINT, self._handle_signal)

    def _handle_signal(self, signum, _frame) -> None:
        self.metrics.increment(f"signal_{signal.Signals(signum).name}")
        self.request_stop()

    def request_stop(self) -> None:
        """Ask the ingest loops to wind down at the next batch boundary."""
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        """Whether a graceful stop has been requested."""
        return self._stop_requested

    def serve_socket(
        self, host: str = "127.0.0.1", port: int = 0,
    ) -> tuple[str, int]:
        """Listen for newline-delimited JSON alerts; returns (host, port).

        Line protocol: a JSON object per line is one alert
        (:func:`~repro.io.traces.alert_from_dict` fields); the literal
        line ``STATS`` answers with one JSON status line.  Connections
        are handled on daemon threads; ingest is serialised through the
        service lock, so accounting stays exact under concurrency.  Once
        a stop/abort is in flight the connection gets one ``REFUSED
        <reason>`` line and closes — the sender knows its tail was not
        accepted and can replay it after the restart.
        """
        if self._server is not None:
            raise ValidationError("socket server already running")
        service = self

        class Handler(socketserver.StreamRequestHandler):
            def _ingest(self, batch: list[Alert]) -> bool:
                try:
                    service.ingest(batch)
                except ValidationError as exc:
                    # Draining (or already stopped): refuse loudly
                    # instead of racing the shutdown snapshot.
                    try:
                        self.wfile.write(f"REFUSED {exc}\n".encode("utf-8"))
                        self.wfile.flush()
                    except OSError:
                        pass  # peer already gone; refusal is best-effort
                    return False
                return True

            def handle(self) -> None:
                batch: list[Alert] = []
                for raw in self.rfile:
                    line = raw.decode("utf-8").strip()
                    if not line:
                        continue
                    if line == "STATS":
                        if batch:
                            if not self._ingest(batch):
                                return
                            batch = []
                        reply = json.dumps(service.status()) + "\n"
                        self.wfile.write(reply.encode("utf-8"))
                        self.wfile.flush()
                        continue
                    batch.append(alert_from_dict(json.loads(line)))
                    if len(batch) >= 256:
                        if not self._ingest(batch):
                            return
                        batch = []
                if batch:
                    self._ingest(batch)

        class Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True
            address_family = (
                socket.AF_INET6 if ":" in host else socket.AF_INET
            )

        self._server = Server((host, port), Handler)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="serving-ingest",
            daemon=True,
        )
        self._server_thread.start()
        bound = self._server.server_address
        return str(bound[0]), int(bound[1])

    def close_socket(self) -> None:
        """Stop the ingest socket (no-op when not listening)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
            self._server = None
            self._server_thread = None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_gateway(self) -> AlertGateway:
        if self.gateway is None:
            raise ValidationError(
                "service not started (or already stopped); call start()"
            )
        return self.gateway
