"""The operator analytics surface: render service state for humans.

Everything here consumes *plain dicts* — either the live status payload
from :meth:`AlertGatewayService.status()
<repro.serving.service.AlertGatewayService.status>` (also persisted as
``stats.json``), or a status synthesised from a checkpoint on disk via
:func:`status_of_checkpoint` — so ``repro ops`` can inspect a running
service, a stopped one, or a bare snapshot with the same code path and
no live gateway required.

The views map onto the paper's operator concerns: the QoA scoreboard
surfaces the lowest-quality alert strategies (the anti-pattern ranking
of §V), the storm timeline shows R4 episode pressure over the
checkpoint history, the rule history explains every R1
promotion/demotion the online learner made, and plane health shows how
the region-partitioned execution planes share the load.
"""

from __future__ import annotations

from repro.serving.checkpoint import GatewayCheckpoint
from repro.streaming.detectors import StreamingDetectorSuite
from repro.streaming.qoa import StreamQoAScorer

__all__ = [
    "status_of_checkpoint",
    "render_qoa_scoreboard",
    "render_storm_timeline",
    "render_rule_history",
    "render_plane_health",
    "render_detection",
    "render_ops_report",
]


def status_of_checkpoint(checkpoint: GatewayCheckpoint) -> dict:
    """A status-shaped dict from a snapshot — no gateway boot needed.

    Checkpoints record the gateway's restorable accounting, the QoA
    scores as of the barrier, and the learner's full event timeline, so
    the operator views render from a cold snapshot exactly as from a
    live service (minus live-only fields: runtime metrics, journal
    position, history ring).
    """
    stats = checkpoint.state["stats"]
    learner = checkpoint.state.get("learner")
    config = checkpoint.config
    # stats.qoa freezes only at drain; a checkpoint carries the live
    # scorer's counters instead — rebuild it to score without a gateway.
    qoa_state = checkpoint.state.get("qoa")
    if qoa_state is not None:
        scorer = StreamQoAScorer()
        scorer.restore_state(qoa_state)
        qoa_scores = scorer.snapshot()
    else:
        qoa_scores = stats["qoa"]
    # Likewise detection: stats.detection freezes only at drain, but a
    # checkpoint carries the suite's full folded state — rebuild it to
    # answer "what would the detectors say right now" from a cold
    # snapshot, findings included.
    detectors_state = checkpoint.state.get("detectors")
    if detectors_state is not None:
        suite = StreamingDetectorSuite(
            sketch_buckets=config.get("sketch_buckets", 4096),
        )
        suite.restore_state(detectors_state)
        detection = suite.summary()
        detection_detail = [
            [finding.pattern, finding.subject, finding.score, finding.evidence]
            for items in suite.findings().values()
            for finding in items
        ]
    else:
        detection = stats.get("detection")
        detection_detail = None
    gateway = {
        "backend": config["backend"],
        "n_planes": config["n_planes"],
        "n_shards": config["n_shards"],
        "n_workers": config["n_workers"],
        "flush_size": config["flush_size"],
        "input_alerts": stats["input_alerts"],
        "blocked_alerts": stats["blocked_alerts"],
        "aggregates": stats["aggregates_emitted"],
        "clusters": stats["clusters_finalized"],
        "storm_episodes": stats["storm_episodes"],
        "emerging_flags": stats["emerging_flags"],
        "late_events": stats["late_events"],
        "flushes": stats["flushes"],
        "rebalances": stats["rebalances"],
        "plane_scales": stats["plane_scales"],
        "scales": stats["scales"],
        "watermark": stats["watermark"],
        "total_reduction": (
            1.0 - stats["clusters_finalized"] / stats["input_alerts"]
            if stats["input_alerts"] else 0.0
        ),
        "throughput": None,  # wall-clock does not survive a snapshot
        "planes": [
            dict(stats["planes"][key])
            for key in sorted(stats["planes"], key=int)
        ],
        "learner": {
            "enabled": learner is not None,
            "rules_promoted": stats["rules_promoted"],
            "rules_renewed": stats["rules_renewed"],
            "rules_demoted": stats["rules_demoted"],
            "rules_expired": stats["rules_expired"],
            "rules_active": stats["rules_active"],
        },
        "qoa": qoa_scores,
        "detection": detection,
    }
    return {
        "service": {
            "source": "checkpoint",
            "epoch": checkpoint.seq,
            "created_at": checkpoint.created_at,
        },
        "gateway": gateway,
        "qoa_live": qoa_scores,
        "detection_detail": detection_detail,
        "rule_events": learner["events"] if learner is not None else None,
        "history": [],
        "metrics": None,
    }


def render_qoa_scoreboard(
    status: dict, limit: int = 10, min_alerts: int = 5,
) -> str:
    """Worst alert strategies by streaming QoA, one line each."""
    scores = status.get("qoa_live") or status["gateway"].get("qoa")
    if not scores:
        return "  (QoA scoring disabled or no scores yet)"
    scored = [
        (strategy_id, row) for strategy_id, row in scores.items()
        if row["seen"] >= min_alerts
    ]
    scored.sort(key=lambda item: (item[1]["overall"], item[0]))
    lines = [
        f"  {'strategy':<24} {'overall':>7} {'coverage':>8} "
        f"{'action':>7} {'distinct':>8} {'alerts':>8}"
    ]
    for strategy_id, row in scored[:limit]:
        lines.append(
            f"  {strategy_id:<24} {row['overall']:>7.2f} "
            f"{row['coverage']:>8.2f} {row['actionability']:>7.2f} "
            f"{row['distinctness']:>8.2f} {row['seen']:>8,.0f}"
        )
    if len(scored) > limit:
        lines.append(f"  ... and {len(scored) - limit} more strategies")
    return "\n".join(lines)


def render_storm_timeline(status: dict, limit: int = 12) -> str:
    """R4 storm pressure across the checkpoint history ring.

    Each row is one checkpoint tick; the deltas between rows show where
    in the stream storm episodes and emerging-storm flags landed.
    """
    history = status.get("history") or []
    gateway = status["gateway"]
    if not history:
        return (
            f"  (no checkpoint history; totals: "
            f"{gateway['storm_episodes']} storm episodes, "
            f"{gateway['emerging_flags']} emerging flags)"
        )
    lines = [
        f"  {'at input':>10} {'watermark':>12} {'storms':>7} "
        f"{'+new':>5} {'emerging':>9} {'rules':>6}"
    ]
    window = list(history)[-limit:]
    previous = None
    for tick in window:
        new = (
            tick["storm_episodes"] - previous["storm_episodes"]
            if previous is not None else tick["storm_episodes"]
        )
        watermark = tick["watermark"]
        watermark_text = f"{watermark:,.0f}" if watermark is not None else "-"
        lines.append(
            f"  {tick['at_input']:>10,} {watermark_text:>12} "
            f"{tick['storm_episodes']:>7,} {new:>5,} "
            f"{tick['emerging_flags']:>9,} {tick['rules_active']:>6,}"
        )
        previous = tick
    if len(history) > limit:
        lines.append(f"  ... {len(history) - limit} older ticks elided")
    return "\n".join(lines)


def render_rule_history(status: dict, limit: int = 20) -> str:
    """The online learner's R1 rule event tail, newest last."""
    events = status.get("rule_events")
    if events is None:
        return "  (rule learning disabled)"
    if not events:
        return "  (no rule events yet)"
    lines = []
    for kind, strategy_id, at_input, at_time, expires_at, reason in events[-limit:]:
        expiry = f" until {expires_at:,.0f}" if expires_at is not None else ""
        lines.append(
            f"  @{at_input:>9,} {kind:<9} {strategy_id:<24}"
            f"{expiry}  {reason}"
        )
    if len(events) > limit:
        lines.append(f"  ... {len(events) - limit} older events elided")
    return "\n".join(lines)


def render_plane_health(status: dict) -> str:
    """Per-plane load share and volume accounting, one line per plane."""
    gateway = status["gateway"]
    planes = gateway.get("planes") or []
    if not planes:
        return "  (no per-plane accounting yet — nothing flushed)"
    total = sum(plane["processed"] for plane in planes) or 1
    lines = []
    for plane in planes:
        regions = ",".join(plane.get("regions", ())) or "-"
        share = plane["processed"] / total
        lines.append(
            f"  plane {plane['plane_id']} [{regions}]: "
            f"in {plane['processed']:>8,} ({share:>5.1%})  "
            f"blocked {plane['blocked']:>7,}  "
            f"groups {plane['aggregates']:>6,}  "
            f"clusters {plane['clusters']:>5,}  "
            f"storms {plane['storm_episodes']:>4,}"
        )
    return "\n".join(lines)


def render_detection(status: dict, limit: int = 15) -> str:
    """Online anti-pattern verdicts (A1-A3 + sketch-R4), with detail.

    Counts come from the detector suite's summary (live: frozen at
    drain; checkpoint: recomputed from the folded state); the per-
    finding detail rows exist only on the checkpoint path.
    """
    detection = (
        status["gateway"].get("detection") or status.get("detection_live")
    )
    if not detection:
        return "  (online detection disabled or no digests folded yet)"
    found = detection.get("findings", {})
    lines = [
        f"  strategies observed {detection.get('strategies', 0):,}  "
        f"stat rows {detection.get('stat_rows', 0):,}  "
        f"sketch-R4 flags {detection.get('emerging', 0):,}",
        f"  A1 unclear titles {found.get('A1', 0):,}   "
        f"A2 misconfigured severity {found.get('A2', 0):,}   "
        f"A3 stale/duplicate definitions {found.get('A3', 0):,}",
    ]
    detail = status.get("detection_detail")
    if detail:
        for pattern, subject, score, evidence in detail[:limit]:
            lines.append(f"  {pattern} {subject:<24} {score:>4.2f}  {evidence}")
        if len(detail) > limit:
            lines.append(f"  ... and {len(detail) - limit} more findings")
    return "\n".join(lines)


def render_ops_report(status: dict) -> str:
    """The full operator report: service, volumes, QoA, storms, rules."""
    service = status.get("service", {})
    gateway = status["gateway"]
    lines = ["service"]
    if service.get("source") == "checkpoint":
        lines.append(
            f"  checkpoint epoch {service['epoch']} "
            f"(created_at {service['created_at']:.0f})"
        )
    else:
        journal = service.get("journal") or {}
        lines.append(
            f"  epoch {service.get('epoch', 0)}  "
            f"checkpoints {service.get('checkpoints_written', 0)}  "
            f"since last {service.get('since_checkpoint', 0):,} events"
        )
        if service.get("recovered_from") is not None:
            lines.append(
                f"  recovered from snapshot {service['recovered_from']} "
                f"(+{service.get('replayed_events', 0):,} journal events)"
            )
        if journal.get("path"):
            lines.append(
                f"  journal {journal['path']} ({journal['records']:,} records)"
            )
    backend = gateway["backend"]
    if backend in ("thread", "process"):
        backend += f" x{gateway['n_workers']} workers"
    throughput = gateway.get("throughput")
    lines += [
        "gateway",
        f"  planes {gateway['n_planes']} x {gateway['n_shards']} shards "
        f"({backend}, flush {gateway['flush_size']})",
        f"  input {gateway['input_alerts']:,}  "
        f"blocked {gateway['blocked_alerts']:,}  "
        f"groups {gateway['aggregates']:,}  "
        f"clusters {gateway['clusters']:,}  "
        f"reduction {gateway['total_reduction']:.1%}"
        + (f"  ({throughput:,.0f}/s)" if throughput else ""),
        "QoA scoreboard (worst strategies)",
        render_qoa_scoreboard(status),
        "storm timeline",
        render_storm_timeline(status),
        "rule history",
        render_rule_history(status),
        "online detection",
        render_detection(status),
        "plane health",
        render_plane_health(status),
    ]
    metrics = status.get("metrics")
    if metrics:
        lines.append("runtime metrics")
        for name in sorted(metrics.get("counters", {})):
            lines.append(f"  {name:<32} {metrics['counters'][name]:>12,}")
        for name in sorted(metrics.get("timers", {})):
            row = metrics["timers"][name]
            lines.append(
                f"  {name:<32} n={row['count']:<5,} "
                f"mean {row['mean'] * 1e3:.2f}ms  max {row['max'] * 1e3:.2f}ms"
            )
    return "\n".join(lines)
