"""The event journal: length-prefixed, CRC'd ingest records.

Snapshots are periodic; the journal closes the gap between the last
snapshot and the crash.  Every ingest batch is appended *before* the
gateway processes it (write-ahead), so after a crash the journal is
always at or ahead of the restored snapshot, never behind — replaying
the tail reproduces exactly the events the dead process had accepted.

File layout::

    RCJ1 | u32 header length | header JSON          (epoch metadata)
    u32 payload length | u32 crc32 | payload        (record, repeated)

A record's payload is ``u64 start index`` (the gateway's
``input_alerts`` when the batch was accepted) followed by the batch
wire-packed with :func:`~repro.streaming.wire.pack_alerts`.  Records
are self-describing, so replay can slice out exactly the alerts a
restored snapshot has not yet seen.

Corruption semantics are asymmetric on purpose:

* a **truncated final record** is the expected signature of a crash
  mid-append — the reader stops cleanly before it and returns every
  complete record;
* a **complete record whose CRC fails**, or garbage mid-file, means the
  log itself is damaged — the reader raises :class:`JournalError`
  rather than silently dropping acknowledged events.

The writer has three durability tiers (serialising an alert batch costs
more than the gateway spends *processing* it, so eager journalling is a
throughput decision, not a default):

* ``lazy=True`` — :meth:`~JournalWriter.append` only buffers the batch
  reference; serialisation and file IO happen at :meth:`commit` time
  (a graceful close, or an explicit flush point).  When a snapshot is
  taken, every buffered record is already covered by it and is
  *discarded unserialised* — the steady-state journal cost is a list
  append.  A hard kill loses the uncommitted tail, bounded by the
  checkpoint cadence — the Flink-style tier: durability comes from the
  snapshot, the journal covers graceful pauses.
* ``lazy=False, sync=False`` — every append is serialised and flushed
  to the OS: survives process death, not host death.
* ``sync=True`` — every commit is also ``fsync``'d: survives host
  death.

Journal files are per *epoch* (the snapshot they follow) and *part*
(incremented on every recovery, so a restarted service never appends to
a file whose tail it would first have to repair).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

from repro.alerting.alert import Alert
from repro.serving.checkpoint import CheckpointError
from repro.streaming.wire import pack_alerts, unpack_alerts

__all__ = [
    "JOURNAL_MAGIC",
    "JOURNAL_VERSION",
    "JournalError",
    "JournalWriter",
    "journal_path",
    "journal_files",
    "read_journal",
]

JOURNAL_MAGIC = b"RCJ1"
JOURNAL_VERSION = 1

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")


class JournalError(CheckpointError):
    """A journal file is structurally damaged (not merely truncated)."""


def journal_path(directory: str | Path, epoch: int, part: int) -> Path:
    """The canonical journal file path for one (epoch, part)."""
    return Path(directory) / f"journal-{epoch:08d}-{part:04d}.rcj"


def journal_files(directory: str | Path) -> list[tuple[int, int, Path]]:
    """All journal files as ``(epoch, part, path)``, replay order."""
    found: list[tuple[int, int, Path]] = []
    for path in Path(directory).glob("journal-*-*.rcj"):
        stem = path.stem  # journal-EEEEEEEE-PPPP
        try:
            _, epoch_text, part_text = stem.split("-")
            found.append((int(epoch_text), int(part_text), path))
        except ValueError:
            continue
    found.sort(key=lambda row: (row[0], row[1]))
    return found


class JournalWriter:
    """Appends write-ahead ingest records to one journal file.

    ``lazy`` buffers appended batches in memory until :meth:`commit`
    (or close); the buffer is bounded by ``max_pending_events`` —
    crossing it forces a commit, so the loss window of a hard kill
    stays bounded even if no snapshot ever fires.
    """

    def __init__(
        self,
        directory: str | Path,
        epoch: int,
        part: int = 0,
        sync: bool = False,
        lazy: bool = False,
        max_pending_events: int = 65536,
    ) -> None:
        self.path = journal_path(directory, epoch, part)
        self.epoch = int(epoch)
        self.part = int(part)
        #: fsync every commit — maximum durability, noticeable cost; off
        #: by default (flush-to-OS still survives process death, just
        #: not host death).
        self.sync = bool(sync)
        #: buffer appends and serialise only at commit points (see the
        #: module docstring's durability tiers).
        self.lazy = bool(lazy)
        self.max_pending_events = int(max_pending_events)
        self.records = 0
        self.records_written = 0
        self._pending: list[tuple[int, list[Alert]]] = []
        self._pending_events = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps({
            "version": JOURNAL_VERSION,
            "epoch": self.epoch,
            "part": self.part,
        }).encode("utf-8")
        self._handle = open(self.path, "xb")
        self._handle.write(JOURNAL_MAGIC + _U32.pack(len(header)) + header)
        self._handle.flush()

    @property
    def pending_events(self) -> int:
        """Events accepted but not yet committed to the file."""
        return self._pending_events

    def append(self, start_index: int, alerts: list[Alert]) -> None:
        """Accept one ingest batch (call *before* ingesting it)."""
        self._pending.append((int(start_index), alerts))
        self._pending_events += len(alerts)
        self.records += 1
        if not self.lazy or self._pending_events >= self.max_pending_events:
            self.commit()

    def commit(self) -> int:
        """Serialise and write every pending record; returns the count."""
        if not self._pending:
            return 0
        chunks = []
        for start_index, alerts in self._pending:
            payload = _U64.pack(start_index) + pack_alerts(alerts)
            chunks.append(_U32.pack(len(payload)))
            chunks.append(_U32.pack(zlib.crc32(payload) & 0xFFFFFFFF))
            chunks.append(payload)
        self._handle.write(b"".join(chunks))
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        committed = len(self._pending)
        self.records_written += committed
        self._pending.clear()
        self._pending_events = 0
        return committed

    def discard_pending(self) -> int:
        """Drop the uncommitted buffer (a snapshot now covers it)."""
        dropped = len(self._pending)
        self._pending.clear()
        self._pending_events = 0
        return dropped

    def close(self) -> None:
        """Commit the tail and close (graceful-shutdown path)."""
        if not self._handle.closed:
            self.commit()
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
            self._handle.close()

    def abandon(self) -> None:
        """Close *without* committing — the crash-simulation path.

        The file keeps exactly what earlier commits flushed to the OS,
        which is what a real ``kill -9`` would have left behind; the
        in-memory pending buffer is lost, as it would be.
        """
        self._pending.clear()
        self._pending_events = 0
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str | Path) -> tuple[dict, list[tuple[int, list[Alert]]]]:
    """Read one journal file: ``(header, [(start_index, alerts), ...])``.

    Tolerates a cleanly-truncated tail (crash mid-append); raises
    :class:`JournalError` on bad magic, header damage, or a CRC mismatch
    of any *complete* record.
    """
    data = Path(path).read_bytes()
    if not data.startswith(JOURNAL_MAGIC):
        raise JournalError(
            f"{path}: not a journal file (magic {data[:4]!r})"
        )
    offset = len(JOURNAL_MAGIC)
    if len(data) < offset + _U32.size:
        raise JournalError(f"{path}: header length truncated")
    (header_len,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    if len(data) < offset + header_len:
        raise JournalError(f"{path}: header truncated")
    try:
        header = json.loads(data[offset:offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"{path}: header damaged: {exc}") from exc
    if header.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"{path}: unsupported journal version {header.get('version')}"
        )
    offset += header_len
    records: list[tuple[int, list[Alert]]] = []
    while offset < len(data):
        if len(data) - offset < 2 * _U32.size:
            break  # torn record header: crash mid-append, stop cleanly
        (length,) = _U32.unpack_from(data, offset)
        (crc,) = _U32.unpack_from(data, offset + _U32.size)
        start = offset + 2 * _U32.size
        if len(data) - start < length:
            break  # torn payload: crash mid-append, stop cleanly
        payload = data[start:start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise JournalError(
                f"{path}: CRC mismatch on complete record at byte {offset}; "
                f"the journal is corrupt (not merely truncated)"
            )
        if length < _U64.size:
            raise JournalError(
                f"{path}: record at byte {offset} too short for a start index"
            )
        (start_index,) = _U64.unpack_from(payload, 0)
        records.append((int(start_index), unpack_alerts(payload[_U64.size:])))
        offset = start + length
    return header, records
