"""Durable gateway checkpoints: versioned, checksummed snapshot files.

A snapshot is one self-describing file::

    RCK1 | u32 header length | header JSON | region blobs | blake2b-16

The JSON header carries everything JSON-safe the gateway captured —
router assignments, the full R1 rule table, learner windows/timeline,
QoA counters, stats — plus the gateway's construction-time configuration
and a blob directory ``[plane, region, length]``.  The binary tail is
the wire-packed per-(plane, region) state
(:func:`~repro.streaming.wire.pack_plane_state` blobs), concatenated in
directory order.  The trailing 16-byte ``blake2b`` digest covers every
byte before it.

Loading is strict by construction: the digest is verified over the raw
bytes *before a single field is parsed*, so a truncated, flipped, or
half-written file raises :class:`ChecksumError` — partial state can
never load.  Durability of the write side comes from the classic
write-to-temp / fsync / atomic-rename dance in :class:`CheckpointWriter`;
a crash mid-write leaves the previous snapshot untouched.
"""

from __future__ import annotations

import json
import os
import struct
import time
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path

from repro.common.errors import ReproError

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "ChecksumError",
    "GatewayCheckpoint",
    "checkpoint_of_gateway",
    "encode_checkpoint",
    "decode_checkpoint",
    "CheckpointWriter",
    "CheckpointLoader",
]

CHECKPOINT_MAGIC = b"RCK1"
CHECKPOINT_VERSION = 1

#: blake2b digest size of the file trailer.
_DIGEST_SIZE = 16
_U32 = struct.Struct(">I")


class CheckpointError(ReproError):
    """A snapshot file is unusable (bad magic, version, or structure)."""


class ChecksumError(CheckpointError):
    """A snapshot file failed integrity verification (corrupt/truncated)."""


@dataclass(slots=True)
class GatewayCheckpoint:
    """One durable capture of a running gateway.

    ``state`` is exactly the dict
    :meth:`~repro.streaming.gateway.AlertGateway.checkpoint_state`
    produced, minus its raw ``blobs`` (held separately so the JSON
    header stays pure text); ``config`` is
    :meth:`~repro.streaming.gateway.AlertGateway.checkpoint_config`.
    """

    seq: int
    created_at: float
    config: dict
    state: dict
    #: ``(plane, region, packed bytes)`` in first-seen region order —
    #: the order ``state["regions"]`` records and restore preserves.
    blobs: list[tuple[int, str, bytes]] = field(default_factory=list)

    @property
    def input_alerts(self) -> int:
        """Stream position of this capture (events ingested)."""
        return int(self.state["stats"]["input_alerts"])

    @property
    def watermark(self) -> float | None:
        """Event-time watermark of this capture."""
        return self.state["stats"]["watermark"]

    def restore_state(self) -> dict:
        """The gateway-facing state dict (blobs re-attached)."""
        state = dict(self.state)
        state["regions"] = [[plane, region] for plane, region, _ in self.blobs]
        state["blobs"] = [blob for _, _, blob in self.blobs]
        return state


def checkpoint_of_gateway(gateway, seq: int, created_at: float | None = None) -> GatewayCheckpoint:
    """Capture ``gateway`` (at a flush barrier) as a checkpoint object."""
    state = gateway.checkpoint_state()
    blobs = [
        (plane, region, blob)
        for (plane, region), blob in zip(state.pop("regions"), state.pop("blobs"))
    ]
    return GatewayCheckpoint(
        seq=int(seq),
        created_at=time.time() if created_at is None else float(created_at),
        config=gateway.checkpoint_config(),
        state=state,
        blobs=blobs,
    )


def encode_checkpoint(checkpoint: GatewayCheckpoint) -> bytes:
    """Serialise a checkpoint to its durable byte form."""
    directory = [
        [plane, region, len(blob)] for plane, region, blob in checkpoint.blobs
    ]
    header = json.dumps({
        "version": CHECKPOINT_VERSION,
        "seq": checkpoint.seq,
        "created_at": checkpoint.created_at,
        "config": checkpoint.config,
        "state": checkpoint.state,
        "blobs": directory,
    }, ensure_ascii=False).encode("utf-8")
    parts = [CHECKPOINT_MAGIC, _U32.pack(len(header)), header]
    parts.extend(blob for _, _, blob in checkpoint.blobs)
    body = b"".join(parts)
    return body + blake2b(body, digest_size=_DIGEST_SIZE).digest()


def decode_checkpoint(data: bytes) -> GatewayCheckpoint:
    """Parse durable bytes back into a checkpoint — integrity first.

    The digest is verified over the raw bytes before anything is
    parsed; any mismatch (corruption, truncation, a foreign file of the
    right magic) raises :class:`ChecksumError` and nothing partial is
    ever returned.
    """
    if len(data) < len(CHECKPOINT_MAGIC) + _U32.size + _DIGEST_SIZE:
        raise ChecksumError(
            f"checkpoint truncated: {len(data)} byte(s) is shorter than "
            f"the minimum frame"
        )
    if not data.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(
            f"not a checkpoint file (magic {data[:4]!r}, "
            f"expected {CHECKPOINT_MAGIC!r})"
        )
    body, digest = data[:-_DIGEST_SIZE], data[-_DIGEST_SIZE:]
    expected = blake2b(body, digest_size=_DIGEST_SIZE).digest()
    if digest != expected:
        raise ChecksumError(
            "checkpoint checksum mismatch: the file is corrupt or "
            "truncated; refusing to load partial state"
        )
    offset = len(CHECKPOINT_MAGIC)
    (header_len,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    header = json.loads(body[offset:offset + header_len].decode("utf-8"))
    if header["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {header['version']} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    offset += header_len
    blobs: list[tuple[int, str, bytes]] = []
    for plane, region, length in header["blobs"]:
        blobs.append((int(plane), region, body[offset:offset + length]))
        offset += length
    if offset != len(body):
        raise CheckpointError(
            f"checkpoint blob directory inconsistent: {len(body) - offset} "
            f"unaccounted byte(s)"
        )
    return GatewayCheckpoint(
        seq=int(header["seq"]),
        created_at=float(header["created_at"]),
        config=header["config"],
        state=header["state"],
        blobs=blobs,
    )


def _snapshot_path(directory: Path, seq: int) -> Path:
    return directory / f"checkpoint-{seq:08d}.rck"


def _snapshot_seq(path: Path) -> int:
    """The sequence number a snapshot filename encodes.

    Ordering snapshots by *name* silently breaks once a sequence number
    outgrows its zero padding (``checkpoint-100000000`` sorts before
    ``checkpoint-99999999``), and the header's ``created_at`` wall stamp
    is no better — a backward clock step can make a newer snapshot look
    older.  The sequence number is the only monotone truth; filenames a
    foreign process dropped into the directory sort oldest (and a real
    load would reject them anyway).
    """
    try:
        return int(path.stem.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return -1


class CheckpointWriter:
    """Writes snapshots atomically and prunes history.

    ``retain`` bounds disk usage: after each successful write, only the
    newest ``retain`` snapshot files survive (the matching journals are
    the service's concern — it knows which epochs a fallback restore
    still needs).

    ``sync`` fsyncs the temp file before the atomic rename (host-death
    durability); without it the bytes are flushed to the OS only, which
    still survives process death and costs an order of magnitude less
    per snapshot.  Either way a crash mid-write leaves the previous
    snapshot untouched, and the trailing digest rejects a file the
    rename published before its blocks hit the platter.
    """

    def __init__(
        self, directory: str | Path, retain: int = 3, sync: bool = True,
    ) -> None:
        if retain < 1:
            raise CheckpointError("retain must be at least 1")
        self.directory = Path(directory)
        self.retain = int(retain)
        self.sync = bool(sync)
        self.directory.mkdir(parents=True, exist_ok=True)

    def write(self, checkpoint: GatewayCheckpoint) -> Path:
        """Durably persist one snapshot; returns its final path."""
        final = _snapshot_path(self.directory, checkpoint.seq)
        temp = final.with_suffix(".rck.tmp")
        data = encode_checkpoint(checkpoint)
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        os.replace(temp, final)
        self._prune()
        return final

    def _prune(self) -> None:
        snapshots = sorted(
            self.directory.glob("checkpoint-*.rck"),
            key=lambda path: (_snapshot_seq(path), path.name),
        )
        for stale in snapshots[:-self.retain]:
            stale.unlink(missing_ok=True)


class CheckpointLoader:
    """Finds and strictly loads snapshots from a service directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def paths(self) -> list[Path]:
        """Snapshot files, oldest first by *sequence number*.

        The ``created_at`` wall stamp is informational only — sequence
        numbers are the monotone ordering a restore must trust.
        """
        return sorted(
            self.directory.glob("checkpoint-*.rck"),
            key=lambda path: (_snapshot_seq(path), path.name),
        )

    def load(self, path: str | Path) -> GatewayCheckpoint:
        """Strictly load one snapshot (raises on any integrity failure)."""
        return decode_checkpoint(Path(path).read_bytes())

    def latest(self) -> GatewayCheckpoint | None:
        """The newest snapshot that verifies, or ``None``.

        Corrupt newer files are *skipped* (recovery falls back to the
        last good snapshot — its journal tail still covers the gap), but
        never partially loaded; if every snapshot is corrupt the last
        failure propagates so the damage is loud.
        """
        paths = self.paths()
        error: CheckpointError | None = None
        for path in reversed(paths):
            try:
                return self.load(path)
            except CheckpointError as exc:
                error = exc
        if error is not None:
            raise error
        return None
