"""R4 — emerging alert detection with adaptive online LDA (§III-C [R4]).

"A few alerts corresponding to a root cause (i.e., emerging alerts)
appear first.  If they are not dealt with seriously, when the root cause
escalates its influence, numerous cascading alerts will be generated."

The detector consumes the alert stream in time order, window by window:

1. each alert becomes a bag-of-words document (strategy name, title,
   description, component names);
2. after a warm-up, each new alert is scored against the current topic
   model — alerts whose text the model explains poorly (low variational
   bound) are *emerging*: their word combinations match no known topic,
   which is exactly the implicit-dependency gap the rule books miss;
3. the window is then folded into the model (``partial_fit``, growing the
   vocabulary), keeping the model adaptive as the alert mix drifts.

This mirrors the adaptive online LDA usage of the paper's refs [30]/[31]
(emerging topic detection over streaming text).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alerting.alert import Alert
from repro.common.timeutil import HOUR
from repro.common.validation import require_fraction, require_positive
from repro.ml.lda import OnlineLDA
from repro.ml.sketch import alert_document
from repro.ml.vocab import Vocabulary

__all__ = ["EmergingAlert", "EmergingAlertDetector"]


@dataclass(frozen=True, slots=True)
class EmergingAlert:
    """One alert flagged as emerging, with its novelty score."""

    alert: Alert
    novelty: float
    window_index: int


class EmergingAlertDetector:
    """Streams alerts through an adaptive online LDA and flags novelty."""

    def __init__(
        self,
        n_topics: int = 12,
        window_seconds: float = 1 * HOUR,
        warmup_windows: int = 6,
        novelty_quantile: float = 0.99,
        min_novelty_gap: float = 1.0,
        seed: int = 42,
    ) -> None:
        require_positive(n_topics, "n_topics")
        require_positive(window_seconds, "window_seconds")
        require_positive(warmup_windows, "warmup_windows")
        require_fraction(novelty_quantile, "novelty_quantile")
        self._n_topics = int(n_topics)
        self._window = float(window_seconds)
        self._warmup_windows = int(warmup_windows)
        self._novelty_quantile = float(novelty_quantile)
        self._min_novelty_gap = float(min_novelty_gap)
        self._seed = seed

    @staticmethod
    def document_of(alert: Alert) -> list[str]:
        """The bag-of-words document representing one alert.

        Delegates to :func:`repro.ml.sketch.alert_document` so the LDA
        path and the streaming hashing-sketch path score the *same*
        document — the differential harness compares models, not
        tokenisation recipes.
        """
        return alert_document(alert)

    def run(self, alerts: list[Alert]) -> list[EmergingAlert]:
        """Process the stream; returns flagged alerts in time order."""
        ordered = sorted(alerts, key=lambda a: a.occurred_at)
        if not ordered:
            return []
        vocab = Vocabulary()
        lda: OnlineLDA | None = None
        flagged: list[EmergingAlert] = []
        history: list[float] = []

        start = ordered[0].occurred_at
        window_index = 0
        cursor = 0
        n = len(ordered)
        while cursor < n:
            window_end = start + (window_index + 1) * self._window
            batch: list[Alert] = []
            while cursor < n and ordered[cursor].occurred_at < window_end:
                batch.append(ordered[cursor])
                cursor += 1
            if not batch:
                window_index += 1
                continue
            docs = [vocab.doc_to_bow(self.document_of(alert)) for alert in batch]
            if lda is None:
                lda = OnlineLDA(self._n_topics, max(len(vocab), 1), seed=self._seed)
            lda.grow_vocab(len(vocab))

            if window_index >= self._warmup_windows and history:
                threshold = float(
                    np.quantile(history, self._novelty_quantile)
                ) + self._min_novelty_gap
                for alert, doc in zip(batch, docs):
                    if doc[0].size == 0:
                        continue
                    novelty = -lda.score(doc)
                    if novelty > threshold:
                        flagged.append(EmergingAlert(
                            alert=alert, novelty=novelty, window_index=window_index,
                        ))
            for doc in docs:
                if doc[0].size:
                    history.append(-lda.score(doc))
            # Bound the reference history so the threshold adapts to drift.
            if len(history) > 5000:
                history = history[-5000:]
            lda.partial_fit([doc for doc in docs if doc[0].size])
            window_index += 1
        return flagged

    def lead_time(
        self,
        flagged: list[EmergingAlert],
        eruption_start: float,
    ) -> float | None:
        """Seconds between the first emerging flag and the eruption.

        Positive = the detector fired *before* the flood; ``None`` when
        nothing was flagged before the eruption.
        """
        before = [e for e in flagged if e.alert.occurred_at < eruption_start]
        if not before:
            return None
        first = min(e.alert.occurred_at for e in before)
        return eruption_start - first
