"""R2 — alert aggregation (paper §III-C [R2]).

"OCEs will set rules to aggregate alerts in a period and use the number
of alerts as another feature."  Aggregation is session-style per
(strategy, region): consecutive alerts closer than the window collapse
into one :class:`AggregatedAlert` carrying the count — so a hundred
repeats of one strategy cost an OCE one look instead of a hundred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.alerting.alert import Alert, Severity
from repro.common.timeutil import TimeWindow
from repro.common.validation import require_positive

__all__ = ["AggregatedAlert", "AlertAggregator"]


@dataclass(frozen=True, slots=True)
class AggregatedAlert:
    """One aggregated group of same-strategy, same-region alerts."""

    strategy_id: str
    strategy_name: str
    region: str
    severity: Severity
    window: TimeWindow
    count: int
    representative: Alert
    alert_ids: tuple[str, ...]

    @property
    def is_group(self) -> bool:
        """Whether more than one alert was collapsed."""
        return self.count > 1


class AlertAggregator:
    """Collapses duplicate alerts within a session window."""

    def __init__(self, window_seconds: float = 900.0) -> None:
        require_positive(window_seconds, "window_seconds")
        self._window = float(window_seconds)

    @property
    def window_seconds(self) -> float:
        """Session gap: a larger gap starts a new aggregate."""
        return self._window

    def aggregate(self, alerts: Sequence[Alert]) -> list[AggregatedAlert]:
        """Group ``alerts`` per (strategy, region) with session windows."""
        by_key: dict[tuple[str, str], list[Alert]] = {}
        for alert in alerts:
            by_key.setdefault((alert.strategy_id, alert.region), []).append(alert)
        aggregates: list[AggregatedAlert] = []
        for (strategy_id, region), group in sorted(by_key.items()):
            group.sort(key=lambda a: a.occurred_at)
            session: list[Alert] = [group[0]]
            for alert in group[1:]:
                if alert.occurred_at - session[-1].occurred_at <= self._window:
                    session.append(alert)
                else:
                    aggregates.append(self._emit(strategy_id, region, session))
                    session = [alert]
            aggregates.append(self._emit(strategy_id, region, session))
        aggregates.sort(key=lambda agg: agg.window.start)
        return aggregates

    def compression_ratio(self, alerts: Sequence[Alert]) -> float:
        """len(alerts) / len(aggregates); 1.0 when nothing collapses."""
        if not alerts:
            return 1.0
        return len(alerts) / len(self.aggregate(alerts))

    @staticmethod
    def _emit(strategy_id: str, region: str, session: list[Alert]) -> AggregatedAlert:
        first = session[0]
        last = session[-1]
        # The most severe member represents the group.
        representative = min(session, key=lambda a: (a.severity.value, a.occurred_at))
        return AggregatedAlert(
            strategy_id=strategy_id,
            strategy_name=first.strategy_name,
            region=region,
            severity=representative.severity,
            window=TimeWindow(first.occurred_at, last.occurred_at + 1e-9),
            count=len(session),
            representative=representative,
            alert_ids=tuple(a.alert_id for a in session),
        )
