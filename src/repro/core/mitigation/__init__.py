"""Postmortem reactions to anti-patterns (paper §III-C, Figure 6).

* **R1** :mod:`blocking` — rule-based alert blocking of non-informative
  (transient / toggling / repeating) alerts;
* **R2** :mod:`aggregation` — duplicate alerts collapsed per period, with
  the count kept as a feature;
* **R3** :mod:`correlation` — alert correlation from two exogenous
  sources: configured strategy-dependency rules and the service topology;
* **R4** :mod:`emerging` — emerging-alert detection with adaptive online
  LDA, catching the implicit dependencies the rule books miss;
* :mod:`pipeline` — the reactions composed into one governance pipeline
  with before/after OCE-load accounting.
"""

from repro.core.mitigation.aggregation import AggregatedAlert, AlertAggregator
from repro.core.mitigation.blocking import AlertBlocker, BlockingRule
from repro.core.mitigation.correlation import (
    AlertCluster,
    CorrelationAnalyzer,
    DependencyRuleBook,
    rulebook_from_ground_truth,
)
from repro.core.mitigation.emerging import EmergingAlert, EmergingAlertDetector
from repro.core.mitigation.pipeline import MitigationPipeline, MitigationReport

__all__ = [
    "BlockingRule",
    "AlertBlocker",
    "AggregatedAlert",
    "AlertAggregator",
    "DependencyRuleBook",
    "CorrelationAnalyzer",
    "AlertCluster",
    "rulebook_from_ground_truth",
    "EmergingAlert",
    "EmergingAlertDetector",
    "MitigationPipeline",
    "MitigationReport",
]
