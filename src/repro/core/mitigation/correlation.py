"""R3 — alert correlation analysis (paper §III-C [R3]).

Two exogenous evidence sources, exactly as the paper lists them:

1. *dependencies of alert strategies* — a rule book of (source strategy →
   derived strategy) pairs that OCEs configured by hand.  "They will
   associate all the derived alerts with their source alerts and diagnose
   the source alerts only."
2. *topology of cloud services* — alerts whose microservices are related
   in the dependency graph within a hop bound, and which occur close in
   time, are correlated; following the topological correlation pinpoints
   the root.

Because manual rule books "could not cover all the alert strategies"
(the gap motivating R4), :func:`rulebook_from_ground_truth` builds a
partial book with a configurable coverage fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.common.rng import derive_rng
from repro.common.timeutil import MINUTE
from repro.common.validation import require_fraction, require_positive
from repro.core.antipatterns.collective import infer_cascade_root
from repro.topology.graph import DependencyGraph
from repro.workload.trace import AlertTrace

__all__ = [
    "DependencyRuleBook",
    "AlertCluster",
    "CorrelationAnalyzer",
    "rulebook_from_ground_truth",
]


class DependencyRuleBook:
    """Manually configured strategy-dependency rules."""

    def __init__(self) -> None:
        self._pairs: set[tuple[str, str]] = set()

    def __len__(self) -> int:
        return len(self._pairs)

    def add(self, source_strategy: str, derived_strategy: str) -> None:
        """Record "alerts of ``derived`` are triggered by alerts of ``source``"."""
        if not source_strategy or not derived_strategy:
            raise ValidationError("strategy ids must be non-empty")
        if source_strategy == derived_strategy:
            raise ValidationError("a strategy cannot derive from itself")
        self._pairs.add((source_strategy, derived_strategy))

    def related(self, strategy_a: str, strategy_b: str) -> bool:
        """Whether a rule links the two strategies (either direction)."""
        return ((strategy_a, strategy_b) in self._pairs
                or (strategy_b, strategy_a) in self._pairs)

    def pairs(self) -> set[tuple[str, str]]:
        """All configured (source, derived) pairs (copy)."""
        return set(self._pairs)


@dataclass(slots=True)
class AlertCluster:
    """One correlated group with an inferred root."""

    alerts: list[Alert] = field(default_factory=list)
    root_alert: Alert | None = None
    root_microservice: str | None = None
    coverage: float = 0.0

    @property
    def size(self) -> int:
        """Number of member alerts."""
        return len(self.alerts)


class CorrelationAnalyzer:
    """Clusters alerts by rule-book and topological evidence."""

    def __init__(
        self,
        graph: DependencyGraph,
        rulebook: DependencyRuleBook | None = None,
        max_hops: int = 4,
        time_window: float = 15 * MINUTE,
        use_topology: bool = True,
    ) -> None:
        require_positive(max_hops, "max_hops")
        require_positive(time_window, "time_window")
        self._graph = graph
        self._rulebook = rulebook or DependencyRuleBook()
        self._max_hops = int(max_hops)
        self._window = float(time_window)
        self._use_topology = use_topology
        self._related_cache: dict[tuple[str, str], bool] = {}

    def correlate(self, alerts: list[Alert]) -> list[AlertCluster]:
        """Cluster ``alerts``; singletons are returned as size-1 clusters."""
        ordered = sorted(alerts, key=lambda a: a.occurred_at)
        n = len(ordered)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        left = 0
        for right in range(n):
            while ordered[right].occurred_at - ordered[left].occurred_at > self._window:
                left += 1
            for other in range(left, right):
                if find(other) == find(right):
                    continue
                if self._evidence(ordered[other], ordered[right]):
                    union(other, right)

        members: dict[int, list[Alert]] = {}
        for index in range(n):
            members.setdefault(find(index), []).append(ordered[index])
        clusters = [self._finalise(group) for group in members.values()]
        clusters.sort(key=lambda c: (c.alerts[0].occurred_at, -c.size))
        return clusters

    # ------------------------------------------------------------------
    # building blocks (shared with the streaming OnlineCorrelator)
    # ------------------------------------------------------------------
    @property
    def time_window(self) -> float:
        """Seconds within which two alerts may correlate."""
        return self._window

    def pair_evidence(self, first: Alert, second: Alert) -> bool:
        """Whether rule-book or topological evidence links the two alerts."""
        return self._evidence(first, second)

    def build_cluster(self, alerts: list[Alert]) -> AlertCluster:
        """Finalise one correlated group into an :class:`AlertCluster`."""
        return self._finalise(alerts)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _evidence(self, first: Alert, second: Alert) -> bool:
        if first.region != second.region:
            return False
        if self._rulebook.related(first.strategy_id, second.strategy_id):
            return True
        if not self._use_topology:
            return False
        return self._related(first.microservice, second.microservice)

    def _related(self, micro_a: str, micro_b: str) -> bool:
        if micro_a == micro_b:
            return True
        key = (micro_a, micro_b) if micro_a < micro_b else (micro_b, micro_a)
        cached = self._related_cache.get(key)
        if cached is None:
            if micro_a in self._graph and micro_b in self._graph:
                cached = self._graph.are_related(micro_a, micro_b, self._max_hops)
            else:
                cached = False
            self._related_cache[key] = cached
        return cached

    def _finalise(self, alerts: list[Alert]) -> AlertCluster:
        alerts.sort(key=lambda a: a.occurred_at)
        cluster = AlertCluster(alerts=alerts)
        earliest: dict[str, float] = {}
        for alert in alerts:
            if alert.microservice in self._graph and alert.microservice not in earliest:
                earliest[alert.microservice] = alert.occurred_at
        inferred = infer_cascade_root(earliest, self._graph, self._max_hops)
        if inferred is None:
            cluster.root_alert = alerts[0]
            cluster.root_microservice = alerts[0].microservice
            cluster.coverage = 1.0 if len(alerts) == 1 else 0.0
            return cluster
        root_micro, coverage = inferred
        cluster.root_microservice = root_micro
        cluster.coverage = coverage
        cluster.root_alert = next(
            (a for a in alerts if a.microservice == root_micro), alerts[0]
        )
        return cluster


def rulebook_from_ground_truth(
    trace: AlertTrace,
    coverage: float = 0.6,
    seed: int = 42,
) -> DependencyRuleBook:
    """A partial rule book derived from the trace's fault parent links.

    Models OCEs having codified only ``coverage`` of the true strategy
    dependencies — the paper is explicit that "manually configured
    dependencies of alert strategies could not cover all the alert
    strategies".
    """
    require_fraction(coverage, "coverage")
    fault_strategies: dict[str, set[str]] = {}
    for alert in trace.alerts:
        if alert.fault_id is not None:
            fault_strategies.setdefault(alert.fault_id, set()).add(alert.strategy_id)
    fault_by_id = {fault.fault_id: fault for fault in trace.faults}
    pairs: set[tuple[str, str]] = set()
    for fault in trace.faults:
        if fault.parent_fault_id is None:
            continue
        parent = fault_by_id.get(fault.parent_fault_id)
        if parent is None:
            continue
        for source in fault_strategies.get(parent.fault_id, ()):
            for derived in fault_strategies.get(fault.fault_id, ()):
                if source != derived:
                    pairs.add((source, derived))
    rng = derive_rng(seed, "rulebook")
    book = DependencyRuleBook()
    for source, derived in sorted(pairs):
        if rng.random() < coverage:
            book.add(source, derived)
    return book
