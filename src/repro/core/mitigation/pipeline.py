"""The composed governance pipeline: R1 -> R2 -> R3 (-> R4).

Figure 6 of the paper frames mitigation as detection feeding reaction.
The pipeline implements the reaction chain and accounts for OCE load at
every stage: raw alerts in, blocked noise out (R1), duplicates collapsed
(R2), correlated clusters with inferred roots (R3) — the number of items
an OCE must actually look at shrinks at each step.  R4 is independent of
volume reduction (it adds early warnings) and is exposed as an optional
stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.antipatterns.base import DetectorThresholds
from repro.core.antipatterns.collective import RepeatingAlertsDetector
from repro.core.antipatterns.individual import TransientTogglingDetector
from repro.core.mitigation.aggregation import AggregatedAlert, AlertAggregator
from repro.core.mitigation.blocking import AlertBlocker
from repro.core.mitigation.correlation import (
    AlertCluster,
    CorrelationAnalyzer,
    DependencyRuleBook,
)
from repro.core.mitigation.emerging import EmergingAlert, EmergingAlertDetector
from repro.topology.graph import DependencyGraph
from repro.workload.trace import AlertTrace

__all__ = ["MitigationReport", "MitigationPipeline", "evaluate_root_inference"]


@dataclass(slots=True)
class MitigationReport:
    """Volume accounting and artefacts of one pipeline run."""

    input_alerts: int = 0
    blocked_alerts: int = 0
    aggregates: list[AggregatedAlert] = field(default_factory=list)
    clusters: list[AlertCluster] = field(default_factory=list)
    emerging: list[EmergingAlert] = field(default_factory=list)
    emerging_enabled: bool = False

    @property
    def after_blocking(self) -> int:
        """Alerts surviving R1."""
        return self.input_alerts - self.blocked_alerts

    @property
    def after_aggregation(self) -> int:
        """Items surviving R2 (aggregated groups)."""
        return len(self.aggregates)

    @property
    def after_correlation(self) -> int:
        """Items an OCE diagnoses after R3 (one per cluster root)."""
        return len(self.clusters)

    @property
    def total_reduction(self) -> float:
        """1 - (diagnosed items / raw alerts)."""
        if self.input_alerts == 0:
            return 0.0
        return 1.0 - self.after_correlation / self.input_alerts

    def render(self) -> str:
        """Stage-by-stage volume summary."""
        lines = [
            f"input alerts:        {self.input_alerts:>8,}",
            f"after R1 blocking:   {self.after_blocking:>8,} "
            f"({self.blocked_alerts:,} blocked)",
            f"after R2 aggregation:{self.after_aggregation:>8,} groups",
            f"after R3 correlation:{self.after_correlation:>8,} clusters to diagnose",
            f"total OCE-load reduction: {self.total_reduction:.1%}",
        ]
        if self.emerging_enabled:
            lines.append(f"R4 emerging alerts flagged: {len(self.emerging)}")
        return "\n".join(lines)


class MitigationPipeline:
    """R1 + R2 + R3 (+ optional R4) over an alert trace."""

    def __init__(
        self,
        graph: DependencyGraph,
        thresholds: DetectorThresholds | None = None,
        aggregation_window: float = 900.0,
        rulebook: DependencyRuleBook | None = None,
        correlation_max_hops: int = 4,
        correlation_window: float = 900.0,
        enable_emerging: bool = False,
        emerging_detector: EmergingAlertDetector | None = None,
    ) -> None:
        self._graph = graph
        self._thresholds = thresholds or DetectorThresholds()
        self._aggregator = AlertAggregator(aggregation_window)
        self._correlator = CorrelationAnalyzer(
            graph,
            rulebook=rulebook,
            max_hops=correlation_max_hops,
            time_window=correlation_window,
        )
        self._enable_emerging = enable_emerging
        self._emerging = emerging_detector or EmergingAlertDetector()

    @staticmethod
    def derive_blocker(
        trace: AlertTrace,
        thresholds: DetectorThresholds | None = None,
    ) -> AlertBlocker:
        """R1 rule derivation: noise-detector findings become blocking rules.

        Exposed so online consumers (the streaming gateway, the CLI) can
        configure the exact rule set the batch pipeline would derive.
        """
        thresholds = thresholds or DetectorThresholds()
        noise_findings = []
        noise_findings.extend(TransientTogglingDetector(thresholds).detect(trace))
        noise_findings.extend(RepeatingAlertsDetector(thresholds).detect(trace))
        return AlertBlocker.from_findings(noise_findings)

    def run(self, trace: AlertTrace, blocker: AlertBlocker | None = None) -> MitigationReport:
        """Execute the reaction chain over ``trace``.

        ``blocker`` short-circuits R1 rule derivation when the caller
        already holds the rules (e.g. the streaming gateway's
        reconciliation path); by default they are derived from the noise
        detectors as usual.
        """
        report = MitigationReport(input_alerts=len(trace.alerts))
        report.emerging_enabled = self._enable_emerging

        # R1: derive blocking rules from the noise detectors, then block.
        if blocker is None:
            blocker = self.derive_blocker(trace, self._thresholds)
        passed, blocked = blocker.apply(trace)
        report.blocked_alerts = len(blocked)

        # R2: collapse duplicates, keeping counts as a feature.
        report.aggregates = self._aggregator.aggregate(passed.alerts)

        # R3: correlate the aggregate representatives; OCEs diagnose the
        # inferred source alerts only.
        representatives = [aggregate.representative for aggregate in report.aggregates]
        report.clusters = self._correlator.correlate(representatives)

        # R4 (optional): early warnings on the unblocked stream.
        if self._enable_emerging:
            report.emerging = self._emerging.run(passed.alerts)
        return report


def evaluate_root_inference(
    clusters: list[AlertCluster],
    trace: AlertTrace,
    min_cluster_size: int = 5,
    service_of: dict[str, str] | None = None,
) -> dict[str, float]:
    """Score R3 root inference against the injected cascade ground truth.

    For every cluster of at least ``min_cluster_size`` alerts whose
    members carry fault attribution, the dominant cascade's root fault
    defines the true root microservice.  Three rates are reported:

    * ``hit_rate`` — inferred root equals the true root microservice;
    * ``achievable_hit_rate`` — same, restricted to clusters where the
      true root actually alerted (a root with no strategy can never be
      named — a monitoring gap, not a correlation failure);
    * ``service_hit_rate`` — inferred root belongs to the true root's
      service (requires ``service_of``), the granularity at which OCEs
      page the owning team.
    """
    fault_by_id = {fault.fault_id: fault for fault in trace.faults}
    root_micro_of_cascade: dict[str, str] = {
        fault.fault_id: fault.microservice
        for fault in trace.faults
        if fault.parent_fault_id is None
    }
    evaluated = 0
    hits = 0
    achievable = 0
    achievable_hits = 0
    service_evaluated = 0
    service_hits = 0
    for cluster in clusters:
        if cluster.size < min_cluster_size:
            continue
        cascade_votes: dict[str, int] = {}
        for alert in cluster.alerts:
            if alert.fault_id is None:
                continue
            fault = fault_by_id.get(alert.fault_id)
            if fault is None:
                continue
            root_id = fault.root_id()
            cascade_votes[root_id] = cascade_votes.get(root_id, 0) + 1
        if not cascade_votes:
            continue
        dominant = max(cascade_votes, key=lambda k: cascade_votes[k])
        true_root = root_micro_of_cascade.get(dominant)
        if true_root is None:
            continue
        evaluated += 1
        hit = cluster.root_microservice == true_root
        hits += hit
        if any(alert.microservice == true_root for alert in cluster.alerts):
            achievable += 1
            achievable_hits += hit
        if service_of is not None:
            true_service = service_of.get(true_root)
            inferred_service = service_of.get(cluster.root_microservice or "")
            if true_service is not None:
                service_evaluated += 1
                service_hits += inferred_service == true_service
    return {
        "clusters_evaluated": float(evaluated),
        "root_hits": float(hits),
        "hit_rate": hits / evaluated if evaluated else 0.0,
        "achievable_evaluated": float(achievable),
        "achievable_hit_rate": achievable_hits / achievable if achievable else 0.0,
        "service_hit_rate": service_hits / service_evaluated if service_evaluated else 0.0,
    }
