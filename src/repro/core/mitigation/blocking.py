"""R1 — rule-based alert blocking (paper §III-C [R1]).

"When OCEs find that transient alerts, toggling alerts, and repeating
alerts provide no information about service anomaly, they can treat these
alerts as noise and block them with alert blocking rules."

The blocker holds explicit rules — exactly what OCEs configure — and the
convenience constructor derives those rules from A4/A5 detector findings,
closing the loop the paper describes.  Rules can be scoped to a whole
strategy or to one (strategy, region) pair, and can expire, modelling the
"when to invalidate these rules" problem §IV raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.alerting.alert import Alert
from repro.common.errors import ValidationError
from repro.core.antipatterns.base import AntiPatternFinding
from repro.workload.trace import AlertTrace

__all__ = ["BlockingRule", "AlertBlocker", "rule_to_dict", "rule_from_dict"]


def rule_to_dict(rule: "BlockingRule") -> dict:
    """A JSON-safe row for one rule (checkpoint/journal serialisation)."""
    return {
        "strategy_id": rule.strategy_id,
        "region": rule.region,
        "reason": rule.reason,
        "expires_at": rule.expires_at,
    }


def rule_from_dict(row: dict) -> "BlockingRule":
    """Rebuild a rule from :func:`rule_to_dict` output (exact round trip)."""
    return BlockingRule(
        strategy_id=row["strategy_id"],
        region=row.get("region"),
        reason=row.get("reason", ""),
        expires_at=row.get("expires_at"),
    )


@dataclass(frozen=True, slots=True)
class BlockingRule:
    """Block alerts of one strategy, optionally in one region only."""

    strategy_id: str
    region: str | None = None
    reason: str = ""
    expires_at: float | None = None

    def __post_init__(self) -> None:
        if not self.strategy_id:
            raise ValidationError("strategy_id must be non-empty")

    def matches(self, alert: Alert) -> bool:
        """Whether this rule blocks ``alert``."""
        if alert.strategy_id != self.strategy_id:
            return False
        if self.region is not None and alert.region != self.region:
            return False
        if self.expires_at is not None and alert.occurred_at >= self.expires_at:
            return False
        return True


class AlertBlocker:
    """Applies a set of blocking rules to alert streams."""

    def __init__(self, rules: Iterable[BlockingRule] = ()) -> None:
        self._rules = list(rules)
        self._by_strategy: dict[str, list[BlockingRule]] = {}
        # Strategies blocked outright: at least one rule with no region
        # scope and no expiry.  The common shape (every rule derived from
        # A4/A5 findings is unconditional), and it turns the per-event
        # hot-path test into a single set membership.
        self._unconditional: set[str] = set()
        for rule in self._rules:
            self._index(rule)

    def _index(self, rule: BlockingRule) -> None:
        self._by_strategy.setdefault(rule.strategy_id, []).append(rule)
        if rule.region is None and rule.expires_at is None:
            self._unconditional.add(rule.strategy_id)

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[AntiPatternFinding],
        patterns: tuple[str, ...] = ("A4", "A5"),
        expires_at: float | None = None,
    ) -> "AlertBlocker":
        """Build strategy-scoped rules from detector findings.

        Only strategy-subject findings of noise patterns (default A4/A5)
        become rules — the reaction the paper describes.
        """
        rules = []
        seen: set[str] = set()
        for finding in findings:
            if finding.pattern not in patterns:
                continue
            if finding.subject in seen:
                continue
            seen.add(finding.subject)
            rules.append(BlockingRule(
                strategy_id=finding.subject,
                reason=f"{finding.pattern}: {finding.evidence}",
                expires_at=expires_at,
            ))
        return cls(rules)

    @property
    def rules(self) -> list[BlockingRule]:
        """The configured rules (copy)."""
        return list(self._rules)

    def add(self, rule: BlockingRule) -> None:
        """Register an additional rule."""
        self._rules.append(rule)
        self._index(rule)

    def add_rules(self, rules: Iterable[BlockingRule]) -> None:
        """Register several additional rules."""
        for rule in rules:
            self.add(rule)

    def has_rule(self, rule: BlockingRule) -> bool:
        """Whether an identical rule (field equality) is registered."""
        return rule in self._by_strategy.get(rule.strategy_id, ())

    def remove_rule(self, rule: BlockingRule) -> bool:
        """Remove one specific rule (field equality); returns success.

        The online learner retires *its own* rules this way — a
        strategy may also carry operator-configured rules, which must
        survive the learned rule's expiry or demotion.
        """
        rules = self._by_strategy.get(rule.strategy_id)
        if not rules or rule not in rules:
            return False
        rules.remove(rule)
        self._rules.remove(rule)
        if not rules:
            del self._by_strategy[rule.strategy_id]
        if rule.region is None and rule.expires_at is None and not any(
            r.region is None and r.expires_at is None for r in rules
        ):
            self._unconditional.discard(rule.strategy_id)
        return True

    def remove_strategy(self, strategy_id: str) -> int:
        """Drop every rule targeting ``strategy_id``; returns the count.

        This is the retirement half of the online rule life cycle: the
        streaming learner promotes rules with a TTL and *removes* them on
        expiry or precision decay.  Removing an already-expired rule is
        accounting-neutral — :meth:`BlockingRule.matches` stops blocking
        at ``expires_at`` regardless — but keeps the rule table (and the
        per-event scan) from growing without bound.
        """
        dropped = self._by_strategy.pop(strategy_id, None)
        if not dropped:
            return 0
        self._rules = [r for r in self._rules if r.strategy_id != strategy_id]
        self._unconditional.discard(strategy_id)
        return len(dropped)

    @property
    def ruled_strategies(self) -> frozenset[str]:
        """Strategies at least one rule targets.

        The streaming hot loop tests every event against the rules; most
        strategies have none, and membership here lets callers skip the
        per-rule scan entirely for them.
        """
        return frozenset(self._by_strategy)

    def is_blocked(self, alert: Alert) -> bool:
        """Whether any rule blocks ``alert``."""
        strategy = alert.strategy_id
        if strategy in self._unconditional:
            return True
        rules = self._by_strategy.get(strategy)
        if not rules:
            return False
        for rule in rules:
            if rule.matches(alert):
                return True
        return False

    def apply(self, trace: AlertTrace) -> tuple[AlertTrace, list[Alert]]:
        """Split a trace into (passed, blocked)."""
        blocked = [a for a in trace.alerts if self.is_blocked(a)]
        passed = trace.filter(lambda a: not self.is_blocked(a), label=f"{trace.label}+R1")
        return passed, blocked

    def reduction(self, trace: AlertTrace) -> float:
        """Fraction of the trace's alerts the rules remove."""
        if not trace.alerts:
            return 0.0
        blocked = sum(1 for a in trace.alerts if self.is_blocked(a))
        return blocked / len(trace.alerts)
