"""End-to-end QoA evaluation: features -> labels -> model -> anti-patterns.

Closes the loop the paper proposes in §IV: OCE labels train a model whose
low-quality predictions point back at concrete anti-patterns (low
handleability -> A1 candidate, low precision -> A2, low indicativeness ->
A3/A4), enabling *automatic detection* without hand inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.paper_reference import QOA_CRITERIA
from repro.core.antipatterns.base import DetectorThresholds
from repro.core.qoa.features import StrategyFeatureExtractor
from repro.core.qoa.labeling import CRITERION_ANTIPATTERNS, simulate_oce_labels
from repro.core.qoa.model import QoAModel, train_test_split
from repro.workload.trace import AlertTrace

__all__ = ["QoAEvaluationReport", "evaluate_qoa_pipeline"]


@dataclass(slots=True)
class QoAEvaluationReport:
    """Accuracy and anti-pattern agreement of one QoA evaluation run."""

    n_train: int = 0
    n_test: int = 0
    accuracy: dict[str, float] = field(default_factory=dict)
    majority_baseline: dict[str, float] = field(default_factory=dict)
    antipattern_agreement: dict[str, dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        """Per-criterion accuracy vs baseline and flagging agreement."""
        lines = [f"QoA model: {self.n_train} train / {self.n_test} test strategies"]
        for criterion in QOA_CRITERIA:
            lines.append(
                f"  {criterion:<15} accuracy {self.accuracy.get(criterion, 0.0):.2f}  "
                f"(majority baseline {self.majority_baseline.get(criterion, 0.0):.2f})"
            )
        for criterion, scores in self.antipattern_agreement.items():
            lines.append(
                f"  low-{criterion} flags -> {'/'.join(CRITERION_ANTIPATTERNS[criterion])}: "
                f"precision {scores['precision']:.2f} recall {scores['recall']:.2f}"
            )
        return "\n".join(lines)


def evaluate_qoa_pipeline(
    trace: AlertTrace,
    thresholds: DetectorThresholds | None = None,
    label_noise: float = 0.08,
    test_fraction: float = 0.3,
    min_alerts: int = 5,
    seed: int = 42,
) -> QoAEvaluationReport:
    """Run the full §IV pipeline on one trace."""
    extractor = StrategyFeatureExtractor(trace, thresholds)
    ids, features = extractor.extract(min_alerts=min_alerts)
    labels_by_sid = simulate_oce_labels(trace, ids, noise=label_noise, seed=seed)
    labels = {
        criterion: np.array([labels_by_sid[sid][criterion] for sid in ids], dtype=float)
        for criterion in QOA_CRITERIA
    }

    train_idx, test_idx = train_test_split(len(ids), test_fraction, seed)
    model = QoAModel().fit(
        features[train_idx],
        {c: labels[c][train_idx] for c in QOA_CRITERIA},
    )

    report = QoAEvaluationReport(n_train=len(train_idx), n_test=len(test_idx))
    report.accuracy = model.accuracy(
        features[test_idx], {c: labels[c][test_idx] for c in QOA_CRITERIA}
    )
    for criterion in QOA_CRITERIA:
        test_labels = labels[criterion][test_idx]
        majority = float(max(test_labels.mean(), 1.0 - test_labels.mean()))
        report.majority_baseline[criterion] = majority

    # Anti-pattern flagging: a low predicted criterion on a *test*
    # strategy flags the mapped anti-patterns; agreement is scored against
    # the injected ground truth (not the noisy labels).
    predictions = model.predict(features[test_idx])
    for criterion in QOA_CRITERIA:
        mapped = CRITERION_ANTIPATTERNS[criterion]
        flagged: set[str] = set()
        truly: set[str] = set()
        for row, index in enumerate(test_idx):
            sid = ids[int(index)]
            if predictions[criterion][row] == 0:
                flagged.add(sid)
            injected = trace.strategies[sid].injected_antipatterns()
            if any(pattern in injected for pattern in mapped):
                truly.add(sid)
        hits = len(flagged & truly)
        report.antipattern_agreement[criterion] = {
            "precision": hits / len(flagged) if flagged else 0.0,
            "recall": hits / len(truly) if truly else 0.0,
        }
    return report
