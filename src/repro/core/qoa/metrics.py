"""Measured QoA: direct, learning-free scores per strategy.

The measured path answers "what can the monitoring system itself say
about alert quality, with no OCE labels at all?" — a lower bound that the
ML path should beat, and the pair the paper's Figure 6 sketches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alerting.alert import AlertState
from repro.common.validation import require_fraction
from repro.core.antipatterns.base import DetectorThresholds
from repro.core.antipatterns.individual import _incident_overlap_fraction
from repro.core.antipatterns.text import TitleQualityScorer
from repro.workload.trace import AlertTrace

__all__ = ["QoAScores", "measure_qoa"]


@dataclass(frozen=True, slots=True)
class QoAScores:
    """Measured quality of one strategy's alerts, all in [0, 1]."""

    strategy_id: str
    indicativeness: float
    precision: float
    handleability: float

    def __post_init__(self) -> None:
        require_fraction(self.indicativeness, "indicativeness")
        require_fraction(self.precision, "precision")
        require_fraction(self.handleability, "handleability")

    @property
    def overall(self) -> float:
        """Unweighted mean of the three criteria."""
        return (self.indicativeness + self.precision + self.handleability) / 3.0


def measure_qoa(
    trace: AlertTrace,
    thresholds: DetectorThresholds | None = None,
    min_alerts: int = 5,
) -> dict[str, QoAScores]:
    """Measured QoA for every strategy with at least ``min_alerts``.

    * indicativeness — incident overlap, discounted by transient share
      (flapping alerts indicate nothing an end user feels);
    * precision — agreement between the configured severity's class and
      the strategy's lifecycle-impact quantile;
    * handleability — text clarity blended with (inverse) processing-time
      quantile: hard-to-read or slow-to-diagnose alerts handle poorly.
    """
    thresholds = thresholds or DetectorThresholds()
    scorer = TitleQualityScorer()
    by_strategy = trace.by_strategy()
    processing = trace.mean_processing_by_strategy()

    eligible = {
        sid: alerts for sid, alerts in by_strategy.items() if len(alerts) >= min_alerts
    }
    if not eligible:
        return {}

    impact: dict[str, float] = {}
    transient_share: dict[str, float] = {}
    for sid, alerts in eligible.items():
        manual = sum(1 for a in alerts if a.state is AlertState.CLEARED_MANUAL)
        durations = [a.duration() for a in alerts if a.cleared_at is not None]
        mean_duration = float(np.mean(durations)) if durations else 0.0
        impact[sid] = (
            0.6 * manual / len(alerts) + 0.4 * min(mean_duration / 7200.0, 1.0)
        )
        transient_share[sid] = sum(
            1 for a in alerts if a.is_transient(thresholds.intermittent_threshold)
        ) / len(alerts)

    impact_quantile = _quantiles(impact)
    processing_quantile = _quantiles(
        {sid: processing.get(sid, 0.0) for sid in eligible}
    )

    scores: dict[str, QoAScores] = {}
    for sid, alerts in eligible.items():
        strategy = trace.strategies[sid]
        overlap = _incident_overlap_fraction(alerts, trace)
        indicativeness = min(overlap * 3.0, 1.0) * (1.0 - transient_share[sid])
        severity_position = 1.0 - strategy.severity.value / 3.0
        precision = 1.0 - abs(severity_position - impact_quantile[sid])
        clarity = scorer.clarity(strategy.title, strategy.description)
        handleability = 0.6 * clarity + 0.4 * (1.0 - processing_quantile[sid])
        scores[sid] = QoAScores(
            strategy_id=sid,
            indicativeness=float(np.clip(indicativeness, 0.0, 1.0)),
            precision=float(np.clip(precision, 0.0, 1.0)),
            handleability=float(np.clip(handleability, 0.0, 1.0)),
        )
    return scores


def _quantiles(values: dict[str, float]) -> dict[str, float]:
    items = sorted(values.items(), key=lambda kv: kv[1])
    n = len(items)
    if n == 1:
        return {items[0][0]: 0.5}
    return {key: index / (n - 1) for index, (key, _) in enumerate(items)}
