"""The learned QoA model: one logistic head per criterion."""

from __future__ import annotations

import numpy as np

from repro.analysis.paper_reference import QOA_CRITERIA
from repro.common.errors import ValidationError
from repro.common.rng import derive_rng
from repro.ml.logistic import LogisticRegression

__all__ = ["QoAModel", "train_test_split"]


class QoAModel:
    """Predicts high/low indicativeness, precision, and handleability."""

    def __init__(self, l2: float = 1e-3) -> None:
        self._heads: dict[str, LogisticRegression] = {
            criterion: LogisticRegression(l2=l2) for criterion in QOA_CRITERIA
        }
        self._fitted = False

    @property
    def fitted(self) -> bool:
        """Whether all heads have been trained."""
        return self._fitted

    def fit(self, features: np.ndarray,
            labels: dict[str, np.ndarray]) -> "QoAModel":
        """Train every criterion head on the shared features."""
        for criterion in QOA_CRITERIA:
            if criterion not in labels:
                raise ValidationError(f"missing labels for criterion {criterion!r}")
            self._heads[criterion].fit(features, labels[criterion])
        self._fitted = True
        return self

    def predict_proba(self, features: np.ndarray) -> dict[str, np.ndarray]:
        """P(high quality) per criterion."""
        self._require_fitted()
        return {
            criterion: head.predict_proba(features)
            for criterion, head in self._heads.items()
        }

    def predict(self, features: np.ndarray) -> dict[str, np.ndarray]:
        """Hard high/low predictions per criterion."""
        self._require_fitted()
        return {
            criterion: head.predict(features)
            for criterion, head in self._heads.items()
        }

    def accuracy(self, features: np.ndarray,
                 labels: dict[str, np.ndarray]) -> dict[str, float]:
        """Per-criterion accuracy on a labelled set."""
        self._require_fitted()
        return {
            criterion: self._heads[criterion].accuracy(features, labels[criterion])
            for criterion in QOA_CRITERIA
        }

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ValidationError("QoAModel is not fitted yet")


def train_test_split(
    n: int, test_fraction: float = 0.3, seed: int = 42
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic index split into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if n < 2:
        raise ValidationError(f"need at least 2 rows to split, got {n}")
    rng = derive_rng(seed, "qoa-split")
    order = rng.permutation(n)
    n_test = max(int(n * test_fraction), 1)
    return np.sort(order[n_test:]), np.sort(order[:n_test])
