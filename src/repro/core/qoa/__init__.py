"""Quality of Alerts (QoA) — the paper's §IV proposal, implemented.

Three criteria:

* **indicativeness** — does the alert indicate failures end users feel?
* **precision** — does the alert's severity reflect the anomaly?
* **handleability** — can the alert be handled quickly?

Two evaluation paths are provided, mirroring Figure 6's "incorporating
human knowledge and machine learning":

* :mod:`repro.core.qoa.metrics` — *measured* QoA, computed directly from
  trace observables (no learning);
* :mod:`repro.core.qoa.model` + :mod:`repro.core.qoa.labeling` — the ML
  path: OCEs label alerts high/low per criterion during processing, and
  logistic models learn to predict QoA for new strategies, enabling
  automatic anti-pattern detection (:mod:`repro.core.qoa.evaluator`).
"""

from repro.core.qoa.evaluator import QoAEvaluationReport, evaluate_qoa_pipeline
from repro.core.qoa.features import StrategyFeatureExtractor
from repro.core.qoa.labeling import simulate_oce_labels
from repro.core.qoa.metrics import QoAScores, measure_qoa
from repro.core.qoa.model import QoAModel

__all__ = [
    "StrategyFeatureExtractor",
    "simulate_oce_labels",
    "QoAScores",
    "measure_qoa",
    "QoAModel",
    "QoAEvaluationReport",
    "evaluate_qoa_pipeline",
]
