"""Simulated OCE labels for the QoA criteria.

The paper's proposal: "OCEs provide their domain knowledge by creating
labels like high/low precision/handleability/indicativeness for each
alert during alert processing."  The simulated OCE judges a strategy from
its injected ground truth with label noise (nobody labels perfectly while
firefighting):

* indicativeness low — the rule watches the wrong target or flaps (A3/A4);
* precision low — the severity is misleading (A2);
* handleability low — the name/description hides what happened (A1).
"""

from __future__ import annotations

from repro.analysis.paper_reference import QOA_CRITERIA
from repro.common.rng import derive_rng
from repro.common.validation import require_fraction
from repro.workload.trace import AlertTrace

__all__ = ["simulate_oce_labels", "CRITERION_ANTIPATTERNS"]

#: Which injected anti-patterns pull each criterion low.
CRITERION_ANTIPATTERNS: dict[str, tuple[str, ...]] = {
    "indicativeness": ("A3", "A4"),
    "precision": ("A2",),
    "handleability": ("A1",),
}


def simulate_oce_labels(
    trace: AlertTrace,
    strategy_ids: list[str],
    noise: float = 0.08,
    seed: int = 42,
) -> dict[str, dict[str, int]]:
    """Per-strategy 0/1 labels (1 = high quality) for the three criteria.

    ``noise`` flips each label independently, modelling OCE disagreement;
    flips are deterministic per (strategy, criterion, seed).
    """
    require_fraction(noise, "noise")
    labels: dict[str, dict[str, int]] = {}
    for sid in strategy_ids:
        injected = trace.strategies[sid].injected_antipatterns()
        row: dict[str, int] = {}
        for criterion in QOA_CRITERIA:
            pulled_low = any(
                pattern in injected for pattern in CRITERION_ANTIPATTERNS[criterion]
            )
            label = 0 if pulled_low else 1
            rng = derive_rng(seed, f"qoa-label/{sid}/{criterion}")
            if rng.random() < noise:
                label = 1 - label
            row[criterion] = label
        labels[sid] = row
    return labels
