"""Per-strategy feature extraction for the QoA models.

Features combine the three ingredient classes the paper's criteria name:
text quality (handleability's "presentation"), configuration (severity,
channel, monitored target), and behaviour (lifecycle statistics, OCE
processing time).  Ground-truth quality knobs are never read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alerting.alert import AlertState
from repro.alerting.rules import LogKeywordRule, MetricRule, ProbeRule
from repro.alerting.titles import vagueness_score
from repro.core.antipatterns.base import DetectorThresholds
from repro.core.antipatterns.individual import _incident_overlap_fraction
from repro.core.antipatterns.text import TitleQualityScorer
from repro.workload.trace import AlertTrace

__all__ = ["StrategyFeatureExtractor", "FEATURE_NAMES"]

#: Low-level infrastructure metrics (shared with the A3 detector).
_INFRA_METRICS: frozenset[str] = frozenset({"cpu_util", "memory_util", "disk_util"})

FEATURE_NAMES: tuple[str, ...] = (
    "clarity",
    "vagueness",
    "title_length",
    "severity_rank",
    "is_metric",
    "is_log",
    "is_probe",
    "is_infra_metric",
    "alerts_per_day",
    "transient_share",
    "manual_share",
    "log_mean_duration",
    "incident_overlap",
    "mean_processing_minutes",
    "severity_impact_gap",
)


@dataclass(frozen=True, slots=True)
class _StrategyStats:
    alerts_per_day: float
    transient_share: float
    manual_share: float
    log_mean_duration: float
    incident_overlap: float


class StrategyFeatureExtractor:
    """Builds the (ids, matrix) design of one trace's strategy population."""

    def __init__(self, trace: AlertTrace,
                 thresholds: DetectorThresholds | None = None) -> None:
        self._trace = trace
        self._thresholds = thresholds or DetectorThresholds()
        self._scorer = TitleQualityScorer()

    def extract(self, min_alerts: int = 1) -> tuple[list[str], np.ndarray]:
        """Feature rows for every strategy with at least ``min_alerts``.

        Returns ``(strategy_ids, matrix)`` with columns ordered per
        :data:`FEATURE_NAMES`.
        """
        trace = self._trace
        by_strategy = trace.by_strategy()
        processing = trace.mean_processing_by_strategy()
        days = max(trace.window().duration / 86400.0, 1e-9) if trace.alerts else 1.0

        eligible = [
            sid for sid in sorted(trace.strategies)
            if len(by_strategy.get(sid, [])) >= min_alerts
        ]
        stats_by_sid = {
            sid: self._stats(by_strategy[sid], days) for sid in eligible
        }
        # Population-level impact quantiles feed the severity-impact gap —
        # the interaction a linear model cannot synthesise on its own.
        # Like the A2 detector, the proxy is computed over the strategy's
        # *steady* alerts: transient flaps and storm floods say nothing
        # about severity fit.
        impact_quantile = _quantiles({
            sid: self._steady_impact_proxy(by_strategy[sid], stats_by_sid[sid])
            for sid in eligible
        })

        ids: list[str] = []
        rows: list[list[float]] = []
        for sid in eligible:
            strategy = trace.strategies[sid]
            stats = stats_by_sid[sid]
            clarity = self._scorer.clarity(strategy.title, strategy.description)
            rule = strategy.rule
            is_infra = float(
                isinstance(rule, MetricRule) and rule.metric_name in _INFRA_METRICS
            )
            severity_position = 1.0 - strategy.severity.value / 3.0
            rows.append([
                clarity,
                vagueness_score(f"{strategy.title} {strategy.description}"),
                float(len(strategy.title)),
                severity_position,
                float(isinstance(rule, MetricRule)),
                float(isinstance(rule, LogKeywordRule)),
                float(isinstance(rule, ProbeRule)),
                is_infra,
                stats.alerts_per_day,
                stats.transient_share,
                stats.manual_share,
                stats.log_mean_duration,
                stats.incident_overlap,
                processing.get(sid, 0.0) / 60.0,
                abs(severity_position - impact_quantile[sid]),
            ])
            ids.append(sid)
        matrix = np.array(rows, dtype=float) if rows else np.empty((0, len(FEATURE_NAMES)))
        return ids, matrix

    def _steady_impact_proxy(self, alerts: list, stats: _StrategyStats) -> float:
        thresholds = self._thresholds
        steady = [
            a for a in alerts
            if not a.is_transient(thresholds.intermittent_threshold)
            and a.fault_id is None
        ]
        if len(steady) < 5:
            steady = alerts
        manual = sum(1 for a in steady if a.state is AlertState.CLEARED_MANUAL)
        durations = [a.duration() for a in steady if a.cleared_at is not None]
        mean_duration = float(np.mean(durations)) if durations else 0.0
        return 0.6 * manual / len(steady) + 0.4 * min(mean_duration / 7200.0, 1.0)

    def _stats(self, alerts: list, days: float) -> _StrategyStats:
        thresholds = self._thresholds
        n = len(alerts)
        transient = sum(
            1 for a in alerts if a.is_transient(thresholds.intermittent_threshold)
        )
        manual = sum(1 for a in alerts if a.state is AlertState.CLEARED_MANUAL)
        durations = [a.duration() for a in alerts if a.cleared_at is not None]
        mean_duration = float(np.mean(durations)) if durations else 0.0
        return _StrategyStats(
            alerts_per_day=n / days,
            transient_share=transient / n,
            manual_share=manual / n,
            log_mean_duration=float(np.log1p(mean_duration)),
            incident_overlap=_incident_overlap_fraction(alerts, self._trace),
        )


def _quantiles(values: dict[str, float]) -> dict[str, float]:
    items = sorted(values.items(), key=lambda kv: kv[1])
    n = len(items)
    if n == 1:
        return {items[0][0]: 0.5}
    return {key: index / (n - 1) for index, (key, _) in enumerate(items)}
