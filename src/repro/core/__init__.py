"""The paper's core contribution: anti-pattern characterisation,
mitigation reactions, and Quality-of-Alerts evaluation.

* :mod:`repro.core.antipatterns` — detectors for the six anti-patterns
  (A1-A6) and the paper's candidate-mining pipeline (§III-A);
* :mod:`repro.core.mitigation` — the four postmortem reactions R1-R4 and
  the end-to-end governance pipeline (§III-C, Figure 6);
* :mod:`repro.core.qoa` — the Quality-of-Alerts framework: measured
  indicativeness / precision / handleability plus the ML models trained
  on OCE labels (§IV).
"""
