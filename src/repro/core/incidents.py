"""Incident escalation: from correlated alert clusters to incidents.

Paper Table I: an *incident* is "any unplanned interruption or performance
degradation of a service or product", and "a severe enough alert (or a
group of related alerts) can escalate to an incident".  The escalator
turns R3's alert clusters into incident records by exactly that rule —
either severity or correlated mass is sufficient — giving the governance
loop the incident reports the paper's mining consulted ("we also went
through the incident reports over the past two years").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alerting.alert import Severity
from repro.common.errors import ValidationError
from repro.common.ids import IdFactory
from repro.common.timeutil import TimeWindow
from repro.common.validation import require_positive
from repro.core.mitigation.correlation import AlertCluster

__all__ = ["Incident", "IncidentEscalator"]


@dataclass(frozen=True, slots=True)
class Incident:
    """One escalated incident."""

    incident_id: str
    region: str
    window: TimeWindow
    severity: Severity
    alert_ids: tuple[str, ...]
    services: tuple[str, ...]
    root_microservice: str | None
    reason: str

    def __post_init__(self) -> None:
        if not self.alert_ids:
            raise ValidationError("an incident must reference at least one alert")

    @property
    def size(self) -> int:
        """Number of alerts in the incident."""
        return len(self.alert_ids)

    def render_row(self) -> str:
        """One display line per incident."""
        root = self.root_microservice or "?"
        return (
            f"{self.incident_id}  {self.severity.label:<9} {self.region:<10} "
            f"{self.size:>4} alerts  {len(self.services)} services  root={root}  "
            f"({self.reason})"
        )


class IncidentEscalator:
    """Escalates alert clusters per the severity-or-mass rule."""

    def __init__(
        self,
        severity_floor: Severity = Severity.CRITICAL,
        min_severe_alerts: int = 1,
        mass_threshold: int = 20,
    ) -> None:
        require_positive(min_severe_alerts, "min_severe_alerts")
        require_positive(mass_threshold, "mass_threshold")
        self._severity_floor = severity_floor
        self._min_severe = int(min_severe_alerts)
        self._mass_threshold = int(mass_threshold)
        self._ids = IdFactory("incident", width=4)

    def escalate(self, clusters: list[AlertCluster]) -> list[Incident]:
        """Incidents for every cluster satisfying an escalation rule."""
        incidents = []
        for cluster in clusters:
            reason = self._reason(cluster)
            if reason is None:
                continue
            alerts = cluster.alerts
            severity = min(a.severity for a in alerts)
            incidents.append(Incident(
                incident_id=self._ids.next(),
                region=alerts[0].region,
                window=TimeWindow(
                    min(a.occurred_at for a in alerts),
                    max(a.occurred_at for a in alerts) + 1e-9,
                ),
                severity=severity,
                alert_ids=tuple(a.alert_id for a in alerts),
                services=tuple(sorted({a.service for a in alerts})),
                root_microservice=cluster.root_microservice,
                reason=reason,
            ))
        return incidents

    def _reason(self, cluster: AlertCluster) -> str | None:
        severe = sum(
            1 for a in cluster.alerts if a.severity <= self._severity_floor
        )
        if severe >= self._min_severe:
            return (
                f">= {self._min_severe} alert(s) at "
                f"{self._severity_floor.label} or above"
            )
        if cluster.size >= self._mass_threshold:
            return f"correlated group of {cluster.size} alerts"
        return None
