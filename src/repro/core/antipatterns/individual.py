"""Individual anti-pattern detectors: A1, A2, A3, A4 (paper §III-A1).

All detectors consume only observables — alert text, configured severity,
rule metadata, alert timings/lifecycle, incident (fault) windows — never
the ground-truth quality knobs, which exist solely so the evaluation can
score precision/recall afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.alerting.alert import Alert, AlertState, Severity
from repro.alerting.rules import MetricRule
from repro.common.timeutil import TimeWindow, hour_bucket
from repro.core.antipatterns.base import (
    AntiPatternFinding,
    DetectorThresholds,
    storm_hour_keys,
)
from repro.core.antipatterns.text import TitleQualityScorer
from repro.workload.trace import AlertTrace

__all__ = [
    "UnclearTitleDetector",
    "MisleadingSeverityDetector",
    "ImproperRuleDetector",
    "TransientTogglingDetector",
    "run_individual_detectors",
]

#: Low-level infrastructure metrics (the A3 trap; see §III-A1 [A3]).
_INFRA_METRICS: frozenset[str] = frozenset({"cpu_util", "memory_util", "disk_util"})

class UnclearTitleDetector:
    """A1: strategies whose title/description reads vague."""

    pattern = "A1"

    def __init__(self, thresholds: DetectorThresholds | None = None) -> None:
        self._thresholds = thresholds or DetectorThresholds()
        self._scorer = TitleQualityScorer()

    def detect(self, trace: AlertTrace) -> list[AntiPatternFinding]:
        """Scan every strategy's text."""
        cutoff = self._thresholds.unclear_title_cutoff
        findings = []
        for strategy in trace.strategies.values():
            clarity = self._scorer.clarity(strategy.title, strategy.description)
            if clarity < cutoff:
                findings.append(AntiPatternFinding(
                    pattern=self.pattern,
                    subject=strategy.strategy_id,
                    score=min(1.0, (cutoff - clarity) / cutoff + 0.2),
                    evidence=f"estimated clarity {clarity:.2f} < {cutoff} "
                             f"for title {strategy.title!r}",
                    details={"clarity": clarity},
                ))
        return findings


class MisleadingSeverityDetector:
    """A2: configured severity disagrees with the observed impact.

    Impact is proxied from lifecycle observables — manual-clearance share
    (a human had to intervene) and alert duration — computed over the
    strategy's *steady* alerts (transient flaps and storm floods excluded,
    they are A4/A5-A6 phenomena).  Each configured severity class defines
    a reference impact level from its own population median; a strategy
    whose proxy sits closer to a *different* class's reference behaves
    like that other severity — the A2 signature, in either direction.
    """

    pattern = "A2"

    def __init__(self, thresholds: DetectorThresholds | None = None) -> None:
        self._thresholds = thresholds or DetectorThresholds()

    def detect(self, trace: AlertTrace) -> list[AntiPatternFinding]:
        """Flag strategies whose impact matches another severity class."""
        thresholds = self._thresholds
        storm_hours = storm_hour_keys(trace)
        proxies: dict[str, float] = {}
        for sid, alerts in trace.by_strategy().items():
            # Everything during storm hours reflects the flood, not the
            # strategy's own severity fit; judge the quiet periods only.
            non_storm = [
                a for a in alerts
                if (hour_bucket(a.occurred_at), a.region) not in storm_hours
            ]
            if not non_storm:
                continue
            # Flap- or repeat-dominated strategies are A4/A5 phenomena:
            # their lifecycle proxies say nothing about severity fit.
            transient = sum(
                1 for a in non_storm
                if a.is_transient(thresholds.intermittent_threshold)
            )
            if transient / len(non_storm) >= thresholds.transient_fraction:
                continue
            if self._is_repeat_dominated(non_storm):
                continue
            steady = [
                a for a in non_storm
                if not a.is_transient(thresholds.intermittent_threshold)
            ]
            if len(steady) < thresholds.severity_min_alerts:
                continue
            proxies[sid] = self._impact_proxy(steady)
        if not proxies:
            return []

        by_class: dict[Severity, list[float]] = {}
        for sid, proxy in proxies.items():
            by_class.setdefault(trace.strategies[sid].severity, []).append(proxy)
        centers = {
            severity: float(np.median(values))
            for severity, values in by_class.items()
            if len(values) >= 3
        }
        if len(centers) < 2:
            return []

        findings = []
        for sid, proxy in proxies.items():
            configured = trace.strategies[sid].severity
            if configured not in centers:
                continue
            own_distance = abs(proxy - centers[configured])
            nearest = min(centers, key=lambda sev: abs(proxy - centers[sev]))
            if nearest is configured:
                continue
            margin = own_distance - abs(proxy - centers[nearest])
            if margin <= thresholds.severity_class_margin:
                continue
            if own_distance < thresholds.severity_min_distance:
                continue
            direction = "overstated" if nearest.value > configured.value else "understated"
            findings.append(AntiPatternFinding(
                pattern=self.pattern,
                subject=sid,
                score=min(1.0, 0.5 + margin),
                evidence=(
                    f"configured {configured.label} but impact proxy {proxy:.2f} "
                    f"matches {nearest.label} (center {centers[nearest]:.2f}); "
                    f"severity {direction}"
                ),
                details={
                    "proxy": proxy,
                    "nearest": nearest.label,
                    "margin": margin,
                },
            ))
        return findings

    def _is_repeat_dominated(self, alerts: list[Alert]) -> bool:
        """Whether any 3h-region window holds a repeat-episode-sized run."""
        thresholds = self._thresholds
        by_region: dict[str, list[float]] = {}
        for alert in alerts:
            by_region.setdefault(alert.region, []).append(alert.occurred_at)
        for times in by_region.values():
            times.sort()
            left = 0
            for right in range(len(times)):
                while times[right] - times[left] > thresholds.repeat_window:
                    left += 1
                if right - left + 1 >= thresholds.repeat_window_count:
                    return True
        return False

    @staticmethod
    def _impact_proxy(alerts: list[Alert]) -> float:
        manual = sum(1 for a in alerts if a.state is AlertState.CLEARED_MANUAL)
        manual_share = manual / len(alerts)
        durations = [a.duration() for a in alerts if a.cleared_at is not None]
        mean_duration = float(np.mean(durations)) if durations else 0.0
        # Duration saturates at two hours for the proxy.
        duration_part = min(mean_duration / 7200.0, 1.0)
        return 0.60 * manual_share + 0.40 * duration_part


class ImproperRuleDetector:
    """A3: rules watching low-level infra signals with no user-visible impact.

    Per the paper, infra indicators "do not have a definite effect on the
    quality of cloud services from the perspective of customers" once
    fault tolerance absorbs them — so a strategy that (a) monitors an
    infra metric and (b) almost never co-occurs with incidents is flagged.
    """

    pattern = "A3"

    def __init__(self, thresholds: DetectorThresholds | None = None) -> None:
        self._thresholds = thresholds or DetectorThresholds()

    def detect(self, trace: AlertTrace) -> list[AntiPatternFinding]:
        """Flag infra-metric strategies with negligible incident overlap.

        The overlap statistic ignores alerts raised during storm hours:
        during a flood *every* strategy of an affected component fires, so
        storm co-occurrence says nothing about whether the rule on its own
        indicates user-visible trouble.
        """
        thresholds = self._thresholds
        storm_hours = storm_hour_keys(trace)
        by_strategy = trace.by_strategy()
        findings = []
        for sid, strategy in trace.strategies.items():
            rule = strategy.rule
            if not isinstance(rule, MetricRule) or rule.metric_name not in _INFRA_METRICS:
                continue
            alerts = [
                a for a in by_strategy.get(sid, [])
                if (hour_bucket(a.occurred_at), a.region) not in storm_hours
            ]
            if len(alerts) < thresholds.min_alerts_for_stats:
                continue
            overlap = _incident_overlap_fraction(alerts, trace)
            if overlap <= thresholds.impact_fraction_floor:
                findings.append(AntiPatternFinding(
                    pattern=self.pattern,
                    subject=sid,
                    score=min(1.0, 1.0 - overlap / max(thresholds.impact_fraction_floor, 1e-9)
                              * 0.5),
                    evidence=(
                        f"monitors infra metric {rule.metric_name!r}; only "
                        f"{overlap:.1%} of {len(alerts)} alerts overlap incidents"
                    ),
                    details={"metric": rule.metric_name, "incident_overlap": overlap},
                ))
        return findings


class TransientTogglingDetector:
    """A4: transient alerts (short-lived auto-cleared) and toggling alerts.

    Transient: auto-cleared with duration under the intermittent
    interruption threshold.  Toggling: the same (strategy, region) cycles
    generate/clear more than the oscillation threshold within the
    oscillation window.  Both definitions follow §III-A1 [A4] directly.
    """

    pattern = "A4"

    def __init__(self, thresholds: DetectorThresholds | None = None) -> None:
        self._thresholds = thresholds or DetectorThresholds()

    def detect(self, trace: AlertTrace) -> list[AntiPatternFinding]:
        """Flag strategies with high transient share or toggling episodes."""
        thresholds = self._thresholds
        findings = []
        for sid, alerts in trace.by_strategy().items():
            if len(alerts) < thresholds.min_alerts_for_stats:
                continue
            transients = [
                a for a in alerts if a.is_transient(thresholds.intermittent_threshold)
            ]
            transient_share = len(transients) / len(alerts)
            oscillations = self._max_oscillation(alerts)
            is_transient = transient_share >= thresholds.transient_fraction
            is_toggling = oscillations > thresholds.oscillation_threshold
            if not (is_transient or is_toggling):
                continue
            kinds = []
            if is_transient:
                kinds.append(f"transient share {transient_share:.0%}")
            if is_toggling:
                kinds.append(f"max oscillation {oscillations} in "
                             f"{self._thresholds.oscillation_window / 3600:.0f}h")
            findings.append(AntiPatternFinding(
                pattern=self.pattern,
                subject=sid,
                score=min(1.0, max(
                    transient_share,
                    oscillations / (2 * thresholds.oscillation_threshold),
                )),
                evidence="; ".join(kinds),
                details={
                    "transient_share": transient_share,
                    "max_oscillation": oscillations,
                },
            ))
        return findings

    def _max_oscillation(self, alerts: list[Alert]) -> int:
        """Max short-cycle count of one region within the oscillation window."""
        thresholds = self._thresholds
        best = 0
        by_region: dict[str, list[float]] = {}
        for alert in alerts:
            if alert.is_transient(thresholds.intermittent_threshold):
                by_region.setdefault(alert.region, []).append(alert.occurred_at)
        for times in by_region.values():
            times.sort()
            left = 0
            for right in range(len(times)):
                while times[right] - times[left] > thresholds.oscillation_window:
                    left += 1
                best = max(best, right - left + 1)
        return best


def run_individual_detectors(
    trace: AlertTrace,
    thresholds: DetectorThresholds | None = None,
    subjects: set[str] | None = None,
) -> dict[str, list[AntiPatternFinding]]:
    """Run A1-A4 over ``trace``; optionally restrict to candidate subjects.

    Returns findings grouped by pattern id.
    """
    thresholds = thresholds or DetectorThresholds()
    detectors = (
        UnclearTitleDetector(thresholds),
        MisleadingSeverityDetector(thresholds),
        ImproperRuleDetector(thresholds),
        TransientTogglingDetector(thresholds),
    )
    results: dict[str, list[AntiPatternFinding]] = {}
    for detector in detectors:
        findings = detector.detect(trace)
        if subjects is not None:
            findings = [f for f in findings if f.subject in subjects]
        results[detector.pattern] = findings
    return results


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _incident_overlap_fraction(alerts: list[Alert], trace: AlertTrace) -> float:
    """Fraction of alerts occurring inside any incident (fault) window
    recorded for the same region — the observable stand-in for the paper's
    incident reports."""
    if not trace.faults or not alerts:
        return 0.0
    windows_by_region: dict[str, list[TimeWindow]] = {}
    for fault in trace.faults:
        windows_by_region.setdefault(fault.region, []).append(fault.window)
    hits = 0
    for alert in alerts:
        windows = windows_by_region.get(alert.region, ())
        if any(w.contains(alert.occurred_at) for w in windows):
            hits += 1
    return hits / len(alerts)


def _to_quantiles(values: dict[str, float]) -> dict[str, float]:
    """Map values to their empirical quantile in [0, 1]."""
    items = sorted(values.items(), key=lambda kv: kv[1])
    n = len(items)
    if n == 1:
        return {items[0][0]: 0.5}
    return {key: index / (n - 1) for index, (key, _) in enumerate(items)}
