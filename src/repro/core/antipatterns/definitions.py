"""A3 definition hygiene: stale and duplicate strategy definitions.

The paper's A3 ("improperly configured alert rules") covers more than
infra-metric rules: rule books accrete *stale* definitions that have not
fired in weeks (nobody would notice if they were deleted — or worse,
broken) and *duplicate* definitions — several strategies of one service
carrying the same title and description, so one fault pages the OCE many
times under different strategy ids.

Both judgements need only what the alert stream itself reveals — when
each strategy last fired and what text it carries — so the same pure
function serves two callers:

* :class:`DefinitionHygieneDetector` derives the records from a finished
  :class:`~repro.workload.trace.AlertTrace` (batch);
* :class:`~repro.streaming.detectors.StreamingDetectorSuite` derives
  them from the strategy catalog it accumulates out of per-plane
  detection digests (online).

Because both paths funnel through :func:`definition_findings`, the
online-vs-batch differential test compares *data paths*, not two
re-implementations of the rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.timeutil import DAY
from repro.core.antipatterns.base import AntiPatternFinding, DetectorThresholds
from repro.workload.trace import AlertTrace

__all__ = [
    "DefinitionRecord",
    "definition_findings",
    "DefinitionHygieneDetector",
]


@dataclass(frozen=True, slots=True)
class DefinitionRecord:
    """What the stream reveals about one strategy's definition."""

    strategy_id: str
    service: str
    title: str
    description: str
    #: Event time of the strategy's most recent alert.
    last_seen: float


def _text_key(record: DefinitionRecord) -> tuple[str, str, str]:
    """Normalised duplicate-detection key (case/whitespace insensitive)."""
    return (
        record.service,
        " ".join(record.title.lower().split()),
        " ".join(record.description.lower().split()),
    )


def definition_findings(
    records: list[DefinitionRecord],
    trace_end: float,
    thresholds: DetectorThresholds | None = None,
) -> list[AntiPatternFinding]:
    """A3 stale/duplicate findings over a set of definition records.

    Deterministic: findings come out stale-first, then duplicates, each
    group ordered by strategy id, regardless of input order.
    """
    thresholds = thresholds or DetectorThresholds()
    ordered = sorted(records, key=lambda record: record.strategy_id)
    findings: list[AntiPatternFinding] = []

    stale_after = thresholds.stale_after
    for record in ordered:
        gap = trace_end - record.last_seen
        if gap <= stale_after:
            continue
        findings.append(AntiPatternFinding(
            pattern="A3",
            subject=record.strategy_id,
            score=min(1.0, 0.5 + gap / (4.0 * stale_after)),
            evidence=(
                f"definition stale: last alert {gap / DAY:.1f}d before "
                f"stream end (threshold {stale_after / DAY:.1f}d)"
            ),
            details={"kind": "stale", "gap_seconds": gap},
        ))

    groups: dict[tuple[str, str, str], list[DefinitionRecord]] = {}
    for record in ordered:
        groups.setdefault(_text_key(record), []).append(record)
    for key in sorted(groups):
        group = groups[key]
        if len(group) < thresholds.duplicate_min_strategies:
            continue
        peers = [record.strategy_id for record in group]
        for record in group:
            others = [sid for sid in peers if sid != record.strategy_id]
            findings.append(AntiPatternFinding(
                pattern="A3",
                subject=record.strategy_id,
                score=min(1.0, 0.4 + 0.2 * len(group)),
                evidence=(
                    f"definition duplicates {len(others)} other "
                    f"strategy(ies) of service {record.service!r}: "
                    f"{', '.join(others)}"
                ),
                details={"kind": "duplicate", "peers": others},
            ))
    return findings


class DefinitionHygieneDetector:
    """A3 (definition hygiene) over a finished trace — batch side.

    Judges only strategies that actually fired: a strategy with zero
    alerts in the trace has no ``last_seen`` the stream could ever know,
    and the streaming side (which learns definitions *from* alerts) can
    by construction never see it.  Keeping the batch side to the same
    evidence is what makes online-vs-batch parity meaningful.
    """

    pattern = "A3"

    def __init__(self, thresholds: DetectorThresholds | None = None) -> None:
        self._thresholds = thresholds or DetectorThresholds()

    @staticmethod
    def records_of(trace: AlertTrace) -> tuple[list[DefinitionRecord], float]:
        """Definition records plus the trace-end watermark."""
        last_seen: dict[str, float] = {}
        trace_end = 0.0
        for sid, alerts in trace.by_strategy().items():
            last = max(alert.occurred_at for alert in alerts)
            last_seen[sid] = last
            trace_end = max(trace_end, last)
        records = [
            DefinitionRecord(
                strategy_id=sid,
                service=trace.strategies[sid].service,
                title=trace.strategies[sid].title,
                description=trace.strategies[sid].description,
                last_seen=last,
            )
            for sid, last in sorted(last_seen.items())
        ]
        return records, trace_end

    def detect(self, trace: AlertTrace) -> list[AntiPatternFinding]:
        """Flag stale and duplicate definitions among firing strategies."""
        records, trace_end = self.records_of(trace)
        return definition_findings(records, trace_end, self._thresholds)
