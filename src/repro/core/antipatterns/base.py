"""Shared finding record, detector thresholds, and flood-hour helper."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.timeutil import DAY, HOUR, MINUTE
from repro.common.validation import require_fraction, require_positive
from repro.workload.trace import AlertTrace

__all__ = ["AntiPatternFinding", "DetectorThresholds", "storm_hour_keys"]


def storm_hour_keys(trace: AlertTrace, threshold: int = 100) -> set[tuple[int, str]]:
    """(hour, region) buckets carrying flood-level volume.

    Several individual detectors judge a strategy's *own* behaviour and
    must ignore flood hours: during a storm every strategy of an affected
    component fires, which says nothing about the strategy in isolation.
    """
    return {
        key for key, count in trace.counts_by_hour_region().items() if count > threshold
    }


_PATTERNS = ("A1", "A2", "A3", "A4", "A5", "A6")


@dataclass(frozen=True, slots=True)
class AntiPatternFinding:
    """One detected anti-pattern occurrence.

    ``subject`` identifies what exhibits the pattern — a strategy id for
    individual anti-patterns, a ``"hour=H/region=R"`` group key for
    collective ones.  ``score`` in [0, 1] expresses detector confidence.
    """

    pattern: str
    subject: str
    score: float
    evidence: str
    details: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ValidationError(f"pattern must be one of {_PATTERNS}, got {self.pattern!r}")
        require_fraction(self.score, "score")
        if not self.subject:
            raise ValidationError("subject must be non-empty")


@dataclass(frozen=True, slots=True)
class DetectorThresholds:
    """All detector knobs in one place (paper values where it gives them).

    * ``intermittent_threshold`` — A4's transient cut-off: an auto-cleared
      alert shorter than this is *transient*;
    * ``oscillation_threshold`` — A4: more generate/clear cycles of the
      same (strategy, region) than this within ``oscillation_window`` is
      *toggling*;
    * ``repeat_hourly_count`` — A5: a strategy firing at least this often
      within one hour in one region is *repeating*;
    * ``cascade_root_coverage`` — A6: fraction of a group's microservices
      that must be dependency-connected to the inferred root.
    """

    intermittent_threshold: float = 10 * MINUTE
    transient_fraction: float = 0.30
    oscillation_threshold: int = 5
    oscillation_window: float = 2 * HOUR
    severity_rank_gap: float = 0.35
    severity_class_margin: float = 0.08
    severity_min_distance: float = 0.15
    severity_min_alerts: int = 10
    impact_fraction_floor: float = 0.05
    min_alerts_for_stats: int = 5
    repeat_hourly_count: int = 10
    repeat_share: float = 0.20
    repeat_window: float = 3 * HOUR
    repeat_window_count: int = 8
    repeat_min_episodes: int = 3
    cascade_root_coverage: float = 0.50
    cascade_min_services: int = 3
    cascade_max_hops: int = 6
    unclear_title_cutoff: float = 0.5
    stale_after: float = 7 * DAY
    duplicate_min_strategies: int = 2

    def __post_init__(self) -> None:
        require_positive(self.intermittent_threshold, "intermittent_threshold")
        require_fraction(self.transient_fraction, "transient_fraction")
        require_positive(self.oscillation_threshold, "oscillation_threshold")
        require_positive(self.oscillation_window, "oscillation_window")
        require_fraction(self.severity_rank_gap, "severity_rank_gap")
        require_fraction(self.severity_class_margin, "severity_class_margin")
        require_fraction(self.severity_min_distance, "severity_min_distance")
        require_positive(self.severity_min_alerts, "severity_min_alerts")
        require_fraction(self.impact_fraction_floor, "impact_fraction_floor")
        require_positive(self.min_alerts_for_stats, "min_alerts_for_stats")
        require_positive(self.repeat_hourly_count, "repeat_hourly_count")
        require_fraction(self.repeat_share, "repeat_share")
        require_positive(self.repeat_window, "repeat_window")
        require_positive(self.repeat_window_count, "repeat_window_count")
        require_positive(self.repeat_min_episodes, "repeat_min_episodes")
        require_fraction(self.cascade_root_coverage, "cascade_root_coverage")
        require_positive(self.cascade_min_services, "cascade_min_services")
        require_positive(self.cascade_max_hops, "cascade_max_hops")
        require_fraction(self.unclear_title_cutoff, "unclear_title_cutoff")
        require_positive(self.stale_after, "stale_after")
        require_positive(self.duplicate_min_strategies, "duplicate_min_strategies")
