"""Title/description quality scoring for A1 detection.

Combines the lexical vagueness score with structural signals the paper's
examples exhibit: a clear title names the affected component and a
concrete failure manifestation ("Failed to allocate new blocks, disk
full"); a vague one says "Instance x is abnormal".  The scorer estimates
a clarity value in [0, 1] without reading the strategy's quality knobs.
"""

from __future__ import annotations

import re

from repro.alerting.titles import vagueness_score

__all__ = ["TitleQualityScorer"]

#: Tokens signalling a concrete manifestation (verbs/nouns of failure modes).
_CONCRETE_MARKERS: frozenset[str] = frozenset({
    "disk", "cpu", "memory", "latency", "timeout", "commit", "allocate",
    "blocks", "full", "usage", "threshold", "saturated", "dropped", "lag",
    "backlog", "heartbeat", "probes", "responding", "leak", "slo", "process",
    "throughput", "growing", "regression", "burst", "p99",
})

_COMPONENT_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+){2,}")  # e.g. database-api-00
_NUMBER_RE = re.compile(r"\d")


class TitleQualityScorer:
    """Estimates title clarity from text alone.

    The dominant signal is the presence of a concrete failure
    manifestation: vague titles like "Instance x is abnormal" *do* name a
    component (x), so naming alone proves little — what they lack is any
    statement of what went wrong.
    """

    def __init__(self, vagueness_weight: float = 0.35, structure_weight: float = 0.65) -> None:
        total = vagueness_weight + structure_weight
        self._vagueness_weight = vagueness_weight / total
        self._structure_weight = structure_weight / total

    def clarity(self, title: str, description: str = "") -> float:
        """Estimated clarity in [0, 1]; higher means more informative."""
        text = f"{title} {description}".strip()
        lexical = 1.0 - vagueness_score(text)
        structural = self._structure_score(text)
        return self._vagueness_weight * lexical + self._structure_weight * structural

    def is_unclear(self, title: str, description: str = "", cutoff: float = 0.5) -> bool:
        """Whether the text falls below the clarity cutoff (A1)."""
        return self.clarity(title, description) < cutoff

    @staticmethod
    def _structure_score(text: str) -> float:
        """Structural informativeness: manifestation >> component, detail."""
        lowered = text.lower()
        words = set(re.findall(r"[a-z0-9_-]+", lowered))
        has_component = bool(_COMPONENT_RE.search(lowered))
        has_marker = bool(words & _CONCRETE_MARKERS)
        # Digits count as detail only outside component names; long text
        # with many distinct words also counts.
        without_components = _COMPONENT_RE.sub(" ", lowered)
        has_detail = bool(_NUMBER_RE.search(without_components)) or len(words) >= 9
        return 0.25 * has_component + 0.55 * has_marker + 0.20 * has_detail
