"""Title/description quality scoring for A1 detection.

Combines the lexical vagueness score with structural signals the paper's
examples exhibit: a clear title names the affected component and a
concrete failure manifestation ("Failed to allocate new blocks, disk
full"); a vague one says "Instance x is abnormal".  The scorer estimates
a clarity value in [0, 1] without reading the strategy's quality knobs.
"""

from __future__ import annotations

import re

from repro.alerting.titles import vagueness_score

__all__ = ["TitleQualityScorer"]

#: Tokens signalling a concrete manifestation (verbs/nouns of failure modes).
_CONCRETE_MARKERS: frozenset[str] = frozenset({
    "disk", "cpu", "memory", "latency", "timeout", "commit", "allocate",
    "blocks", "full", "usage", "threshold", "saturated", "dropped", "lag",
    "backlog", "heartbeat", "probes", "responding", "leak", "slo", "process",
    "throughput", "growing", "regression", "burst", "p99",
})

_COMPONENT_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+){2,}")  # e.g. database-api-00
_NUMBER_RE = re.compile(r"\d")

#: The title dominates the clarity verdict: OCEs triage from the alert
#: list, where only the title is visible — a rich description is a
#: secondary signal that cannot rescue an A1-vague title on its own.
_TITLE_WEIGHT = 0.9
_DESCRIPTION_WEIGHT = 0.1


class TitleQualityScorer:
    """Estimates title clarity from text alone.

    The dominant signal is the presence of a concrete failure
    manifestation: vague titles like "Instance x is abnormal" *do* name a
    component (x), so naming alone proves little — what they lack is any
    statement of what went wrong.
    """

    def __init__(self, vagueness_weight: float = 0.35, structure_weight: float = 0.65) -> None:
        total = vagueness_weight + structure_weight
        self._vagueness_weight = vagueness_weight / total
        self._structure_weight = structure_weight / total

    def clarity(self, title: str, description: str = "") -> float:
        """Estimated clarity in [0, 1]; higher means more informative.

        The title is scored on its own; the description contributes only
        a small secondary term.  Scoring the concatenated blob let a
        detailed description mask an A1-vague title ("Instance x is
        abnormal") — exactly the anti-pattern A1 exists to flag.
        """
        title_score = self._text_score(title)
        if not description.strip():
            return title_score
        return (
            _TITLE_WEIGHT * title_score
            + _DESCRIPTION_WEIGHT * self._text_score(description)
        )

    def is_unclear(self, title: str, description: str = "", cutoff: float = 0.5) -> bool:
        """Whether the text falls below the clarity cutoff (A1)."""
        return self.clarity(title, description) < cutoff

    def _text_score(self, text: str) -> float:
        """Lexical + structural clarity of one piece of text."""
        lexical = 1.0 - vagueness_score(text)
        structural = self._structure_score(text)
        return self._vagueness_weight * lexical + self._structure_weight * structural

    @staticmethod
    def _structure_score(text: str) -> float:
        """Structural informativeness: manifestation >> component, detail."""
        lowered = text.lower()
        words = set(re.findall(r"[a-z0-9_-]+", lowered))
        has_component = bool(_COMPONENT_RE.search(lowered))
        has_marker = bool(words & _CONCRETE_MARKERS)
        # Digits count as detail only outside component names; long text
        # with many distinct words also counts.  The component-stripping
        # pass is the expensive step, so take it only when the verdict
        # actually hinges on where the digits sit.
        if len(words) >= 9:
            has_detail = True
        elif not _NUMBER_RE.search(lowered):
            has_detail = False
        else:
            has_detail = bool(
                _NUMBER_RE.search(_COMPONENT_RE.sub(" ", lowered))
            )
        return 0.25 * has_component + 0.55 * has_marker + 0.20 * has_detail
