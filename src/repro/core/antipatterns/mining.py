"""The paper's candidate-mining pipeline (§III-A).

Reproduces the methodology verbatim:

1. *Individual candidates* — group alerts by strategy, compute each
   strategy's mean processing time, keep the top 30 %;
2. *Collective candidates* — group alerts per (hour, region); groups over
   200 alerts (the estimated hourly capacity of an OCE team) become
   candidates;
3. *Storms* — hours with more than 100 alerts in a region, consecutive
   storm hours merged into one episode;
4. run the A1-A6 detectors over the candidates and score the result
   against the injected ground truth (standing in for the paper's
   two-OCE confirmation step).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import paper_reference as paper
from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, TimeWindow
from repro.common.validation import require_fraction
from repro.core.antipatterns.base import AntiPatternFinding, DetectorThresholds
from repro.core.antipatterns.collective import (
    CascadeFinding,
    CascadingAlertsDetector,
    RepeatingAlertsDetector,
)
from repro.core.antipatterns.individual import run_individual_detectors
from repro.topology.graph import DependencyGraph
from repro.workload.trace import AlertTrace

__all__ = [
    "StormEpisode",
    "MiningReport",
    "select_individual_candidates",
    "collective_candidate_groups",
    "detect_storms",
    "run_mining_pipeline",
    "score_findings",
]


@dataclass(frozen=True, slots=True)
class StormEpisode:
    """One merged run of storm hours in one region."""

    region: str
    start_hour: int
    end_hour: int  # inclusive
    total_alerts: int

    def __post_init__(self) -> None:
        if self.end_hour < self.start_hour:
            raise ValidationError("end_hour precedes start_hour")

    @property
    def n_hours(self) -> int:
        """Episode length in hours."""
        return self.end_hour - self.start_hour + 1

    @property
    def window(self) -> TimeWindow:
        """The covered time window."""
        return TimeWindow(self.start_hour * HOUR, (self.end_hour + 1) * HOUR)


def select_individual_candidates(
    trace: AlertTrace, fraction: float = paper.TOP_PROCESSING_FRACTION
) -> tuple[set[str], dict[str, float]]:
    """Top ``fraction`` strategies by mean processing time (§III-A step 1).

    Returns the candidate strategy ids and the full per-strategy means.
    Strategies without sampled processing outcomes cannot rank.
    """
    require_fraction(fraction, "fraction")
    means = trace.mean_processing_by_strategy()
    if not means:
        return set(), {}
    ranked = sorted(means.items(), key=lambda kv: kv[1], reverse=True)
    keep = max(int(len(ranked) * fraction), 1)
    return {sid for sid, _ in ranked[:keep]}, means


def collective_candidate_groups(
    trace: AlertTrace, threshold: int = paper.COLLECTIVE_CANDIDATE_THRESHOLD
) -> dict[tuple[int, str], list]:
    """(hour, region) groups whose alert count exceeds ``threshold``."""
    grouped = trace.alerts_by_hour_region()
    return {key: alerts for key, alerts in grouped.items() if len(alerts) > threshold}


def detect_storms(
    trace: AlertTrace, threshold: int = paper.STORM_THRESHOLD
) -> list[StormEpisode]:
    """Hours over ``threshold`` alerts per region, consecutive hours merged."""
    counts = trace.counts_by_hour_region()
    by_region: dict[str, list[tuple[int, int]]] = {}
    for (hour, region), count in counts.items():
        if count > threshold:
            by_region.setdefault(region, []).append((hour, count))
    episodes: list[StormEpisode] = []
    for region, hours in by_region.items():
        hours.sort()
        run_start, run_end, run_total = hours[0][0], hours[0][0], hours[0][1]
        for hour, count in hours[1:]:
            if hour == run_end + 1:
                run_end = hour
                run_total += count
            else:
                episodes.append(StormEpisode(region, run_start, run_end, run_total))
                run_start, run_end, run_total = hour, hour, count
        episodes.append(StormEpisode(region, run_start, run_end, run_total))
    episodes.sort(key=lambda e: (e.start_hour, e.region))
    return episodes


@dataclass(slots=True)
class MiningReport:
    """Everything the mining pipeline found."""

    individual_candidates: set[str] = field(default_factory=set)
    mean_processing: dict[str, float] = field(default_factory=dict)
    individual_findings: dict[str, list[AntiPatternFinding]] = field(default_factory=dict)
    collective_groups: dict[tuple[int, str], int] = field(default_factory=dict)
    repeating_findings: list[AntiPatternFinding] = field(default_factory=list)
    cascade_findings: list[CascadeFinding] = field(default_factory=list)
    storms: list[StormEpisode] = field(default_factory=list)
    trace_days: float = 0.0
    scores: dict[str, dict[str, float]] = field(default_factory=dict)
    full_findings: dict[str, list[AntiPatternFinding]] = field(default_factory=dict)
    full_scores: dict[str, dict[str, float]] = field(default_factory=dict)
    candidate_enrichment: float = 0.0
    population_antipattern_rate: float = 0.0

    @property
    def individual_patterns_found(self) -> list[str]:
        """Individual patterns with at least one finding among candidates."""
        return sorted(p for p, f in self.individual_findings.items() if f)

    @property
    def collective_patterns_found(self) -> list[str]:
        """Collective patterns with at least one finding."""
        found = []
        if self.repeating_findings:
            found.append("A5")
        if self.cascade_findings:
            found.append("A6")
        return found

    @property
    def storms_per_week(self) -> float:
        """Mean storm frequency across the trace."""
        if self.trace_days <= 0:
            return 0.0
        return len(self.storms) / (self.trace_days / 7.0)

    def render(self) -> str:
        """Multi-line summary of the mining outcome."""
        lines = [
            f"individual candidates: {len(self.individual_candidates)} strategies "
            f"(top {paper.TOP_PROCESSING_FRACTION:.0%} of {len(self.mean_processing)} "
            f"by mean processing time)",
            f"candidate anti-pattern rate: {self.candidate_enrichment:.0%} "
            f"(population base rate {self.population_antipattern_rate:.0%})",
            f"individual patterns found: {', '.join(self.individual_patterns_found) or 'none'}",
            f"collective candidate groups (> {paper.COLLECTIVE_CANDIDATE_THRESHOLD}/h/region): "
            f"{len(self.collective_groups)}",
            f"collective patterns found: {', '.join(self.collective_patterns_found) or 'none'}",
            f"storms (> {paper.STORM_THRESHOLD}/h/region, merged): {len(self.storms)} "
            f"episodes ({self.storms_per_week:.1f}/week)",
        ]
        lines.append("detector quality (unrestricted, vs injected ground truth):")
        for pattern in sorted(self.full_scores):
            s = self.full_scores[pattern]
            lines.append(
                f"  {pattern}: precision {s['precision']:.2f}  recall {s['recall']:.2f}  "
                f"(flagged {s['flagged']:.0f}, injected {s['injected']:.0f})"
            )
        return "\n".join(lines)


def score_findings(
    trace: AlertTrace,
    findings_by_pattern: dict[str, list[AntiPatternFinding]],
    min_alerts: int = 5,
) -> dict[str, dict[str, float]]:
    """Precision/recall of strategy-level findings vs injected ground truth.

    Recall is computed over strategies that actually produced at least
    ``min_alerts`` alerts — behavioural detectors cannot judge silent
    strategies, and the paper's mining equally only sees alerting ones.
    """
    by_strategy = trace.by_strategy()
    active = {sid for sid, alerts in by_strategy.items() if len(alerts) >= min_alerts}
    scores: dict[str, dict[str, float]] = {}
    for pattern, findings in findings_by_pattern.items():
        flagged = {f.subject for f in findings}
        injected = {
            sid for sid in active
            if pattern in trace.strategies[sid].injected_antipatterns()
        }
        true_positives = len(flagged & injected)
        precision = true_positives / len(flagged) if flagged else 0.0
        recall = true_positives / len(injected) if injected else 0.0
        scores[pattern] = {
            "precision": precision,
            "recall": recall,
            "flagged": float(len(flagged)),
            "injected": float(len(injected)),
        }
    return scores


def run_mining_pipeline(
    trace: AlertTrace,
    graph: DependencyGraph,
    thresholds: DetectorThresholds | None = None,
) -> MiningReport:
    """The full §III-A pipeline over one trace."""
    thresholds = thresholds or DetectorThresholds()
    report = MiningReport()
    report.trace_days = trace.window().duration / 86400.0 if trace.alerts else 0.0

    candidates, means = select_individual_candidates(trace)
    report.individual_candidates = candidates
    report.mean_processing = means
    report.full_findings = run_individual_detectors(trace, thresholds)
    report.individual_findings = {
        pattern: [f for f in findings if f.subject in candidates]
        for pattern, findings in report.full_findings.items()
    }
    if means:
        def has_injected(sid: str) -> bool:
            return bool(trace.strategies[sid].injected_antipatterns())

        report.candidate_enrichment = (
            sum(1 for sid in candidates if has_injected(sid)) / len(candidates)
            if candidates else 0.0
        )
        report.population_antipattern_rate = (
            sum(1 for sid in means if has_injected(sid)) / len(means)
        )

    groups = collective_candidate_groups(trace)
    report.collective_groups = {key: len(alerts) for key, alerts in groups.items()}
    repeat_detector = RepeatingAlertsDetector(thresholds)
    cascade_detector = CascadingAlertsDetector(graph, thresholds)
    for (hour, region), alerts in sorted(groups.items()):
        group_key = f"hour={hour}/region={region}"
        report.repeating_findings.extend(
            repeat_detector.detect_in_group(alerts, group_key)
        )
        cascade = cascade_detector.detect_in_group(alerts, group_key)
        if cascade is not None:
            report.cascade_findings.append(cascade)

    report.storms = detect_storms(trace)
    report.scores = score_findings(
        trace, report.individual_findings, thresholds.min_alerts_for_stats
    )
    report.full_scores = score_findings(
        trace, report.full_findings, thresholds.min_alerts_for_stats
    )
    return report
