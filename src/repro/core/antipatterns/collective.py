"""Collective anti-pattern detectors: A5 repeating, A6 cascading (§III-A2).

Both detectors operate on *groups* of alerts (typically the >200/h/region
collective candidates or detected storm episodes); the repeating detector
additionally offers a trace-wide chronic mode that finds strategies which
repeat episode after episode, like Figure 3's HAProxy warning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alerting.alert import Alert
from repro.common.timeutil import hour_bucket
from repro.core.antipatterns.base import (
    AntiPatternFinding,
    DetectorThresholds,
    storm_hour_keys,
)
from repro.topology.graph import DependencyGraph
from repro.workload.trace import AlertTrace

__all__ = [
    "RepeatingAlertsDetector",
    "CascadingAlertsDetector",
    "CascadeFinding",
    "infer_cascade_root",
]


def infer_cascade_root(
    earliest: dict[str, float],
    graph: DependencyGraph,
    max_hops: int,
) -> tuple[str, float] | None:
    """Infer the most likely cascade root among involved microservices.

    ``earliest`` maps each involved microservice to its first alert time.
    The root candidate maximises 0.7 x *causal coverage* (fraction of
    involved microservices that transitively depend on it within
    ``max_hops`` AND alerted no earlier than it — a cause cannot postdate
    its effects) plus 0.3 x earliness.  Returns ``(root, coverage)`` or
    ``None`` when fewer than two known microservices are involved.
    """
    involved = {m for m in earliest if m in graph}
    if len(involved) < 2:
        return None
    reach: dict[str, set[str]] = {}
    for micro in involved:
        downstream = graph.downstream_dependencies(micro, max_depth=max_hops)
        reach[micro] = (set(downstream) | {micro}) & involved
    order = sorted(involved, key=lambda m: earliest[m])
    position = {micro: index for index, micro in enumerate(order)}
    n = len(order)
    best: tuple[float, float, str] | None = None
    for candidate in sorted(involved):
        covered = sum(
            1 for m in involved
            if candidate in reach[m] and earliest[m] >= earliest[candidate]
        )
        coverage = covered / n
        earliness = 1.0 - position[candidate] / max(n - 1, 1)
        score = 0.7 * coverage + 0.3 * earliness
        key = (score, coverage, candidate)
        if best is None or key > best:
            best = key
    _, coverage, root = best
    return root, coverage


class RepeatingAlertsDetector:
    """A5: the same strategy's alerts appearing over and over."""

    pattern = "A5"

    def __init__(self, thresholds: DetectorThresholds | None = None) -> None:
        self._thresholds = thresholds or DetectorThresholds()

    def detect_in_group(self, alerts: list[Alert], group_key: str) -> list[AntiPatternFinding]:
        """Repeating strategies within one candidate group.

        A strategy repeats within a group when it contributes at least
        ``repeat_share`` of the group or at least ``repeat_hourly_count``
        alerts — Figure 3's HAProxy strategy satisfies both.
        """
        thresholds = self._thresholds
        by_strategy: dict[str, int] = {}
        for alert in alerts:
            by_strategy[alert.strategy_id] = by_strategy.get(alert.strategy_id, 0) + 1
        total = len(alerts)
        findings = []
        for strategy_id, count in sorted(by_strategy.items()):
            share = count / total if total else 0.0
            if count >= thresholds.repeat_hourly_count or share >= thresholds.repeat_share:
                findings.append(AntiPatternFinding(
                    pattern=self.pattern,
                    subject=strategy_id,
                    score=min(1.0, max(share / thresholds.repeat_share * 0.5, 0.5)),
                    evidence=(
                        f"{count} alerts ({share:.0%} of group {group_key}) "
                        f"from one strategy"
                    ),
                    details={"group": group_key, "count": count, "share": share},
                ))
        return findings

    def detect(self, trace: AlertTrace,
               exclude_flood_hours: bool = True) -> list[AntiPatternFinding]:
        """Chronic repeating: strategies with many repeat episodes.

        An *episode* is a ``repeat_window`` span in one region holding at
        least ``repeat_window_count`` alerts of the strategy; episodes are
        counted disjointly.  Strategies reaching ``repeat_min_episodes``
        are flagged.

        With ``exclude_flood_hours`` (the default), alerts raised during
        storm hours do not count towards episodes: every storm participant
        fires in bursts during a flood, and blocking rules derived from
        chronic repeats must not silence incident signal (the distinction
        between this mode and :meth:`detect_in_group`, which judges
        repetition *within* a flood, as Figure 3 does for HAProxy).
        """
        thresholds = self._thresholds
        flood_hours = storm_hour_keys(trace) if exclude_flood_hours else set()
        findings = []
        for strategy_id, alerts in trace.by_strategy().items():
            episodes = 0
            by_region: dict[str, list[float]] = {}
            for alert in alerts:
                if (hour_bucket(alert.occurred_at), alert.region) in flood_hours:
                    continue
                by_region.setdefault(alert.region, []).append(alert.occurred_at)
            for times in by_region.values():
                episodes += self._count_episodes(sorted(times))
            if episodes >= thresholds.repeat_min_episodes:
                findings.append(AntiPatternFinding(
                    pattern=self.pattern,
                    subject=strategy_id,
                    score=min(1.0, episodes / (2 * thresholds.repeat_min_episodes)),
                    evidence=(
                        f"{episodes} repeat episodes "
                        f"(>= {thresholds.repeat_window_count} alerts within "
                        f"{thresholds.repeat_window / 3600:.0f}h)"
                    ),
                    details={"episodes": episodes},
                ))
        return findings

    def _count_episodes(self, times: list[float]) -> int:
        """Disjoint windows with at least ``repeat_window_count`` alerts."""
        thresholds = self._thresholds
        episodes = 0
        index = 0
        n = len(times)
        while index < n:
            end = times[index] + thresholds.repeat_window
            span = index
            while span < n and times[span] < end:
                span += 1
            if span - index >= thresholds.repeat_window_count:
                episodes += 1
                index = span  # disjoint: jump past this episode
            else:
                index += 1
        return episodes


@dataclass(frozen=True, slots=True)
class CascadeFinding:
    """A6 verdict on one alert group."""

    finding: AntiPatternFinding
    root_microservice: str
    coverage: float
    involved_microservices: int
    involved_services: int


class CascadingAlertsDetector:
    """A6: implicitly related alerts propagating through the call structure.

    Infers a root candidate: the involved microservice that the largest
    fraction of involved microservices transitively *depend on* (within
    ``cascade_max_hops``), weighted toward early alerts.  A group is
    cascading when that coverage passes ``cascade_root_coverage`` and the
    group spans at least ``cascade_min_services`` distinct services.
    """

    pattern = "A6"

    def __init__(self, graph: DependencyGraph,
                 thresholds: DetectorThresholds | None = None) -> None:
        self._graph = graph
        self._thresholds = thresholds or DetectorThresholds()

    def detect_in_group(self, alerts: list[Alert], group_key: str) -> CascadeFinding | None:
        """Judge one alert group; returns the verdict or ``None``."""
        thresholds = self._thresholds
        earliest: dict[str, float] = {}
        services: set[str] = set()
        for alert in alerts:
            if alert.microservice not in self._graph:
                continue
            services.add(alert.service)
            current = earliest.get(alert.microservice)
            if current is None or alert.occurred_at < current:
                earliest[alert.microservice] = alert.occurred_at
        if len(services) < thresholds.cascade_min_services or len(earliest) < 2:
            return None

        inferred = infer_cascade_root(earliest, self._graph, thresholds.cascade_max_hops)
        if inferred is None:
            return None
        root, coverage = inferred
        if coverage < thresholds.cascade_root_coverage:
            return None
        n = len(earliest)
        finding = AntiPatternFinding(
            pattern=self.pattern,
            subject=group_key,
            score=min(1.0, coverage),
            evidence=(
                f"{coverage:.0%} of {n} involved microservices transitively depend "
                f"on {root!r}; {len(services)} services affected"
            ),
            details={"root": root, "coverage": coverage},
        )
        return CascadeFinding(
            finding=finding,
            root_microservice=root,
            coverage=coverage,
            involved_microservices=n,
            involved_services=len(services),
        )
