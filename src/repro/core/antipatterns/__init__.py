"""Anti-pattern detection (paper §III-A).

Individual anti-patterns (per strategy):

* **A1** Unclear Name or Description — :class:`UnclearTitleDetector`
* **A2** Misleading Severity — :class:`MisleadingSeverityDetector`
* **A3** Improper and Outdated Generation Rule — :class:`ImproperRuleDetector`
* **A4** Transient and Toggling Alerts — :class:`TransientTogglingDetector`

Collective anti-patterns (per alert group):

* **A5** Repeating Alerts — :class:`RepeatingAlertsDetector`
* **A6** Cascading Alerts — :class:`CascadingAlertsDetector`

:mod:`repro.core.antipatterns.mining` implements the candidate-selection
methodology: strategies in the top 30 % of mean processing time become
individual candidates; (hour, region) groups over 200 alerts become
collective candidates; storms are >100-alert hours with consecutive hours
merged.
"""

from repro.core.antipatterns.base import AntiPatternFinding, DetectorThresholds
from repro.core.antipatterns.collective import (
    CascadeFinding,
    CascadingAlertsDetector,
    RepeatingAlertsDetector,
)
from repro.core.antipatterns.individual import (
    ImproperRuleDetector,
    MisleadingSeverityDetector,
    TransientTogglingDetector,
    UnclearTitleDetector,
    run_individual_detectors,
)
from repro.core.antipatterns.mining import (
    MiningReport,
    StormEpisode,
    collective_candidate_groups,
    detect_storms,
    run_mining_pipeline,
    select_individual_candidates,
)
from repro.core.antipatterns.text import TitleQualityScorer

__all__ = [
    "AntiPatternFinding",
    "DetectorThresholds",
    "TitleQualityScorer",
    "UnclearTitleDetector",
    "MisleadingSeverityDetector",
    "ImproperRuleDetector",
    "TransientTogglingDetector",
    "run_individual_detectors",
    "RepeatingAlertsDetector",
    "CascadingAlertsDetector",
    "CascadeFinding",
    "MiningReport",
    "StormEpisode",
    "select_individual_candidates",
    "collective_candidate_groups",
    "detect_storms",
    "run_mining_pipeline",
]
