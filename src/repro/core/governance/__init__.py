"""Preventative alert governance (paper §III-D, RQ4).

The paper's avoidance measures are guidelines over three aspects of an
alert strategy:

* **Target** — what to monitor: "the performance metrics highly related
  to the service quality should be monitored";
* **Timing** — when to generate an alert: "sometimes an anomaly does not
  necessarily mean the service quality will be affected";
* **Presentation** — "whether the alerts' attributes are helpful for
  alert diagnosis".

:class:`GuidelineChecker` lints strategies against the three aspects
before they ship; :class:`PeriodicReview` models the periodical reviews
Huawei Cloud conducts, rewriting non-compliant strategies.  Finding 4 —
guidelines reduce anti-patterns and ease diagnosis *if strictly obeyed* —
is quantified by the AVOID benchmark.
"""

from repro.core.governance.guidelines import (
    GuidelineChecker,
    GuidelineReport,
    GuidelineViolation,
)
from repro.core.governance.review import PeriodicReview, ReviewOutcome

__all__ = [
    "GuidelineChecker",
    "GuidelineViolation",
    "GuidelineReport",
    "PeriodicReview",
    "ReviewOutcome",
]
