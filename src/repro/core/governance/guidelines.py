"""Guideline linting over the Target / Timing / Presentation aspects.

The checker consumes only what a reviewer could see — the strategy's rule
configuration and its text — never the ground-truth quality knobs, so it
is a genuine *preventative* check usable before any alert ever fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.alerting.rules import LogKeywordRule, MetricRule, ProbeRule
from repro.alerting.strategy import AlertStrategy
from repro.common.errors import ValidationError
from repro.core.antipatterns.text import TitleQualityScorer
from repro.telemetry.metrics import default_profiles
from repro.topology.generator import CloudTopology

__all__ = ["GuidelineViolation", "GuidelineReport", "GuidelineChecker"]

_ASPECTS = ("target", "timing", "presentation")

#: Low-level infrastructure metrics: monitoring them *alone* violates the
#: Target guideline once fault tolerance decouples them from user impact.
_INFRA_METRICS: frozenset[str] = frozenset({"cpu_util", "memory_util", "disk_util"})


@dataclass(frozen=True, slots=True)
class GuidelineViolation:
    """One guideline violation found on one strategy."""

    aspect: str
    strategy_id: str
    message: str

    def __post_init__(self) -> None:
        if self.aspect not in _ASPECTS:
            raise ValidationError(f"aspect must be one of {_ASPECTS}, got {self.aspect!r}")


@dataclass(slots=True)
class GuidelineReport:
    """All violations of one review pass."""

    violations: list[GuidelineViolation] = field(default_factory=list)
    strategies_checked: int = 0

    def by_aspect(self) -> dict[str, int]:
        """Violation counts per guideline aspect."""
        counts = {aspect: 0 for aspect in _ASPECTS}
        for violation in self.violations:
            counts[violation.aspect] += 1
        return counts

    def non_compliant_strategies(self) -> set[str]:
        """Ids of strategies with at least one violation."""
        return {violation.strategy_id for violation in self.violations}

    def compliance_rate(self) -> float:
        """Fraction of checked strategies with no violation."""
        if self.strategies_checked == 0:
            return 1.0
        return 1.0 - len(self.non_compliant_strategies()) / self.strategies_checked

    def render(self) -> str:
        """Counts summary for reports."""
        per_aspect = ", ".join(
            f"{aspect}={count}" for aspect, count in self.by_aspect().items()
        )
        return (
            f"checked {self.strategies_checked} strategies: "
            f"{len(self.non_compliant_strategies())} non-compliant "
            f"({self.compliance_rate():.0%} compliant); violations: {per_aspect}"
        )


class GuidelineChecker:
    """Lints alert strategies against the §III-D guidelines."""

    def __init__(self, topology: CloudTopology, clarity_cutoff: float = 0.5) -> None:
        self._topology = topology
        self._scorer = TitleQualityScorer()
        self._clarity_cutoff = clarity_cutoff

    def check(self, strategy: AlertStrategy) -> list[GuidelineViolation]:
        """All violations of one strategy."""
        violations = []
        violations.extend(self._check_target(strategy))
        violations.extend(self._check_timing(strategy))
        violations.extend(self._check_presentation(strategy))
        return violations

    def review(self, strategies: Iterable[AlertStrategy]) -> GuidelineReport:
        """Lint a whole population."""
        report = GuidelineReport()
        for strategy in strategies:
            report.strategies_checked += 1
            report.violations.extend(self.check(strategy))
        return report

    # ------------------------------------------------------------------
    # the three aspects
    # ------------------------------------------------------------------
    def _check_target(self, strategy: AlertStrategy) -> list[GuidelineViolation]:
        """Target: monitor metrics highly related to service quality."""
        rule = strategy.rule
        if isinstance(rule, MetricRule) and rule.metric_name in _INFRA_METRICS:
            return [GuidelineViolation(
                aspect="target",
                strategy_id=strategy.strategy_id,
                message=(
                    f"monitors low-level infra metric {rule.metric_name!r}; "
                    f"prefer a service-quality indicator"
                ),
            )]
        return []

    def _check_timing(self, strategy: AlertStrategy) -> list[GuidelineViolation]:
        """Timing: an anomaly blip must not immediately page a human."""
        rule = strategy.rule
        violations = []
        if isinstance(rule, MetricRule):
            detector = rule.detector
            min_consecutive = getattr(detector, "min_consecutive", None)
            if min_consecutive is not None and min_consecutive < 2:
                violations.append(GuidelineViolation(
                    aspect="timing",
                    strategy_id=strategy.strategy_id,
                    message="no debouncing: a single sample over threshold alerts",
                ))
            threshold = getattr(detector, "threshold", None)
            direction = getattr(detector, "direction", "above")
            if threshold is not None and direction == "above":
                profile = self._profile_of(strategy, rule.metric_name)
                if profile is not None:
                    normal_peak = (
                        profile.base + profile.daily_amplitude + 2.0 * profile.noise_std
                    )
                    if threshold < normal_peak * 1.05:
                        violations.append(GuidelineViolation(
                            aspect="timing",
                            strategy_id=strategy.strategy_id,
                            message=(
                                f"threshold {threshold:.0f} sits inside the normal "
                                f"operating band (peak ~{normal_peak:.0f})"
                            ),
                        ))
        elif isinstance(rule, LogKeywordRule) and rule.min_count < 3:
            violations.append(GuidelineViolation(
                aspect="timing",
                strategy_id=strategy.strategy_id,
                message=f"fires on only {rule.min_count} error lines",
            ))
        elif isinstance(rule, ProbeRule) and rule.no_response_threshold < 60.0:
            violations.append(GuidelineViolation(
                aspect="timing",
                strategy_id=strategy.strategy_id,
                message=(
                    f"no-response threshold {rule.no_response_threshold:.0f}s pages "
                    f"on a single missed heartbeat"
                ),
            ))
        return violations

    def _check_presentation(self, strategy: AlertStrategy) -> list[GuidelineViolation]:
        """Presentation: the title must carry component + manifestation."""
        clarity = self._scorer.clarity(strategy.title, strategy.description)
        if clarity < self._clarity_cutoff:
            return [GuidelineViolation(
                aspect="presentation",
                strategy_id=strategy.strategy_id,
                message=(
                    f"title {strategy.title!r} reads vague "
                    f"(estimated clarity {clarity:.2f})"
                ),
            )]
        return []

    def _profile_of(self, strategy: AlertStrategy, metric_name: str):
        service = self._topology.services.get(strategy.service)
        if service is None:
            return None
        return default_profiles(service.archetype).get(metric_name)
