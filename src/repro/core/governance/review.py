"""Periodic strategy review: find violations, rewrite the strategies.

§III-D: Huawei Cloud "adopts preventative guidelines and conducts
periodical reviews on alert strategies" — but "the preventative
guidelines are not strictly obeyed in practice".  The review model makes
that knob explicit: ``compliance`` is the probability that a flagged
strategy actually gets fixed, so Finding 4 ("strictly following the
guidelines will make alert diagnosis easier") becomes measurable by
sweeping compliance from lax to strict.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.alerting.rules import LogKeywordRule, MetricRule, ProbeRule
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.alerting.titles import make_description, make_title
from repro.common.rng import derive_rng
from repro.common.validation import require_fraction
from repro.core.governance.guidelines import GuidelineChecker
from repro.detection.threshold import StaticThresholdDetector
from repro.telemetry.metrics import default_profiles
from repro.topology.generator import CloudTopology
from repro.workload.strategies import (
    _MANIFESTATION_BY_METRIC,
    _SERVICE_QUALITY_METRICS,
)

__all__ = ["ReviewOutcome", "PeriodicReview"]


@dataclass(slots=True)
class ReviewOutcome:
    """The result of one review pass."""

    strategies: list[AlertStrategy] = field(default_factory=list)
    flagged: int = 0
    fixed: int = 0

    @property
    def fix_rate(self) -> float:
        """Fraction of flagged strategies that were actually rewritten."""
        return self.fixed / self.flagged if self.flagged else 1.0


class PeriodicReview:
    """Rewrites guideline-violating strategies with probability ``compliance``."""

    def __init__(self, topology: CloudTopology, compliance: float = 1.0,
                 seed: int = 42) -> None:
        require_fraction(compliance, "compliance")
        self._topology = topology
        self._checker = GuidelineChecker(topology)
        self._compliance = compliance
        self._seed = seed

    def run(self, strategies: list[AlertStrategy]) -> ReviewOutcome:
        """Review every strategy; fix flagged ones per the compliance level."""
        rng = derive_rng(self._seed, "periodic-review")
        outcome = ReviewOutcome()
        for strategy in strategies:
            violations = self._checker.check(strategy)
            if not violations:
                outcome.strategies.append(strategy)
                continue
            outcome.flagged += 1
            if rng.random() < self._compliance:
                outcome.strategies.append(self.fix(strategy, rng))
                outcome.fixed += 1
            else:
                outcome.strategies.append(strategy)
        return outcome

    def fix(self, strategy: AlertStrategy, rng) -> AlertStrategy:
        """A guideline-compliant rewrite of ``strategy``.

        Every aspect is repaired: the rule is retargeted/debounced
        (Target, Timing), the text rewritten (Presentation), and the
        severity re-derived from the rule — so the quality knobs reflect
        the clean configuration.
        """
        rule = strategy.rule
        quality = strategy.quality
        service = self._topology.services[strategy.service]
        profiles = default_profiles(service.archetype)
        metric_name = None

        if isinstance(rule, MetricRule):
            metric_name = rule.metric_name
            if metric_name not in _SERVICE_QUALITY_METRICS:
                candidates = sorted(set(profiles) & _SERVICE_QUALITY_METRICS)
                metric_name = candidates[int(rng.integers(len(candidates)))]
            profile = profiles[metric_name]
            normal_peak = profile.base + profile.daily_amplitude + 2.0 * profile.noise_std
            rule = MetricRule(
                metric_name=metric_name,
                detector=StaticThresholdDetector(
                    threshold=normal_peak * 1.25, direction="above", min_consecutive=3,
                ),
                lookback_seconds=rule.lookback_seconds,
                sample_interval=rule.sample_interval,
            )
        elif isinstance(rule, LogKeywordRule) and rule.min_count < 3:
            rule = replace(rule, min_count=5)
        elif isinstance(rule, ProbeRule) and rule.no_response_threshold < 60.0:
            rule = replace(rule, no_response_threshold=120.0)

        manifestation = (
            _MANIFESTATION_BY_METRIC.get(metric_name, "latency_regression")
            if metric_name is not None
            else ("crash" if isinstance(rule, ProbeRule) else "error_burst")
        )
        title = make_title(strategy.service, strategy.microservice, manifestation,
                           clarity=1.0, rng=rng)
        description = make_description(strategy.microservice, manifestation,
                                       clarity=1.0, rng=rng)
        return replace(
            strategy,
            rule=rule,
            title=title,
            description=description,
            severity=strategy.true_severity,
            quality=StrategyQuality(
                title_clarity=max(quality.title_clarity, 0.9),
                severity_bias=0,
                target_relevance=max(quality.target_relevance, 0.9),
                sensitivity=min(quality.sensitivity, 0.2),
                repeat_proneness=quality.repeat_proneness,
            ),
            cooldown_seconds=max(strategy.cooldown_seconds, 900.0),
        )
