"""Alert-trace serialisation.

Traces round-trip through a directory of JSONL files (alerts, strategies,
faults, outcomes, metadata).  Generation rules are serialised by
description only — a loaded trace supports every *analysis* path (mining,
mitigation, QoA) but not live re-evaluation against telemetry, which
would require the original topology and hub anyway.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.alerting.alert import Alert, AlertState, Severity
from repro.alerting.rules import LogKeywordRule, MetricRule, ProbeRule
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.common.errors import ValidationError
from repro.common.timeutil import TimeWindow
from repro.detection.threshold import StaticThresholdDetector
from repro.faults.models import Fault, FaultKind
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.oce.processing import ProcessingOutcome
from repro.workload.trace import AlertTrace

__all__ = ["save_trace", "load_trace", "alert_to_dict", "alert_from_dict"]


def save_trace(trace: AlertTrace, directory: str | Path) -> Path:
    """Write ``trace`` into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_jsonl(directory / "alerts.jsonl", (alert_to_dict(a) for a in trace.alerts))
    write_jsonl(
        directory / "strategies.jsonl",
        (_strategy_to_dict(s) for s in trace.strategies.values()),
    )
    write_jsonl(directory / "faults.jsonl", (_fault_to_dict(f) for f in trace.faults))
    write_jsonl(
        directory / "outcomes.jsonl", (_outcome_to_dict(o) for o in trace.outcomes)
    )
    (directory / "meta.json").write_text(
        json.dumps({"seed": trace.seed, "label": trace.label}, sort_keys=True)
    )
    return directory


def load_trace(directory: str | Path) -> AlertTrace:
    """Load a trace previously written by :func:`save_trace`."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ValidationError(f"no such trace directory: {directory}")
    meta = json.loads((directory / "meta.json").read_text())
    trace = AlertTrace(seed=int(meta["seed"]), label=str(meta["label"]))
    for record in read_jsonl(directory / "strategies.jsonl"):
        trace.add_strategy(_strategy_from_dict(record))
    for record in read_jsonl(directory / "alerts.jsonl"):
        trace.alerts.append(alert_from_dict(record))
    for record in read_jsonl(directory / "faults.jsonl"):
        trace.faults.append(_fault_from_dict(record))
    for record in read_jsonl(directory / "outcomes.jsonl"):
        trace.outcomes.append(_outcome_from_dict(record))
    return trace


# ----------------------------------------------------------------------
# record codecs
# ----------------------------------------------------------------------
def alert_to_dict(alert: Alert) -> dict:
    return {
        "alert_id": alert.alert_id,
        "strategy_id": alert.strategy_id,
        "strategy_name": alert.strategy_name,
        "title": alert.title,
        "description": alert.description,
        "severity": alert.severity.name,
        "service": alert.service,
        "microservice": alert.microservice,
        "region": alert.region,
        "datacenter": alert.datacenter,
        "channel": alert.channel,
        "occurred_at": alert.occurred_at,
        "state": alert.state.value,
        "cleared_at": alert.cleared_at,
        "fault_id": alert.fault_id,
        "tags": alert.tags,
    }


def alert_from_dict(record: dict) -> Alert:
    alert = Alert(
        alert_id=record["alert_id"],
        strategy_id=record["strategy_id"],
        strategy_name=record["strategy_name"],
        title=record["title"],
        description=record["description"],
        severity=Severity[record["severity"]],
        service=record["service"],
        microservice=record["microservice"],
        region=record["region"],
        datacenter=record["datacenter"],
        channel=record["channel"],
        occurred_at=float(record["occurred_at"]),
        fault_id=record.get("fault_id"),
        tags=dict(record.get("tags", {})),
    )
    alert.state = AlertState(record["state"])
    cleared = record.get("cleared_at")
    alert.cleared_at = float(cleared) if cleared is not None else None
    return alert


def _strategy_to_dict(strategy: AlertStrategy) -> dict:
    rule = strategy.rule
    if isinstance(rule, MetricRule):
        detector = rule.detector
        rule_record: dict = {
            "channel": "metric",
            "metric_name": rule.metric_name,
            "lookback_seconds": rule.lookback_seconds,
            "sample_interval": rule.sample_interval,
        }
        if isinstance(detector, StaticThresholdDetector):
            rule_record["detector"] = {
                "kind": "threshold",
                "threshold": detector.threshold,
                "direction": detector.direction,
                "min_consecutive": detector.min_consecutive,
            }
        else:
            rule_record["detector"] = {"kind": "opaque", "describe": detector.describe()}
    elif isinstance(rule, LogKeywordRule):
        rule_record = {
            "channel": "log",
            "min_count": rule.min_count,
            "window_seconds": rule.window_seconds,
            "keyword": rule.keyword,
        }
    else:
        rule_record = {
            "channel": "probe",
            "no_response_threshold": rule.no_response_threshold,
        }
    quality = strategy.quality
    return {
        "strategy_id": strategy.strategy_id,
        "name": strategy.name,
        "service": strategy.service,
        "microservice": strategy.microservice,
        "rule": rule_record,
        "severity": strategy.severity.name,
        "true_severity": strategy.true_severity.name,
        "title": strategy.title,
        "description": strategy.description,
        "quality": {
            "title_clarity": quality.title_clarity,
            "severity_bias": quality.severity_bias,
            "target_relevance": quality.target_relevance,
            "sensitivity": quality.sensitivity,
            "repeat_proneness": quality.repeat_proneness,
        },
        "check_interval": strategy.check_interval,
        "cooldown_seconds": strategy.cooldown_seconds,
        "auto_clear": strategy.auto_clear,
        "owner_team": strategy.owner_team,
    }


def _strategy_from_dict(record: dict) -> AlertStrategy:
    rule_record = record["rule"]
    channel = rule_record["channel"]
    if channel == "metric":
        detector_record = rule_record["detector"]
        if detector_record["kind"] != "threshold":
            raise ValidationError(
                f"cannot reconstruct opaque detector for {record['strategy_id']}"
            )
        rule: MetricRule | LogKeywordRule | ProbeRule = MetricRule(
            metric_name=rule_record["metric_name"],
            detector=StaticThresholdDetector(
                threshold=detector_record["threshold"],
                direction=detector_record["direction"],
                min_consecutive=detector_record["min_consecutive"],
            ),
            lookback_seconds=rule_record["lookback_seconds"],
            sample_interval=rule_record["sample_interval"],
        )
    elif channel == "log":
        rule = LogKeywordRule(
            min_count=rule_record["min_count"],
            window_seconds=rule_record["window_seconds"],
            keyword=rule_record["keyword"],
        )
    elif channel == "probe":
        rule = ProbeRule(no_response_threshold=rule_record["no_response_threshold"])
    else:
        raise ValidationError(f"unknown rule channel {channel!r}")
    quality_record = record["quality"]
    return AlertStrategy(
        strategy_id=record["strategy_id"],
        name=record["name"],
        service=record["service"],
        microservice=record["microservice"],
        rule=rule,
        severity=Severity[record["severity"]],
        true_severity=Severity[record["true_severity"]],
        title=record["title"],
        description=record["description"],
        quality=StrategyQuality(
            title_clarity=quality_record["title_clarity"],
            severity_bias=quality_record["severity_bias"],
            target_relevance=quality_record["target_relevance"],
            sensitivity=quality_record["sensitivity"],
            repeat_proneness=quality_record["repeat_proneness"],
        ),
        check_interval=record["check_interval"],
        cooldown_seconds=record["cooldown_seconds"],
        auto_clear=record["auto_clear"],
        owner_team=record["owner_team"],
    )


def _fault_to_dict(fault: Fault) -> dict:
    return {
        "fault_id": fault.fault_id,
        "kind": fault.kind.value,
        "microservice": fault.microservice,
        "region": fault.region,
        "start": fault.window.start,
        "end": fault.window.end,
        "parent_fault_id": fault.parent_fault_id,
        "root_fault_id": fault.root_fault_id,
        "depth": fault.depth,
    }


def _fault_from_dict(record: dict) -> Fault:
    return Fault(
        fault_id=record["fault_id"],
        kind=FaultKind(record["kind"]),
        microservice=record["microservice"],
        region=record["region"],
        window=TimeWindow(float(record["start"]), float(record["end"])),
        parent_fault_id=record.get("parent_fault_id"),
        root_fault_id=record.get("root_fault_id"),
        depth=int(record.get("depth", 0)),
    )


def _outcome_to_dict(outcome: ProcessingOutcome) -> dict:
    return {
        "alert_id": outcome.alert_id,
        "strategy_id": outcome.strategy_id,
        "oce_name": outcome.oce_name,
        "started_at": outcome.started_at,
        "processing_seconds": outcome.processing_seconds,
        "resolved": outcome.resolved,
    }


def _outcome_from_dict(record: dict) -> ProcessingOutcome:
    return ProcessingOutcome(
        alert_id=record["alert_id"],
        strategy_id=record["strategy_id"],
        oce_name=record["oce_name"],
        started_at=float(record["started_at"]),
        processing_seconds=float(record["processing_seconds"]),
        resolved=bool(record["resolved"]),
    )
