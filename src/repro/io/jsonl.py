"""Line-delimited JSON helpers."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.common.errors import ValidationError

__all__ = ["write_jsonl", "read_jsonl"]


def write_jsonl(path: str | Path, records: Iterable[dict]) -> int:
    """Write ``records`` one JSON object per line; returns the count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield one dict per non-empty line."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"no such file: {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as error:
                raise ValidationError(
                    f"{path}:{line_number}: invalid JSON: {error}"
                ) from error
