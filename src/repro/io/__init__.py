"""Persistence: JSONL serialisation of alerts, faults, and traces."""

from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.traces import alert_from_dict, alert_to_dict, load_trace, save_trace

__all__ = [
    "read_jsonl",
    "write_jsonl",
    "save_trace",
    "load_trace",
    "alert_to_dict",
    "alert_from_dict",
]
