"""Generation rules for the three monitoring channels (§II-B3).

A rule answers one question at poll time: *given the telemetry of this
component, should the strategy fire right now?*  The three rule types
match the paper's taxonomy:

* :class:`ProbeRule` — no response for longer than a fixed threshold;
* :class:`LogKeywordRule` — at least N error events within the last M
  seconds ("IF the logs contain 5 ERRORs in the past 2 minutes ...");
* :class:`MetricRule` — an anomaly detector over a metric lookback window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.timeutil import TimeWindow
from repro.common.validation import require_positive
from repro.detection.base import AnomalyDetector
from repro.telemetry.store import TelemetryHub

__all__ = ["ProbeRule", "LogKeywordRule", "MetricRule", "GenerationRule"]


@dataclass(frozen=True, slots=True)
class ProbeRule:
    """Fire when the target has been unresponsive for ``no_response_threshold`` s."""

    no_response_threshold: float = 120.0

    def __post_init__(self) -> None:
        require_positive(self.no_response_threshold, "no_response_threshold")

    channel: str = field(default="probe", init=False)

    def evaluate(self, hub: TelemetryHub, microservice: str, region: str, now: float) -> bool:
        """Whether the probe target violates the no-response threshold at ``now``."""
        probe = hub.probe(microservice, region)
        return probe.unresponsive_duration(now) >= self.no_response_threshold

    def describe(self) -> str:
        """Generation-rule text for the SOP record."""
        return (
            f"Probe the target; generate the alert when it has not responded "
            f"for {self.no_response_threshold:.0f}s."
        )


@dataclass(frozen=True, slots=True)
class LogKeywordRule:
    """Fire when >= ``min_count`` error events occur within ``window_seconds``."""

    min_count: int = 5
    window_seconds: float = 120.0
    keyword: str = "ERROR"

    def __post_init__(self) -> None:
        if self.min_count < 1:
            raise ValidationError(f"min_count must be >= 1, got {self.min_count}")
        require_positive(self.window_seconds, "window_seconds")

    channel: str = field(default="log", init=False)

    def evaluate(self, hub: TelemetryHub, microservice: str, region: str, now: float) -> bool:
        """Whether the log channel matched the keyword rule at ``now``."""
        stream = hub.logs(microservice, region)
        window = TimeWindow(max(now - self.window_seconds, 0.0), now)
        return stream.error_count(window) >= self.min_count

    def describe(self) -> str:
        """Generation-rule text for the SOP record."""
        return (
            f"IF the logs contain {self.min_count} {self.keyword}s in the past "
            f"{self.window_seconds / 60:.0f} minutes, THEN generate an alert."
        )


@dataclass(frozen=True, slots=True)
class MetricRule:
    """Fire when the detector flags the latest point of a metric window."""

    metric_name: str
    detector: AnomalyDetector
    lookback_seconds: float = 1800.0
    sample_interval: float = 60.0

    def __post_init__(self) -> None:
        if not self.metric_name:
            raise ValidationError("metric_name must be non-empty")
        require_positive(self.lookback_seconds, "lookback_seconds")
        require_positive(self.sample_interval, "sample_interval")
        if self.sample_interval > self.lookback_seconds:
            raise ValidationError(
                f"sample_interval {self.sample_interval} exceeds lookback "
                f"{self.lookback_seconds}"
            )

    channel: str = field(default="metric", init=False)

    def evaluate(self, hub: TelemetryHub, microservice: str, region: str, now: float) -> bool:
        """Whether the metric detector fires on the latest sample at ``now``."""
        series = hub.metric(microservice, region, self.metric_name)
        window = TimeWindow(max(now - self.lookback_seconds, 0.0), now + self.sample_interval / 2)
        times, values = series.sample_window(window, self.sample_interval)
        if times.size == 0:
            return False
        return self.detector.latest_is_anomalous(times, values)

    def describe(self) -> str:
        """Generation-rule text for the SOP record."""
        return (
            f"Continuously check {self.metric_name}; generate the alert when "
            f"{self.detector.describe()} fires."
        )


#: Union type of the three rule flavours.
GenerationRule = ProbeRule | LogKeywordRule | MetricRule
