"""Alert strategies and their quality knobs.

A strategy (paper Table I) defines *when* to generate an alert (the
generation rule), *what attributes* the alert carries (title, description,
severity), and *to whom* it is sent (the owning team, via the router).

``StrategyQuality`` encodes the configuration hygiene of a strategy.  The
paper's individual anti-patterns are exactly the degraded corners of this
space, so each knob maps to one anti-pattern:

========================  =====================================  ============
knob                      degraded meaning                       anti-pattern
========================  =====================================  ============
``title_clarity``         vague name/description                 A1
``severity_bias``         configured severity != true severity   A2
``target_relevance``      rule watches an irrelevant/outdated     A3
                          infra signal
``sensitivity``           fires on transient fluctuation         A4
``repeat_proneness``      re-fires without meaningful cooldown   A5
========================  =====================================  ============

The knobs are *ground truth* for evaluation: detectors never read them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alerting.alert import Severity
from repro.alerting.rules import GenerationRule
from repro.common.errors import ValidationError
from repro.common.validation import require_fraction, require_positive

__all__ = ["StrategyQuality", "AlertStrategy", "QUALITY_THRESHOLDS"]

#: Knob thresholds beyond which an anti-pattern is considered injected.
QUALITY_THRESHOLDS: dict[str, float] = {
    "title_clarity": 0.5,      # below → A1
    "target_relevance": 0.5,   # below → A3
    "sensitivity": 0.6,        # above → A4
    "repeat_proneness": 0.6,   # above → A5
}


@dataclass(frozen=True, slots=True)
class StrategyQuality:
    """Configuration hygiene of one alert strategy (all knobs in [0, 1])."""

    title_clarity: float = 1.0
    severity_bias: int = 0
    target_relevance: float = 1.0
    sensitivity: float = 0.0
    repeat_proneness: float = 0.0

    def __post_init__(self) -> None:
        require_fraction(self.title_clarity, "title_clarity")
        require_fraction(self.target_relevance, "target_relevance")
        require_fraction(self.sensitivity, "sensitivity")
        require_fraction(self.repeat_proneness, "repeat_proneness")
        if abs(self.severity_bias) > 3:
            raise ValidationError(f"severity_bias must be in [-3, 3], got {self.severity_bias}")

    def injected_antipatterns(self) -> frozenset[str]:
        """Which individual anti-patterns this quality configuration injects."""
        injected = set()
        if self.title_clarity < QUALITY_THRESHOLDS["title_clarity"]:
            injected.add("A1")
        if self.severity_bias != 0:
            injected.add("A2")
        if self.target_relevance < QUALITY_THRESHOLDS["target_relevance"]:
            injected.add("A3")
        if self.sensitivity > QUALITY_THRESHOLDS["sensitivity"]:
            injected.add("A4")
        if self.repeat_proneness > QUALITY_THRESHOLDS["repeat_proneness"]:
            injected.add("A5")
        return frozenset(injected)

    @property
    def is_clean(self) -> bool:
        """Whether no anti-pattern is injected."""
        return not self.injected_antipatterns()


@dataclass(slots=True)
class AlertStrategy:
    """One alert strategy bound to a (microservice, rule) pair.

    ``severity`` is the *configured* level OCEs see; ``true_severity`` is
    the appropriate level given the monitored signal's real impact.  They
    differ exactly when ``quality.severity_bias != 0`` (anti-pattern A2).
    """

    strategy_id: str
    name: str
    service: str
    microservice: str
    rule: GenerationRule
    severity: Severity
    true_severity: Severity
    title: str
    description: str
    quality: StrategyQuality = field(default_factory=StrategyQuality)
    check_interval: float = 60.0
    cooldown_seconds: float = 900.0
    auto_clear: bool = True
    owner_team: str = "default-team"

    def __post_init__(self) -> None:
        if not self.strategy_id or not self.name:
            raise ValidationError("strategy_id and name must be non-empty")
        require_positive(self.check_interval, "check_interval")
        if self.cooldown_seconds < 0:
            raise ValidationError(f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}")

    @property
    def channel(self) -> str:
        """Monitoring channel of the generation rule: probe, log, or metric."""
        return self.rule.channel

    def injected_antipatterns(self) -> frozenset[str]:
        """Ground-truth anti-patterns injected into this strategy."""
        return self.quality.injected_antipatterns()

    def effective_cooldown(self) -> float:
        """Cooldown after quality degradation (repeat-prone strategies re-fire fast)."""
        if self.quality.repeat_proneness <= 0:
            return self.cooldown_seconds
        return self.cooldown_seconds * (1.0 - self.quality.repeat_proneness)

    def describe(self) -> str:
        """One-line strategy listing for reports and SOPs."""
        patterns = ",".join(sorted(self.injected_antipatterns())) or "clean"
        return (
            f"{self.strategy_id} [{self.channel}] {self.name} on {self.microservice} "
            f"sev={self.severity.label} ({patterns})"
        )
