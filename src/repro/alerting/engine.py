"""The monitoring engine: polls telemetry, fires strategies, clears alerts.

The engine registers one periodic check per (strategy, region) on the
simulation kernel.  Each tick evaluates the strategy's generation rule
against the telemetry hub:

* rule fires and no active alert → open one (subject to cooldown);
* rule quiet, strategy auto-clears, alert active → auto-clear it,
  matching §II-B4 ("for system reliability alerts of probes and metrics,
  the monitoring system will continue to monitor ... and mark the
  corresponding alert as automatically cleared").

Ground-truth fault attribution is injected via a callable so the
evaluation can score detectors without the engine depending on the fault
package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.alerting.lifecycle import AlertBook
from repro.alerting.notification import NotificationRouter
from repro.alerting.strategy import AlertStrategy
from repro.common.errors import ValidationError
from repro.common.rng import derive_seed
from repro.common.validation import require_positive
from repro.sim.engine import SimulationEngine
from repro.sim.events import PeriodicProcess
from repro.telemetry.store import TelemetryHub

__all__ = ["MonitoringConfig", "MonitoringEngine"]

#: Attribution callback: (microservice, region, time) -> fault id or None.
FaultAttribution = Callable[[str, str, float], str | None]


@dataclass(frozen=True, slots=True)
class MonitoringConfig:
    """Engine-wide knobs."""

    #: First check happens this long after the run starts, letting metric
    #: lookback windows fill before detectors judge them.
    warmup_seconds: float = 600.0

    def __post_init__(self) -> None:
        require_positive(self.warmup_seconds, "warmup_seconds")


class MonitoringEngine:
    """Runs alert strategies over a telemetry hub on the simulation kernel."""

    def __init__(
        self,
        hub: TelemetryHub,
        book: AlertBook,
        config: MonitoringConfig | None = None,
        fault_attribution: FaultAttribution | None = None,
        router: NotificationRouter | None = None,
    ) -> None:
        self._hub = hub
        self._book = book
        self._config = config or MonitoringConfig()
        self._fault_attribution = fault_attribution
        self._router = router
        self._strategies: list[AlertStrategy] = []
        self._checks = 0

    @property
    def book(self) -> AlertBook:
        """The alert book receiving generated alerts."""
        return self._book

    @property
    def strategies(self) -> list[AlertStrategy]:
        """Registered strategies (copy)."""
        return list(self._strategies)

    @property
    def checks_performed(self) -> int:
        """Total rule evaluations executed so far."""
        return self._checks

    def register(self, strategy: AlertStrategy) -> None:
        """Add a strategy to be scheduled by :meth:`attach`."""
        if strategy.microservice not in self._hub.topology.microservices:
            raise ValidationError(
                f"strategy {strategy.strategy_id} targets unknown microservice "
                f"{strategy.microservice!r}"
            )
        self._strategies.append(strategy)

    def register_all(self, strategies: Sequence[AlertStrategy]) -> None:
        """Register many strategies at once."""
        for strategy in strategies:
            self.register(strategy)

    def attach(self, engine: SimulationEngine, end_time: float) -> None:
        """Schedule periodic checks for every (strategy, deployed region).

        Strategies whose warmup ends beyond ``end_time`` schedule nothing.
        """
        topology = self._hub.topology
        if engine.now + self._config.warmup_seconds >= end_time:
            return
        for strategy in self._strategies:
            for deployment in topology.deployments_of(strategy.microservice):
                region = deployment.region
                datacenter = (
                    deployment.instances[0].datacenter if deployment.instances else region
                )
                # Per-(strategy, region) phase offset: real monitoring
                # checks are not globally synchronised, and lockstep ticks
                # would artificially tie alert timestamps across components.
                phase = derive_seed(0, f"check-phase/{strategy.strategy_id}/{region}")
                offset = float(phase % int(max(strategy.check_interval, 1.0)))
                start = engine.now + self._config.warmup_seconds + offset
                if start >= end_time:
                    continue
                process = PeriodicProcess(
                    interval=strategy.check_interval,
                    callback=self._make_check(strategy, region, datacenter),
                    start=start,
                    end=end_time,
                    label=f"check:{strategy.strategy_id}:{region}",
                )
                engine.add_periodic(process)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _make_check(self, strategy: AlertStrategy, region: str, datacenter: str):
        def check(now: float, _payload: object) -> None:
            self._checks += 1
            fired = strategy.rule.evaluate(self._hub, strategy.microservice, region, now)
            if fired:
                fault_id = None
                if self._fault_attribution is not None:
                    fault_id = self._fault_attribution(strategy.microservice, region, now)
                alert = self._book.open_alert(strategy, region, datacenter, now, fault_id)
                if alert is not None and self._router is not None:
                    self._router.dispatch(alert, now)
            elif strategy.auto_clear and self._book.is_active(strategy.strategy_id, region):
                self._book.auto_clear(strategy.strategy_id, region, now)

        return check
