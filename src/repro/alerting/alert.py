"""Alert records and their lifecycle states.

An alert (paper Table I) is "a notification sent to On-Call Engineers, of
the form defined by the alert strategy, of a specific anomaly of the cloud
system".  The attributes follow Table II: severity, time, service, title,
duration, and location.  Ground-truth provenance (``fault_id``) is carried
for evaluation only — the detectors and mitigations never read it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.timeutil import format_timestamp

__all__ = ["Severity", "AlertState", "Alert"]


class Severity(enum.IntEnum):
    """Alert severity levels, ordered most severe first.

    The paper's storm case calls WARNING "the lowest level"; CRITICAL and
    MAJOR appear in Table II.
    """

    CRITICAL = 0
    MAJOR = 1
    MINOR = 2
    WARNING = 3

    @property
    def label(self) -> str:
        """Capitalised display form, e.g. ``Critical``."""
        return self.name.capitalize()

    def escalated(self, steps: int = 1) -> "Severity":
        """A severity ``steps`` levels more severe (clamped at CRITICAL)."""
        return Severity(max(self.value - steps, Severity.CRITICAL.value))

    def demoted(self, steps: int = 1) -> "Severity":
        """A severity ``steps`` levels less severe (clamped at WARNING)."""
        return Severity(min(self.value + steps, Severity.WARNING.value))


class AlertState(enum.Enum):
    """Lifecycle of an alert (§II-B4)."""

    ACTIVE = "active"
    CLEARED_MANUAL = "cleared_manual"
    CLEARED_AUTO = "cleared_auto"


@dataclass(slots=True)
class Alert:
    """One generated alert with the paper's attribute set."""

    alert_id: str
    strategy_id: str
    strategy_name: str
    title: str
    description: str
    severity: Severity
    service: str
    microservice: str
    region: str
    datacenter: str
    channel: str
    occurred_at: float
    state: AlertState = AlertState.ACTIVE
    cleared_at: float | None = None
    fault_id: str | None = None
    tags: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.occurred_at < 0:
            raise ValidationError(f"occurred_at must be >= 0, got {self.occurred_at}")
        if self.cleared_at is not None and self.cleared_at < self.occurred_at:
            raise ValidationError(
                f"cleared_at {self.cleared_at} precedes occurred_at {self.occurred_at}"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """Whether the alert has not been cleared yet."""
        return self.state is AlertState.ACTIVE

    def clear(self, at: float, manual: bool) -> None:
        """Transition to a cleared state.

        Manual clearance models an OCE confirming mitigation; automatic
        clearance models the monitoring system observing recovery.
        """
        if not self.is_active:
            raise ValidationError(f"alert {self.alert_id} is already cleared")
        if at < self.occurred_at:
            raise ValidationError(
                f"clear time {at} precedes occurrence {self.occurred_at}"
            )
        self.cleared_at = at
        self.state = AlertState.CLEARED_MANUAL if manual else AlertState.CLEARED_AUTO

    # ------------------------------------------------------------------
    # derived attributes
    # ------------------------------------------------------------------
    def duration(self, now: float | None = None) -> float:
        """Seconds between occurrence and clearance (or ``now`` if active)."""
        if self.cleared_at is not None:
            return self.cleared_at - self.occurred_at
        if now is None:
            raise ValidationError("active alert needs `now` to compute duration")
        return max(now - self.occurred_at, 0.0)

    def is_transient(self, intermittent_threshold: float) -> bool:
        """Paper A4: auto-cleared with duration under the intermittent threshold."""
        return (
            self.state is AlertState.CLEARED_AUTO
            and self.cleared_at is not None
            and (self.cleared_at - self.occurred_at) < intermittent_threshold
        )

    def location(self) -> str:
        """Location string in Table II format."""
        return f"Region={self.region};DC={self.datacenter};Microservice={self.microservice}"

    def render_row(self) -> str:
        """One display row in the style of the paper's Table II."""
        duration = "-" if self.cleared_at is None else f"{(self.cleared_at - self.occurred_at) / 60:.0f} min"
        return (
            f"{self.severity.label:<9} {format_timestamp(self.occurred_at)}  "
            f"{self.service:<16} {self.title:<48} {duration:>8}  {self.location()}"
        )
