"""Alert book: open/clear lifecycle with dedup and cooldown.

One *active* alert exists per (strategy, region) at a time — the paper's
monitoring system behaves the same way: while the anomalous state
persists the alert stays active, and when the state recovers the alert is
auto-cleared (§II-B4).  Re-firing after clearance is throttled by the
strategy's effective cooldown; repeat-prone strategies (A5) have theirs
collapsed toward zero.
"""

from __future__ import annotations

from repro.alerting.alert import Alert, AlertState
from repro.alerting.strategy import AlertStrategy
from repro.common.errors import ValidationError
from repro.common.ids import IdFactory
from repro.common.timeutil import TimeWindow

__all__ = ["AlertBook"]


class AlertBook:
    """Records every alert and manages the active set."""

    def __init__(self, id_factory: IdFactory | None = None) -> None:
        self._ids = id_factory or IdFactory("alert")
        self._alerts: list[Alert] = []
        self._by_id: dict[str, Alert] = {}
        self._active: dict[tuple[str, str], Alert] = {}
        self._last_cleared: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open_alert(
        self,
        strategy: AlertStrategy,
        region: str,
        datacenter: str,
        now: float,
        fault_id: str | None = None,
    ) -> Alert | None:
        """Open an alert for ``strategy`` in ``region`` if dedup/cooldown allow.

        Returns ``None`` when an alert for the same (strategy, region) is
        already active, or when the effective cooldown since the last
        clearance has not elapsed.
        """
        key = (strategy.strategy_id, region)
        if key in self._active:
            return None
        last_cleared = self._last_cleared.get(key)
        if last_cleared is not None and now - last_cleared < strategy.effective_cooldown():
            return None
        alert = Alert(
            alert_id=self._ids.next(),
            strategy_id=strategy.strategy_id,
            strategy_name=strategy.name,
            title=strategy.title,
            description=strategy.description,
            severity=strategy.severity,
            service=strategy.service,
            microservice=strategy.microservice,
            region=region,
            datacenter=datacenter,
            channel=strategy.channel,
            occurred_at=now,
            fault_id=fault_id,
        )
        self._alerts.append(alert)
        self._by_id[alert.alert_id] = alert
        self._active[key] = alert
        return alert

    def auto_clear(self, strategy_id: str, region: str, now: float) -> Alert | None:
        """Auto-clear the active alert for (strategy, region), if any."""
        key = (strategy_id, region)
        alert = self._active.pop(key, None)
        if alert is None:
            return None
        alert.clear(now, manual=False)
        self._last_cleared[key] = now
        return alert

    def manual_clear(self, alert_id: str, now: float) -> Alert:
        """Clear one alert manually (OCE confirmed mitigation)."""
        alert = self._by_id.get(alert_id)
        if alert is None:
            raise ValidationError(f"unknown alert {alert_id!r}")
        if not alert.is_active:
            raise ValidationError(f"alert {alert_id!r} is already cleared")
        alert.clear(now, manual=True)
        key = (alert.strategy_id, alert.region)
        if self._active.get(key) is alert:
            del self._active[key]
            self._last_cleared[key] = now
        return alert

    def clear_all_active(self, now: float, manual: bool = False) -> int:
        """Clear every active alert (end-of-run housekeeping); returns count."""
        cleared = 0
        for key in list(self._active):
            alert = self._active.pop(key)
            alert.clear(now, manual=manual)
            self._last_cleared[key] = now
            cleared += 1
        return cleared

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._alerts)

    @property
    def alerts(self) -> list[Alert]:
        """All alerts ever opened, in generation order (copy)."""
        return list(self._alerts)

    def get(self, alert_id: str) -> Alert:
        """Look up one alert by id."""
        alert = self._by_id.get(alert_id)
        if alert is None:
            raise ValidationError(f"unknown alert {alert_id!r}")
        return alert

    def active_alerts(self) -> list[Alert]:
        """Currently active alerts (copy)."""
        return list(self._active.values())

    def is_active(self, strategy_id: str, region: str) -> bool:
        """Whether an alert is currently active for (strategy, region)."""
        return (strategy_id, region) in self._active

    def alerts_in(self, window: TimeWindow) -> list[Alert]:
        """Alerts that occurred within ``window``."""
        return [a for a in self._alerts if window.contains(a.occurred_at)]

    def by_strategy(self) -> dict[str, list[Alert]]:
        """Alerts grouped by strategy id."""
        grouped: dict[str, list[Alert]] = {}
        for alert in self._alerts:
            grouped.setdefault(alert.strategy_id, []).append(alert)
        return grouped

    def counts_by_state(self) -> dict[AlertState, int]:
        """Alert counts per lifecycle state."""
        counts: dict[AlertState, int] = {state: 0 for state in AlertState}
        for alert in self._alerts:
            counts[alert.state] += 1
        return counts
