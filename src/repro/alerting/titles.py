"""Alert title and description synthesis, clear and deliberately vague.

The paper's A1 anti-pattern is "Unclear Name or Description": titles that
"describe the system state in a very general way with vague words", e.g.
"Elastic Computing Service is abnormal" or "Instance x is abnormal".
Clear titles instead contain the affected component and the manifestation
of the failure.  The synthesiser produces both, controlled by a clarity
knob, and exports the vague-word lexicon that the A1 detector scores
against.
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_fraction

__all__ = [
    "VAGUE_WORDS",
    "MANIFESTATIONS",
    "make_title",
    "make_description",
    "vagueness_score",
]

#: Words that signal a non-informative title (A1).  Used both to *produce*
#: vague titles and to *detect* them; the detector additionally scores
#: structural signals, so this is not a tautology (see antipatterns.text).
VAGUE_WORDS: frozenset[str] = frozenset({
    "abnormal", "exception", "exceptions", "error", "errors", "issue", "issues",
    "problem", "problems", "risk", "risks", "unknown", "unhealthy", "bad",
    "wrong", "failure", "failed", "anomaly", "warning", "alarm", "attention",
})

#: Failure manifestations by fault flavour: (title fragment, description).
MANIFESTATIONS: dict[str, tuple[str, str]] = {
    "disk_full": (
        "failed to allocate new blocks, disk full",
        "Disk usage exceeded capacity; new block allocations are failing.",
    ),
    "cpu_overload": (
        "CPU usage continuously over 80%",
        "CPU usage of the instance exceeded 80% for consecutive checks.",
    ),
    "memory_leak": (
        "memory usage growing, suspected leak",
        "Resident memory grows monotonically without load increase.",
    ),
    "crash": (
        "process not responding to probes",
        "The target process stopped answering heartbeat probes.",
    ),
    "network_overload": (
        "network throughput saturated, packets dropped",
        "Egress throughput reached line rate and packet loss is rising.",
    ),
    "commit_failure": (
        "failed to commit changes to backend storage",
        "Write transactions are rejected by the storage backend.",
    ),
    "latency_regression": (
        "request latency above SLO threshold",
        "P99 latency exceeded the service-level objective threshold.",
    ),
    "error_burst": (
        "error logs burst detected",
        "The error-log rate exceeded the keyword-rule threshold.",
    ),
    "queue_backlog": (
        "consumer lag growing, queue backlog",
        "Message consumers fall behind producers; backlog is growing.",
    ),
    "process_count": (
        "process number warning",
        "The number of worker processes deviates from the expected count.",
    ),
}

_VAGUE_TEMPLATES: tuple[str, ...] = (
    "{service} is abnormal",
    "Instance {component} is abnormal",
    "Component {component} encounters exceptions",
    "{service} cluster has risks",
    "{component} unknown error",
    "{service} needs attention",
)


def make_title(
    service: str,
    component: str,
    manifestation: str,
    clarity: float,
    rng: np.random.Generator,
) -> str:
    """Synthesise an alert title with the given ``clarity`` in [0, 1].

    Clarity >= 0.5 yields an informative title (component + manifestation,
    per §II-B2); lower values yield one of the paper's vague templates.
    """
    require_fraction(clarity, "clarity")
    if manifestation not in MANIFESTATIONS:
        fragment = manifestation
    else:
        fragment, _ = MANIFESTATIONS[manifestation]
    if clarity >= 0.5:
        return f"{component}: {fragment}"
    template = _VAGUE_TEMPLATES[int(rng.integers(len(_VAGUE_TEMPLATES)))]
    return template.format(service=service, component=component)


def make_description(
    component: str,
    manifestation: str,
    clarity: float,
    rng: np.random.Generator,
) -> str:
    """Synthesise the free-text description matching :func:`make_title`."""
    require_fraction(clarity, "clarity")
    if clarity >= 0.5 and manifestation in MANIFESTATIONS:
        _, description = MANIFESTATIONS[manifestation]
        return f"{description} Affected component: {component}."
    vague_choices = (
        "Something is wrong, please check.",
        "The component reported an unknown issue.",
        "State is abnormal.",
    )
    return vague_choices[int(rng.integers(len(vague_choices)))]


def vagueness_score(text: str) -> float:
    """Fraction of content words that come from the vague lexicon.

    A crude lexical score in [0, 1]; the full A1 detector combines this
    with structural features (presence of a component name, a quantified
    manifestation, text length).
    """
    words = [w.strip(".,:;!?()[]").lower() for w in text.split()]
    words = [w for w in words if w]
    if not words:
        return 1.0
    vague = sum(1 for w in words if w in VAGUE_WORDS)
    return vague / len(words)
