"""Alerting: strategies, alert lifecycle, SOPs, and the monitoring engine.

This package implements the paper's §II-B mechanism end to end: alert
strategies over the three monitoring channels (probes, logs, metrics),
alert generation with the attribute set of Table II (severity, time,
service, title, duration, location), manual and automatic clearance
(§II-B4), Standard Operating Procedures (Figure 5), and notification
routing to on-call engineers.

Alert strategies additionally carry *quality knobs* — title clarity,
severity bias, target relevance, sensitivity, and repeat cooldown — whose
degraded settings produce exactly the six anti-patterns the paper
characterises.  Ground-truth anti-pattern injections are recorded on the
strategy so the evaluation can score detectors against them.
"""

from repro.alerting.alert import Alert, AlertState, Severity
from repro.alerting.engine import MonitoringEngine, MonitoringConfig
from repro.alerting.lifecycle import AlertBook
from repro.alerting.notification import Notification, NotificationRouter
from repro.alerting.rules import LogKeywordRule, MetricRule, ProbeRule
from repro.alerting.sop import SOP, SOPLibrary
from repro.alerting.strategy import AlertStrategy, StrategyQuality

__all__ = [
    "Alert",
    "AlertState",
    "Severity",
    "AlertStrategy",
    "StrategyQuality",
    "LogKeywordRule",
    "MetricRule",
    "ProbeRule",
    "AlertBook",
    "MonitoringEngine",
    "MonitoringConfig",
    "SOP",
    "SOPLibrary",
    "Notification",
    "NotificationRouter",
]
