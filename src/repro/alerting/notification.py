"""Notification routing: which team hears about an alert, and how loudly.

The paper observes OCEs "continually receive alerts by email, SMS, or even
phone call" during storms.  The router picks the medium by severity and
records every dispatch, which the storm analyses use to quantify OCE
interrupt load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alerting.alert import Alert, Severity

__all__ = ["Notification", "NotificationRouter", "MEDIUM_BY_SEVERITY"]

#: Escalation medium per severity level.
MEDIUM_BY_SEVERITY: dict[Severity, str] = {
    Severity.CRITICAL: "phone",
    Severity.MAJOR: "sms",
    Severity.MINOR: "sms",
    Severity.WARNING: "email",
}


@dataclass(frozen=True, slots=True)
class Notification:
    """One dispatched notification."""

    alert_id: str
    team: str
    medium: str
    sent_at: float


class NotificationRouter:
    """Routes alerts to owning teams and logs every dispatch."""

    def __init__(self, default_team: str = "default-team") -> None:
        self._default_team = default_team
        self._team_of_service: dict[str, str] = {}
        self._log: list[Notification] = []

    def assign(self, service: str, team: str) -> None:
        """Route all alerts of ``service`` to ``team``."""
        self._team_of_service[service] = team

    def team_for(self, alert: Alert) -> str:
        """The team that receives ``alert``."""
        return self._team_of_service.get(alert.service, self._default_team)

    def dispatch(self, alert: Alert, now: float) -> Notification:
        """Send (record) the notification for ``alert``."""
        notification = Notification(
            alert_id=alert.alert_id,
            team=self.team_for(alert),
            medium=MEDIUM_BY_SEVERITY[alert.severity],
            sent_at=now,
        )
        self._log.append(notification)
        return notification

    @property
    def log(self) -> list[Notification]:
        """All dispatched notifications (copy)."""
        return list(self._log)

    def interrupts_per_team(self) -> dict[str, int]:
        """Notification counts per team — the OCE fatigue signal."""
        counts: dict[str, int] = {}
        for notification in self._log:
            counts[notification.team] = counts.get(notification.team, 0) + 1
        return counts
