"""Standard Operating Procedures (paper Figure 5).

An SOP record carries the fields of the paper's example —
``nginx_cpu_usage_over_80`` with description, generation rule, potential
impact, possible causes, and diagnosis steps.  The library builds default
SOPs from strategies; SOP *quality* inherits the strategy's title clarity,
which is how poorly configured strategies end up with unhelpful SOPs (the
survey's Finding 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alerting.strategy import AlertStrategy
from repro.common.errors import ValidationError

__all__ = ["SOP", "SOPLibrary"]

_STEPS_BY_CHANNEL: dict[str, tuple[str, ...]] = {
    "metric": (
        "Step 1: inspect the metric dashboard of the affected component.",
        "Step 2: execute `top -bn1` / storage or network inspection on the instance.",
        "Step 3: compare against neighbouring instances to rule out host issues.",
        "Step 4: mitigate per the possible causes; escalate if unresolved in 30 min.",
    ),
    "log": (
        "Step 1: pull the matching error lines from the log store.",
        "Step 2: identify the dominant error template and the first occurrence.",
        "Step 3: check recent deployments and configuration changes.",
        "Step 4: mitigate per the possible causes; escalate if unresolved in 30 min.",
    ),
    "probe": (
        "Step 1: probe the target manually from a bastion host.",
        "Step 2: check process liveness and restart counters on the instance.",
        "Step 3: fail over traffic if the instance does not recover.",
        "Step 4: escalate to the service owner if the deployment is degraded.",
    ),
}

_VAGUE_STEPS: tuple[str, ...] = (
    "Step 1: check the component.",
    "Step 2: contact the owner if it looks wrong.",
)


@dataclass(frozen=True, slots=True)
class SOP:
    """One Standard Operating Procedure record (Figure 5 schema)."""

    alert_name: str
    description: str
    generation_rule: str
    potential_impact: str
    possible_causes: tuple[str, ...] = ()
    steps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.alert_name:
            raise ValidationError("alert_name must be non-empty")

    @property
    def is_actionable(self) -> bool:
        """Whether the SOP gives concrete diagnosis steps (>= 3 steps with commands)."""
        return len(self.steps) >= 3

    def render(self) -> str:
        """Multi-line rendering in the style of the paper's Figure 5."""
        lines = [
            f"SOP for alert {self.alert_name}",
            f"Description      {self.description}",
            f"Generation Rule  {self.generation_rule}",
            f"Potential Impact {self.potential_impact}",
            "Possible Causes  " + " ".join(
                f"{chr(ord('a') + i)}) {cause}" for i, cause in enumerate(self.possible_causes)
            ),
        ]
        lines.extend(f"  {step}" for step in self.steps)
        return "\n".join(lines)


class SOPLibrary:
    """SOPs keyed by strategy name."""

    def __init__(self) -> None:
        self._sops: dict[str, SOP] = {}

    def __len__(self) -> int:
        return len(self._sops)

    def __contains__(self, alert_name: str) -> bool:
        return alert_name in self._sops

    def add(self, sop: SOP) -> None:
        """Register an SOP (replacing any previous one for the same name)."""
        self._sops[sop.alert_name] = sop

    def lookup(self, alert_name: str) -> SOP | None:
        """The SOP for ``alert_name``, or ``None`` — OCEs 'look up the alert
        title to find the corresponding SOP' (§II-B2)."""
        return self._sops.get(alert_name)

    def build_default(self, strategy: AlertStrategy) -> SOP:
        """Build and register the default SOP for a strategy.

        Strategies with degraded title clarity get the vague two-step SOP,
        reproducing the coupling between strategy quality and SOP quality
        the survey respondents complained about.
        """
        clear = strategy.quality.title_clarity >= 0.5
        steps = _STEPS_BY_CHANNEL[strategy.channel] if clear else _VAGUE_STEPS
        causes: tuple[str, ...]
        if clear:
            causes = (
                "The workload is too high.",
                "A dependency of the component is degraded.",
                "A recent deployment introduced a regression.",
            )
        else:
            causes = ("Unknown.",)
        impact = (
            f"Affects {strategy.service} requests served by {strategy.microservice}."
            if clear
            else "Impact unknown."
        )
        sop = SOP(
            alert_name=strategy.name,
            description=strategy.description,
            generation_rule=strategy.rule.describe(),
            potential_impact=impact,
            possible_causes=causes,
            steps=steps,
        )
        self.add(sop)
        return sop
