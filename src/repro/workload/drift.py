"""Drifting-noise traces: the workload online rule learning exists for.

The batch pipeline derives blocking rules from a finished trace, which
silently assumes the noisy-strategy population is *stationary*.  It is
not: strategies turn noisy, get fixed, and new ones take their place —
the drift AlertGuardian (arXiv:2601.14912) identifies as the reason
rule life-cycle management must be online.  This module builds
deterministic traces with exactly that structure:

* **clean** strategies: sparse, manually-cleared, long-lived alerts in
  every region — the signal no rule must ever block;
* **A4 flappers**: rapid-fire transient alerts (auto-cleared in
  seconds), spread over every region;
* **A5 repeaters**: chronic repeats of one strategy in one region at a
  rate well past the repeat threshold but *below* the flood threshold,
  so the batch A5 detector judges them outside storm-hour exclusions.

In **stationary** mode (``drift=False``) one noisy population runs the
whole trace — both the batch detectors and the online learner should
converge on the same rule set, which is what the differential harness's
precision bound checks.  In **drifting** mode the phase-A population
goes quiet at half-time and a fresh phase-B population starts up: a
batch pass over the full trace underweights the short-lived repeaters,
while the online learner promotes phase-B rules as they appear and
retires phase-A rules behind them — the divergence the harness
quantifies.

Alert rates are budgeted to stay below the 100/hour/region flood
threshold, so R4 storms and the A5 storm-hour exclusion never trigger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alerting.alert import Alert, AlertState, Severity
from repro.common.errors import ValidationError
from repro.common.rng import derive_rng
from repro.common.timeutil import HOUR, MINUTE
from repro.common.validation import require_positive
from repro.topology.graph import DependencyGraph
from repro.workload.trace import AlertTrace

__all__ = ["DriftConfig", "build_drifting_noise_trace", "drift_graph"]


@dataclass(frozen=True, slots=True)
class DriftConfig:
    """Shape of a drifting-noise trace."""

    seed: int = 42
    hours: float = 8.0
    regions: tuple[str, ...] = ("region-A", "region-B")
    #: Steady high-quality strategies (never rule-worthy).
    n_clean: int = 6
    #: A4-shaped transient flappers per noisy phase.
    n_flappers: int = 3
    #: A5-shaped chronic repeaters per noisy phase (one region each).
    n_repeaters: int = 2
    #: When set, the noisy population swaps at half-time (phase A -> B).
    drift: bool = False
    #: Mean seconds between one clean strategy's alerts per region.
    clean_interval: float = 1800.0
    #: Mean seconds between one flapper's alerts per region (~12/hour).
    flapper_interval: float = 300.0
    #: Mean seconds between one repeater's alerts (~36/hour, sub-flood).
    repeater_interval: float = 100.0

    def __post_init__(self) -> None:
        require_positive(self.hours, "hours")
        require_positive(self.n_clean, "n_clean")
        require_positive(self.n_flappers, "n_flappers")
        require_positive(self.n_repeaters, "n_repeaters")
        require_positive(self.clean_interval, "clean_interval")
        require_positive(self.flapper_interval, "flapper_interval")
        require_positive(self.repeater_interval, "repeater_interval")
        if not self.regions:
            raise ValidationError("need at least one region")

    @property
    def duration(self) -> float:
        """Trace length in seconds."""
        return self.hours * HOUR


def drift_graph(config: DriftConfig | None = None) -> DependencyGraph:
    """The small fixed topology the drift traces alert on.

    One microservice per strategy slot, with clean services chained so
    R3 has something to correlate; noisy services stay isolated.
    """
    config = config or DriftConfig()
    graph = DependencyGraph()
    names = [f"m-clean-{i}" for i in range(config.n_clean)]
    for phase in ("a", "b"):
        names += [f"m-flap-{phase}-{i}" for i in range(config.n_flappers)]
        names += [f"m-rep-{phase}-{i}" for i in range(config.n_repeaters)]
    for name in names:
        graph.add_microservice(name, service="svc-drift")
    for caller, callee in zip(names[: config.n_clean - 1],
                              names[1: config.n_clean]):
        graph.add_dependency(caller, callee)
    return graph


def build_drifting_noise_trace(config: DriftConfig | None = None) -> AlertTrace:
    """Build the stationary or drifting noise trace described above."""
    config = config or DriftConfig()
    rng = derive_rng(config.seed, "drift-noise")
    duration = config.duration
    half = duration / 2.0
    label = "drifting-noise" if config.drift else "stationary-noise"
    trace = AlertTrace(seed=config.seed, label=label)
    alerts = trace.alerts
    counter = 0

    def emit(strategy: str, micro: str, region: str, at: float,
             cleared_after: float | None, manual: bool,
             severity: Severity) -> None:
        nonlocal counter
        alert = Alert(
            alert_id=f"drift-{counter:06d}",
            strategy_id=strategy,
            strategy_name=strategy.replace("-", "_"),
            title=f"{micro}: {strategy} signal deviation",
            description="drifting-noise workload event",
            severity=severity,
            service="svc-drift",
            microservice=micro,
            region=region,
            datacenter=f"{region}-dc1",
            channel="metric",
            occurred_at=round(at, 3),
        )
        counter += 1
        if cleared_after is not None:
            alert.state = (
                AlertState.CLEARED_MANUAL if manual else AlertState.CLEARED_AUTO
            )
            alert.cleared_at = alert.occurred_at + cleared_after
        alerts.append(alert)

    def cadence(start: float, end: float, interval: float) -> list[float]:
        times = []
        t = start + float(rng.uniform(0.0, interval))
        while t < end:
            times.append(t)
            t += interval * float(rng.uniform(0.7, 1.3))
        return times

    # Clean background: the whole trace, every region, manual clears with
    # half-hour-scale durations — unambiguously not A4/A5 material.
    for index in range(config.n_clean):
        strategy = f"s-clean-{index}"
        micro = f"m-clean-{index}"
        for region in config.regions:
            for at in cadence(0.0, duration, config.clean_interval):
                emit(strategy, micro, region, at,
                     cleared_after=float(rng.uniform(20 * MINUTE, 60 * MINUTE)),
                     manual=True, severity=Severity.MAJOR)

    def noisy_phase(phase: str, start: float, end: float) -> None:
        # A4 flappers: transient (auto-cleared well under the 10-minute
        # intermittent threshold) in every region.
        for index in range(config.n_flappers):
            strategy = f"s-flap-{phase}-{index}"
            micro = f"m-flap-{phase}-{index}"
            for region in config.regions:
                for at in cadence(start, end, config.flapper_interval):
                    emit(strategy, micro, region, at,
                         cleared_after=float(rng.uniform(10.0, 60.0)),
                         manual=False, severity=Severity.WARNING)
        # A5 repeaters: chronic same-strategy repeats, pinned to one
        # region each; long auto-clear keeps them out of A4's definition.
        for index in range(config.n_repeaters):
            strategy = f"s-rep-{phase}-{index}"
            micro = f"m-rep-{phase}-{index}"
            region = config.regions[index % len(config.regions)]
            for at in cadence(start, end, config.repeater_interval):
                emit(strategy, micro, region, at,
                     cleared_after=float(rng.uniform(20 * MINUTE, 40 * MINUTE)),
                     manual=False, severity=Severity.MINOR)

    if config.drift:
        noisy_phase("a", 0.0, half)
        noisy_phase("b", half, duration)
    else:
        noisy_phase("a", 0.0, duration)

    trace.sort()
    return trace
