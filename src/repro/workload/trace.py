"""The alert trace: everything one study run produced.

An :class:`AlertTrace` bundles the alerts, the strategy population that
generated them, the ground-truth faults (for storms/cascades), and the
sampled OCE processing outcomes.  The mining pipeline, mitigation
reactions, and benchmark harness all consume this container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.alerting.alert import Alert
from repro.alerting.strategy import AlertStrategy
from repro.common.errors import ValidationError
from repro.common.timeutil import TimeWindow, hour_bucket
from repro.faults.models import Fault
from repro.oce.processing import ProcessingOutcome

__all__ = ["AlertTrace"]


@dataclass(slots=True)
class AlertTrace:
    """One study run: alerts, strategies, ground truth, and outcomes."""

    alerts: list[Alert] = field(default_factory=list)
    strategies: dict[str, AlertStrategy] = field(default_factory=dict)
    faults: list[Fault] = field(default_factory=list)
    outcomes: list[ProcessingOutcome] = field(default_factory=list)
    seed: int = 0
    label: str = ""

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_strategy(self, strategy: AlertStrategy) -> None:
        """Register a strategy (id must be unique within the trace)."""
        if strategy.strategy_id in self.strategies:
            raise ValidationError(f"duplicate strategy id {strategy.strategy_id!r}")
        self.strategies[strategy.strategy_id] = strategy

    def extend_alerts(self, alerts: Iterable[Alert]) -> None:
        """Append alerts; they are re-sorted lazily by the query helpers."""
        self.alerts.extend(alerts)

    def sort(self) -> None:
        """Sort alerts by occurrence time (stable)."""
        self.alerts.sort(key=lambda a: a.occurred_at)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.alerts)

    def strategy_of(self, alert: Alert) -> AlertStrategy:
        """The strategy that generated ``alert``."""
        strategy = self.strategies.get(alert.strategy_id)
        if strategy is None:
            raise ValidationError(f"alert {alert.alert_id} references unknown strategy "
                                  f"{alert.strategy_id!r}")
        return strategy

    def window(self) -> TimeWindow:
        """The closed span from first to last alert occurrence."""
        if not self.alerts:
            raise ValidationError("trace has no alerts")
        first = min(a.occurred_at for a in self.alerts)
        last = max(a.occurred_at for a in self.alerts)
        return TimeWindow(first, last + 1e-9)

    def iter_ordered(self) -> Iterable[Alert]:
        """Alerts in occurrence order, as a live ingestion source would
        deliver them — the natural input of the streaming gateway."""
        return iter(sorted(self.alerts, key=lambda a: a.occurred_at))

    def alerts_in(self, window: TimeWindow) -> list[Alert]:
        """Alerts occurring within ``window``."""
        return [a for a in self.alerts if window.contains(a.occurred_at)]

    def filter(self, predicate: Callable[[Alert], bool], label: str = "") -> "AlertTrace":
        """A new trace with only the matching alerts (shares strategies/faults)."""
        return AlertTrace(
            alerts=[a for a in self.alerts if predicate(a)],
            strategies=self.strategies,
            faults=self.faults,
            outcomes=self.outcomes,
            seed=self.seed,
            label=label or self.label,
        )

    def by_strategy(self) -> dict[str, list[Alert]]:
        """Alerts grouped by strategy id."""
        grouped: dict[str, list[Alert]] = {}
        for alert in self.alerts:
            grouped.setdefault(alert.strategy_id, []).append(alert)
        return grouped

    def counts_by_hour_region(self) -> dict[tuple[int, str], int]:
        """Alert counts per (hour bucket, region) — the paper's §III-A grouping."""
        counts: dict[tuple[int, str], int] = {}
        for alert in self.alerts:
            key = (hour_bucket(alert.occurred_at), alert.region)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def alerts_by_hour_region(self) -> dict[tuple[int, str], list[Alert]]:
        """Alerts grouped per (hour bucket, region)."""
        grouped: dict[tuple[int, str], list[Alert]] = {}
        for alert in self.alerts:
            key = (hour_bucket(alert.occurred_at), alert.region)
            grouped.setdefault(key, []).append(alert)
        return grouped

    def mean_processing_by_strategy(self) -> dict[str, float]:
        """Mean sampled OCE processing seconds per strategy id.

        Strategies without sampled outcomes are absent from the result.
        """
        totals: dict[str, float] = {}
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            totals[outcome.strategy_id] = (
                totals.get(outcome.strategy_id, 0.0) + outcome.processing_seconds
            )
            counts[outcome.strategy_id] = counts.get(outcome.strategy_id, 0) + 1
        return {sid: totals[sid] / counts[sid] for sid in totals}

    def merge(self, other: "AlertTrace", label: str = "") -> "AlertTrace":
        """Combine two traces (strategy ids may overlap if identical objects)."""
        merged = AlertTrace(seed=self.seed, label=label or self.label)
        for strategy in self.strategies.values():
            merged.add_strategy(strategy)
        for strategy in other.strategies.values():
            if strategy.strategy_id not in merged.strategies:
                merged.add_strategy(strategy)
            elif merged.strategies[strategy.strategy_id] is not strategy:
                raise ValidationError(
                    f"conflicting strategy id {strategy.strategy_id!r} in merge"
                )
        merged.alerts = list(self.alerts) + list(other.alerts)
        merged.faults = list(self.faults) + list(other.faults)
        merged.outcomes = list(self.outcomes) + list(other.outcomes)
        merged.sort()
        return merged
