"""Rate-driven alert-trace generator.

Generates multi-month alert traces directly from per-strategy stochastic
rate models, without simulating telemetry — the only tractable way to
reproduce the paper's 4-million-alert frame.  The models encode the
behaviours the paper attributes to each anti-pattern:

* clean strategies fire as a sparse Poisson background;
* sensitive strategies (A4) emit *toggle clusters* — several short-lived,
  auto-cleared alerts within an hour or two;
* repeat-prone strategies (A5) emit *repeat episodes* — hours of alerts
  at a near-constant cadence, the HAProxy pattern of Figure 3;
* storms (A6) start from a root microservice and sweep its transitive
  dependents with per-hop onset delays, each affected strategy firing
  repeatedly; ground-truth :class:`~repro.faults.models.Fault` records
  are attached for the correlation/mining evaluations.

OCE processing outcomes are sampled per strategy (capped) with the
:class:`~repro.oce.processing.ProcessingModel`, feeding the paper's
top-30 %-processing-time candidate mining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alerting.alert import Alert, AlertState, Severity
from repro.alerting.strategy import AlertStrategy
from repro.common.errors import ValidationError
from repro.common.ids import IdFactory
from repro.common.rng import derive_rng
from repro.common.timeutil import HOUR, MINUTE, WEEK, TimeWindow
from repro.common.validation import require_fraction, require_positive
from repro.faults.models import Fault, FaultKind
from repro.oce.engineer import build_panel
from repro.oce.processing import ProcessingModel
from repro.topology.generator import CloudTopology, TopologyConfig, generate_topology
from repro.workload.calibration import TraceScale
from repro.workload.strategies import StrategyFactory, StrategyMixConfig
from repro.workload.trace import AlertTrace

__all__ = ["TraceConfig", "TraceGenerator", "generate_trace"]

_STORM_ROOT_KINDS: tuple[FaultKind, ...] = (
    FaultKind.DISK_FULL,
    FaultKind.CRASH,
    FaultKind.NETWORK_OVERLOAD,
    FaultKind.CPU_OVERLOAD,
)

#: Manual-clearance probability by *true* severity: genuinely severe
#: anomalies need human intervention, minor ones recover on their own.
_MANUAL_CLEAR_P: dict[Severity, float] = {
    Severity.CRITICAL: 0.80,
    Severity.MAJOR: 0.55,
    Severity.MINOR: 0.25,
    Severity.WARNING: 0.10,
}

#: Mean alert duration (seconds) by *true* severity.
_DURATION_MEAN: dict[Severity, float] = {
    Severity.CRITICAL: 70 * MINUTE,
    Severity.MAJOR: 45 * MINUTE,
    Severity.MINOR: 25 * MINUTE,
    Severity.WARNING: 15 * MINUTE,
}


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Parameters of one rate-driven trace generation run."""

    seed: int = 42
    scale: TraceScale = field(default_factory=TraceScale.default)
    mix: StrategyMixConfig = field(default_factory=StrategyMixConfig)

    #: Mean storm arrivals per region per week ("alert storms occur weekly
    #: or even daily", §III-A2).
    storms_per_week_per_region: float = 1.0
    #: Storm duration bounds (seconds).
    storm_duration: tuple[float, float] = (1 * HOUR, 5 * HOUR)
    #: Mean inter-arrival of repeated alerts per affected strategy during a
    #: storm (seconds); drawn uniformly per strategy per storm.
    storm_interarrival: tuple[float, float] = (4 * MINUTE, 12 * MINUTE)
    #: Cascade wavefront parameters (match faults.propagation defaults).
    cascade_probability: float = 0.75
    cascade_decay: float = 0.65
    cascade_max_depth: int = 4
    cascade_onset_delay: float = 3 * MINUTE

    #: Transient-alert duration threshold used when *drawing* A4 durations;
    #: the A4 detector's own threshold lives in the antipatterns package.
    transient_threshold: float = 10 * MINUTE
    #: Fraction of a sensitive strategy's alerts arranged in toggle clusters.
    toggle_cluster_fraction: float = 0.7
    #: Alerts per toggle cluster (min, max).
    toggle_cluster_size: tuple[int, int] = (4, 10)
    #: Alerts per repeat episode (min, max) for repeat-prone strategies.
    repeat_episode_size: tuple[int, int] = (12, 40)
    #: Repeat episode cadence (seconds between alerts).
    repeat_cadence: tuple[float, float] = (8 * MINUTE, 20 * MINUTE)

    #: Cap of sampled OCE processing outcomes per strategy.
    max_outcomes_per_strategy: int = 25

    def __post_init__(self) -> None:
        require_positive(self.storms_per_week_per_region + 1e-12, "storms_per_week_per_region")
        require_fraction(self.cascade_probability, "cascade_probability")
        require_fraction(self.cascade_decay, "cascade_decay")
        require_fraction(self.toggle_cluster_fraction, "toggle_cluster_fraction")
        require_positive(self.cascade_max_depth, "cascade_max_depth")
        require_positive(self.transient_threshold, "transient_threshold")
        if self.storm_duration[0] > self.storm_duration[1]:
            raise ValidationError("storm_duration bounds out of order")
        if self.storm_interarrival[0] > self.storm_interarrival[1]:
            raise ValidationError("storm_interarrival bounds out of order")


class TraceGenerator:
    """Generates :class:`AlertTrace` objects from a :class:`TraceConfig`."""

    def __init__(self, config: TraceConfig | None = None,
                 topology: CloudTopology | None = None) -> None:
        self._config = config or TraceConfig()
        self._topology = topology or generate_topology(
            TopologyConfig(seed=self._config.seed)
        )
        self._alert_ids = IdFactory("alert", width=8)
        self._fault_ids = IdFactory("fault")

    @property
    def topology(self) -> CloudTopology:
        """The cloud the trace is generated over."""
        return self._topology

    @property
    def config(self) -> TraceConfig:
        """The generation parameters."""
        return self._config

    def generate(self) -> AlertTrace:
        """Run the full pipeline: strategies, storms, background, outcomes."""
        config = self._config
        trace = AlertTrace(seed=config.seed, label=f"trace-{config.scale.days:.0f}d")
        factory = StrategyFactory(self._topology, seed=config.seed, mix=config.mix)
        strategies = factory.build(config.scale.n_strategies)
        for strategy in strategies:
            trace.add_strategy(strategy)
        strategies_by_micro: dict[str, list[AlertStrategy]] = {}
        for strategy in strategies:
            strategies_by_micro.setdefault(strategy.microservice, []).append(strategy)

        storm_alerts = self._generate_storms(trace, strategies_by_micro)
        self._generate_background(trace, strategies, reserved=storm_alerts)
        trace.sort()
        self._sample_outcomes(trace)
        return trace

    # ------------------------------------------------------------------
    # storms (collective anti-patterns)
    # ------------------------------------------------------------------
    def _generate_storms(
        self,
        trace: AlertTrace,
        strategies_by_micro: dict[str, list[AlertStrategy]],
    ) -> int:
        config = self._config
        rng = derive_rng(config.seed, "trace/storms")
        span = config.scale.span_seconds
        regions = self._topology.region_names()
        graph = self._topology.graph
        microservices = sorted(self._topology.microservices)
        # Storm roots are weighted by blast radius: a storm is by nature a
        # failure of something many components depend on.
        impact = np.array([
            len(graph.upstream_impact(name, max_depth=config.cascade_max_depth))
            for name in microservices
        ], dtype=float)
        weights = impact + 1.0
        weights /= weights.sum()
        emitted = 0

        for region in regions:
            expected = config.storms_per_week_per_region * (span / WEEK)
            n_storms = int(rng.poisson(expected))
            for _ in range(n_storms):
                start = float(rng.uniform(0.0, max(span - config.storm_duration[1], 1.0)))
                duration = float(rng.uniform(*config.storm_duration))
                window = TimeWindow(start, start + duration)
                root_micro = microservices[int(rng.choice(len(microservices), p=weights))]
                emitted += self._emit_storm(
                    trace, strategies_by_micro, graph, region, root_micro, window, rng
                )
        return emitted

    def _emit_storm(self, trace, strategies_by_micro, graph, region, root_micro,
                    window, rng: np.random.Generator) -> int:
        config = self._config
        root_kind = _STORM_ROOT_KINDS[int(rng.integers(len(_STORM_ROOT_KINDS)))]
        root_fault = Fault(
            fault_id=self._fault_ids.next(),
            kind=root_kind,
            microservice=root_micro,
            region=region,
            window=window,
        )
        trace.faults.append(root_fault)

        members: list[tuple[str, int, Fault]] = [(root_micro, 0, root_fault)]
        frontier = [root_micro]
        visited = {root_micro}
        parent_fault = {root_micro: root_fault}
        for depth in range(1, config.cascade_max_depth + 1):
            probability = config.cascade_probability * (
                config.cascade_decay ** (depth - 1)
            )
            next_frontier: list[str] = []
            for node in frontier:
                for dependent in sorted(graph.dependents(node)):
                    if dependent in visited or rng.random() > probability:
                        continue
                    visited.add(dependent)
                    # Symptoms start after the *parent's* onset — causality
                    # holds along the whole cascade chain, not just hop 1.
                    onset = min(
                        parent_fault[node].window.start
                        + float(rng.exponential(config.cascade_onset_delay)),
                        window.end - 1.0,
                    )
                    child = Fault(
                        fault_id=self._fault_ids.next(),
                        kind=FaultKind.LATENCY_REGRESSION,
                        microservice=dependent,
                        region=region,
                        window=TimeWindow(onset, window.end),
                        parent_fault_id=parent_fault[node].fault_id,
                        root_fault_id=root_fault.fault_id,
                        depth=depth,
                    )
                    trace.faults.append(child)
                    members.append((dependent, depth, child))
                    parent_fault[dependent] = child
                    next_frontier.append(dependent)
            if not next_frontier:
                break
            frontier = next_frontier

        emitted = 0
        for micro, _depth, fault in members:
            for strategy in strategies_by_micro.get(micro, []):
                cadence = float(rng.uniform(*config.storm_interarrival))
                # The first alert follows the fault onset closely — the
                # component is already anomalous; repeats follow at the
                # strategy's cadence.  Cascade causality (children after
                # parents) is thereby preserved in the alert stream.
                t = fault.window.start + float(rng.exponential(60.0))
                while t < fault.window.end:
                    # Storm alerts persist while the cascade does: durations
                    # sit mostly above the transient threshold so storms do
                    # not masquerade as A4.
                    duration = float(rng.uniform(12 * MINUTE, 45 * MINUTE))
                    self._emit_alert(
                        trace, strategy, region, t,
                        duration=duration,
                        auto=True,
                        fault_id=fault.fault_id,
                    )
                    emitted += 1
                    t += float(rng.exponential(cadence))
        return emitted

    # ------------------------------------------------------------------
    # background (individual behaviours)
    # ------------------------------------------------------------------
    def _generate_background(self, trace: AlertTrace,
                             strategies: list[AlertStrategy], reserved: int) -> None:
        config = self._config
        rng = derive_rng(config.seed, "trace/background")
        span = config.scale.span_seconds
        regions = self._topology.region_names()
        target = max(config.scale.target_total_alerts - reserved, 0)
        if target == 0:
            return
        # Heavy-tailed per-strategy weights: a few strategies dominate the
        # volume, as real alert populations do.
        weights = rng.lognormal(mean=0.0, sigma=1.0, size=len(strategies))
        weights /= weights.sum()
        for strategy, weight in zip(strategies, weights):
            expected_total = target * float(weight)
            per_region = expected_total / len(regions)
            for region in regions:
                count = int(rng.poisson(per_region))
                if count == 0:
                    continue
                self._emit_strategy_background(
                    trace, strategy, region, count, span, rng
                )

    def _emit_strategy_background(self, trace, strategy: AlertStrategy, region: str,
                                  count: int, span: float,
                                  rng: np.random.Generator) -> None:
        config = self._config
        injected = strategy.injected_antipatterns()
        remaining = count

        if "A5" in injected:
            # Repeat episodes: long runs of alerts at a steady cadence.
            # Durations are ordinary (not transient) — repetition, not
            # flapping, is the A5 signature.
            low, high = config.repeat_episode_size
            while remaining > 0:
                size = min(int(rng.integers(low, high + 1)), remaining)
                cadence = float(rng.uniform(*config.repeat_cadence))
                start = float(rng.uniform(0.0, span))
                t = start
                for _ in range(size):
                    duration = float(rng.uniform(8 * MINUTE, 30 * MINUTE))
                    self._emit_alert(trace, strategy, region, t % span,
                                     duration=duration, auto=True, fault_id=None)
                    t += cadence * float(rng.uniform(0.7, 1.3))
                remaining -= size
            return

        if "A4" in injected:
            clustered = int(remaining * config.toggle_cluster_fraction)
            low, high = config.toggle_cluster_size
            while clustered > 0:
                size = min(int(rng.integers(low, high + 1)), clustered)
                start = float(rng.uniform(0.0, span))
                t = start
                for _ in range(size):
                    # Transient: auto-cleared well under the threshold, in
                    # quick oscillating succession.
                    duration = float(rng.uniform(0.5 * MINUTE,
                                                 0.8 * config.transient_threshold))
                    self._emit_alert(trace, strategy, region, t % span,
                                     duration=duration, auto=True, fault_id=None)
                    t += float(rng.uniform(2 * MINUTE, 10 * MINUTE))
                clustered -= size
            remaining = remaining - int(remaining * config.toggle_cluster_fraction)

        # Plain Poisson background for the rest; lifecycle follows the
        # *true* severity so misleading severity (A2) leaves a footprint.
        if remaining > 0:
            times = rng.uniform(0.0, span, size=remaining)
            true_severity = strategy.true_severity
            p_manual = _MANUAL_CLEAR_P[true_severity]
            duration_mean = _DURATION_MEAN[true_severity]
            for t in times:
                duration = float(rng.lognormal(mean=np.log(duration_mean), sigma=0.6))
                manual = bool(rng.random() < p_manual)
                self._emit_alert(trace, strategy, region, float(t),
                                 duration=duration, auto=not manual, fault_id=None)

    def _emit_alert(self, trace: AlertTrace, strategy: AlertStrategy, region: str,
                    occurred_at: float, duration: float, auto: bool,
                    fault_id: str | None) -> None:
        occurred_at = max(occurred_at, 0.0)
        alert = Alert(
            alert_id=self._alert_ids.next(),
            strategy_id=strategy.strategy_id,
            strategy_name=strategy.name,
            title=strategy.title,
            description=strategy.description,
            severity=strategy.severity,
            service=strategy.service,
            microservice=strategy.microservice,
            region=region,
            datacenter=f"{region}-dc1",
            channel=strategy.channel,
            occurred_at=occurred_at,
            fault_id=fault_id,
        )
        alert.state = AlertState.CLEARED_AUTO if auto else AlertState.CLEARED_MANUAL
        alert.cleared_at = occurred_at + max(duration, 1.0)
        trace.alerts.append(alert)

    # ------------------------------------------------------------------
    # OCE outcomes
    # ------------------------------------------------------------------
    def _sample_outcomes(self, trace: AlertTrace) -> None:
        config = self._config
        panel = build_panel()
        model = ProcessingModel(seed=config.seed)
        rng = derive_rng(config.seed, "trace/outcomes")
        for strategy_id, alerts in trace.by_strategy().items():
            strategy = trace.strategies[strategy_id]
            cap = min(len(alerts), config.max_outcomes_per_strategy)
            chosen = rng.choice(len(alerts), size=cap, replace=False)
            for index in sorted(int(i) for i in chosen):
                alert = alerts[index]
                oce = panel[int(rng.integers(len(panel)))]
                trace.outcomes.append(
                    model.process(alert, strategy, oce, alert.occurred_at)
                )


def generate_trace(config: TraceConfig | None = None,
                   topology: CloudTopology | None = None) -> AlertTrace:
    """One-call trace generation with defaults."""
    return TraceGenerator(config, topology).generate()
