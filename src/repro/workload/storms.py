"""The representative alert storm of §III-A2 / Figure 3.

The paper demonstrates the collective anti-patterns with one storm from
7:00 AM to 11:59 AM: 2751 alerts from 200 effective strategies, where the
top strategy — "haproxy process number warning", a WARNING-level alert —
takes around 30 % of the alerts in each hour and a Kafka strategy comes
second.  :func:`build_representative_storm` regenerates a storm with that
exact shape, including ground-truth cascade faults so both A5 and A6 are
detectable, as the paper observed both in this storm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alerting.alert import Alert, AlertState, Severity
from repro.alerting.rules import LogKeywordRule, MetricRule
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.common.errors import ValidationError
from repro.common.ids import IdFactory
from repro.common.rng import derive_rng
from repro.common.timeutil import DAY, HOUR, MINUTE, TimeWindow
from repro.common.validation import require_fraction, require_positive
from repro.detection.threshold import StaticThresholdDetector
from repro.faults.models import Fault, FaultKind
from repro.topology.generator import CloudTopology, TopologyConfig, generate_topology
from repro.workload.strategies import StrategyFactory, StrategyMixConfig
from repro.workload.trace import AlertTrace

__all__ = ["StormConfig", "build_representative_storm", "build_multi_region_storm"]


@dataclass(frozen=True, slots=True)
class StormConfig:
    """Shape of the representative storm (defaults = paper's Figure 3)."""

    seed: int = 42
    day: int = 10                      # which simulated day the storm hits
    start_hour: int = 7                # 7:00 AM ...
    n_hours: int = 5                   # ... to 11:59 AM
    total_alerts: int = 2751
    n_strategies: int = 200            # "effective alert strategies"
    top_share: float = 0.30            # HAProxy's per-hour share
    second_share: float = 0.12         # Kafka's per-hour share
    region: str = "region-A"

    def __post_init__(self) -> None:
        require_positive(self.total_alerts, "total_alerts")
        require_positive(self.n_hours, "n_hours")
        require_fraction(self.top_share, "top_share")
        require_fraction(self.second_share, "second_share")
        if self.n_strategies < 3:
            raise ValidationError("need at least 3 strategies (top, second, others)")
        if self.top_share + self.second_share >= 1.0:
            raise ValidationError("top_share + second_share must be < 1")

    @property
    def window(self) -> TimeWindow:
        """The storm window in simulation seconds."""
        start = self.day * DAY + self.start_hour * HOUR
        return TimeWindow(start, start + self.n_hours * HOUR)


def build_representative_storm(
    config: StormConfig | None = None,
    topology: CloudTopology | None = None,
) -> AlertTrace:
    """Regenerate the Figure 3 storm as an :class:`AlertTrace`."""
    config = config or StormConfig()
    topology = topology or generate_topology(TopologyConfig(seed=config.seed))
    rng = derive_rng(config.seed, "fig3-storm")
    trace = AlertTrace(seed=config.seed, label="fig3-storm")
    alert_ids = IdFactory("alert", width=8)

    haproxy, kafka = _special_strategies(topology)
    trace.add_strategy(haproxy)
    trace.add_strategy(kafka)
    # Quiet mix for the long tail: the storm's repetition comes from the
    # named strategies; the others fire because of the cascade.
    factory = StrategyFactory(
        topology, seed=config.seed,
        mix=StrategyMixConfig(a4_rate=0.0, a5_rate=0.0),
    )
    others = factory.build(config.n_strategies - 2)
    for strategy in others:
        trace.add_strategy(strategy)

    _attach_ground_truth(trace, config, topology, haproxy, rng)

    hour_counts = _split_total(config.total_alerts, config.n_hours, rng)
    # A flat-ish Zipf keeps the long tail below Kafka's share, matching
    # the figure where only two strategies stand out.
    other_weights = _zipf_weights(len(others), exponent=0.9)
    forced = _force_coverage(len(others), config.n_hours, rng)

    for hour_index, hour_total in enumerate(hour_counts):
        hour_start = config.window.start + hour_index * HOUR
        top_count = _jittered_share(hour_total, config.top_share, rng)
        second_count = _jittered_share(hour_total, config.second_share, rng)
        other_total = hour_total - top_count - second_count

        _emit_repeats(trace, alert_ids, haproxy, config.region, hour_start,
                      top_count, rng)
        _emit_repeats(trace, alert_ids, kafka, config.region, hour_start,
                      second_count, rng)

        counts = np.zeros(len(others), dtype=int)
        for strategy_index in forced.get(hour_index, []):
            counts[strategy_index] += 1
        remainder = other_total - int(counts.sum())
        if remainder > 0:
            counts += rng.multinomial(remainder, other_weights)
        elif remainder < 0:
            raise ValidationError(
                "storm shape infeasible: forced coverage exceeds hourly budget"
            )
        for strategy_index, count in enumerate(counts):
            for _ in range(int(count)):
                occurred = hour_start + float(rng.uniform(0.0, HOUR))
                _append_alert(trace, alert_ids, others[strategy_index],
                              config.region, occurred, rng)

    trace.sort()
    return trace


def build_multi_region_storm(
    config: StormConfig | None = None,
    topology: CloudTopology | None = None,
    regions: tuple[str, ...] = ("region-A", "region-B", "region-C", "region-D"),
) -> AlertTrace:
    """Concurrent Figure 3 storms, one per region, merged time-ordered.

    The paper's storm is region-local; a production gateway sees many
    regions flooding at once, which interleaves the merged stream almost
    perfectly (identical per-region timelines, alert by alert).  That is
    the adversarial shape for any region-keyed reaction — and the
    workload the region-partitioned execution planes exist for, so the
    plane benchmarks and the multi-plane example replay exactly this.
    Alert and fault ids are prefixed per region to stay globally unique.
    """
    from dataclasses import replace

    config = config or StormConfig()
    topology = topology or generate_topology(TopologyConfig(seed=config.seed))
    merged: AlertTrace | None = None
    for region in regions:
        regional = build_representative_storm(
            replace(config, region=region), topology,
        )
        regional.alerts = [
            replace(alert, alert_id=f"{region}:{alert.alert_id}")
            for alert in regional.alerts
        ]
        regional.faults = [
            replace(
                fault,
                fault_id=f"{region}:{fault.fault_id}",
                parent_fault_id=(
                    None if fault.parent_fault_id is None
                    else f"{region}:{fault.parent_fault_id}"
                ),
                root_fault_id=(
                    None if fault.root_fault_id is None
                    else f"{region}:{fault.root_fault_id}"
                ),
            )
            for fault in regional.faults
        ]
        if merged is None:
            merged = regional
        else:
            regional.strategies = {}  # merge() requires identical objects
            merged = merged.merge(regional, label="multi-region-storm")
    assert merged is not None
    return merged


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _special_strategies(topology: CloudTopology) -> tuple[AlertStrategy, AlertStrategy]:
    """The named HAProxy and Kafka strategies of Figure 3.

    Both sit on the most-depended-on microservice of their service so the
    attached ground-truth cascade has real dependents to sweep.
    """
    def hub_of(service: str) -> str:
        members = topology.microservices_of(service)
        return max(members, key=lambda n: (len(topology.graph.dependents(n)), n))

    lb_micro = hub_of("load-balancer")
    mq_micro = hub_of("message-queue")
    haproxy = AlertStrategy(
        strategy_id="strategy-haproxy",
        name="haproxy_process_number_warning",
        service="load-balancer",
        microservice=lb_micro,
        rule=MetricRule(
            metric_name="request_rate",
            detector=StaticThresholdDetector(threshold=400.0, direction="above"),
        ),
        severity=Severity.WARNING,
        true_severity=Severity.WARNING,
        title=f"{lb_micro}: process number warning",
        description="The number of haproxy worker processes deviates from expectation.",
        quality=StrategyQuality(repeat_proneness=0.9),
        cooldown_seconds=60.0,
        auto_clear=True,
        owner_team="team-load-balancer",
    )
    kafka = AlertStrategy(
        strategy_id="strategy-kafka",
        name="kafka_consumer_lag_high",
        service="message-queue",
        microservice=mq_micro,
        rule=LogKeywordRule(min_count=5, window_seconds=120.0),
        severity=Severity.MINOR,
        true_severity=Severity.MINOR,
        title=f"{mq_micro}: consumer lag growing, queue backlog",
        description="Message consumers fall behind producers; backlog is growing.",
        quality=StrategyQuality(repeat_proneness=0.8),
        cooldown_seconds=120.0,
        auto_clear=False,
        owner_team="team-message-queue",
    )
    return haproxy, kafka


def _attach_ground_truth(trace: AlertTrace, config: StormConfig,
                         topology: CloudTopology, haproxy: AlertStrategy,
                         rng: np.random.Generator) -> None:
    """Root fault on the load balancer plus cascade children (A6 witness)."""
    fault_ids = IdFactory("fault")
    root = Fault(
        fault_id=fault_ids.next(),
        kind=FaultKind.NETWORK_OVERLOAD,
        microservice=haproxy.microservice,
        region=config.region,
        window=config.window,
    )
    trace.faults.append(root)
    for depth, dependent in enumerate(
        sorted(topology.graph.dependents(haproxy.microservice))[:6], start=1
    ):
        onset = config.window.start + depth * float(rng.exponential(2 * MINUTE))
        trace.faults.append(Fault(
            fault_id=fault_ids.next(),
            kind=FaultKind.LATENCY_REGRESSION,
            microservice=dependent,
            region=config.region,
            window=TimeWindow(min(onset, config.window.end - 1.0), config.window.end),
            parent_fault_id=root.fault_id,
            root_fault_id=root.fault_id,
            depth=1,
        ))


def _split_total(total: int, parts: int, rng: np.random.Generator) -> list[int]:
    """Split ``total`` into near-equal hourly totals (concentration ~ paper)."""
    weights = rng.dirichlet(np.full(parts, 60.0))
    counts = rng.multinomial(total, weights)
    return [int(c) for c in counts]


def _jittered_share(total: int, share: float, rng: np.random.Generator) -> int:
    """A count near ``share * total`` with +-1.5 % jitter."""
    jitter = float(rng.normal(0.0, 0.015))
    return max(int(round(total * (share + jitter))), 0)


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _force_coverage(n_strategies: int, n_hours: int,
                    rng: np.random.Generator) -> dict[int, list[int]]:
    """Assign every long-tail strategy one alert in a random hour.

    Guarantees the paper's "200 effective strategies" even when the Zipf
    tail would otherwise leave some strategies silent.
    """
    assignment: dict[int, list[int]] = {}
    for strategy_index in range(n_strategies):
        hour = int(rng.integers(n_hours))
        assignment.setdefault(hour, []).append(strategy_index)
    return assignment


def _emit_repeats(trace: AlertTrace, alert_ids: IdFactory, strategy: AlertStrategy,
                  region: str, hour_start: float, count: int,
                  rng: np.random.Generator) -> None:
    """Emit ``count`` repeating alerts of one strategy across an hour."""
    if count <= 0:
        return
    offsets = np.sort(rng.uniform(0.0, HOUR, size=count))
    for offset in offsets:
        _append_alert(trace, alert_ids, strategy, region, hour_start + float(offset), rng)


def _append_alert(trace: AlertTrace, alert_ids: IdFactory, strategy: AlertStrategy,
                  region: str, occurred_at: float, rng: np.random.Generator) -> None:
    duration = float(rng.uniform(1 * MINUTE, 10 * MINUTE))
    alert = Alert(
        alert_id=alert_ids.next(),
        strategy_id=strategy.strategy_id,
        strategy_name=strategy.name,
        title=strategy.title,
        description=strategy.description,
        severity=strategy.severity,
        service=strategy.service,
        microservice=strategy.microservice,
        region=region,
        datacenter=f"{region}-dc1",
        channel=strategy.channel,
        occurred_at=occurred_at,
        fault_id=None,
    )
    alert.state = AlertState.CLEARED_AUTO
    alert.cleared_at = occurred_at + duration
    trace.alerts.append(alert)
