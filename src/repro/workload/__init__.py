"""Workload synthesis: strategy populations and multi-month alert traces.

Two generation modes exist, producing identical :class:`AlertTrace`
records:

* **telemetry-driven** (high fidelity, short horizons): the monitoring
  engine polls synthetic telemetry perturbed by injected faults — used by
  the cascade/Table II experiments and the examples;
* **rate-driven** (statistical, long horizons): alerts are drawn directly
  from per-strategy rate models that encode the anti-pattern behaviours —
  used for the paper's two-year/4M-alert quantitative frame, where
  generating per-minute telemetry would be prohibitive.

The rate models are calibrated against the paper's aggregate numbers in
:mod:`repro.workload.calibration`.
"""

from repro.workload.calibration import TraceScale
from repro.workload.drift import DriftConfig, build_drifting_noise_trace, drift_graph
from repro.workload.generator import TraceConfig, TraceGenerator, generate_trace
from repro.workload.storms import (
    StormConfig,
    build_multi_region_storm,
    build_representative_storm,
)
from repro.workload.strategies import StrategyFactory, StrategyMixConfig
from repro.workload.trace import AlertTrace

__all__ = [
    "AlertTrace",
    "TraceScale",
    "TraceConfig",
    "TraceGenerator",
    "generate_trace",
    "StormConfig",
    "build_representative_storm",
    "build_multi_region_storm",
    "DriftConfig",
    "build_drifting_noise_trace",
    "drift_graph",
    "StrategyFactory",
    "StrategyMixConfig",
]
