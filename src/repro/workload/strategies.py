"""Strategy population factory.

Builds N alert strategies spread over the topology's microservices, with
quality knobs drawn from configurable injection rates — the synthetic
counterpart of the paper's 2010 manually configured (and variously
misconfigured) strategies.  Injection draws are independent per
anti-pattern, so strategies can exhibit several anti-patterns at once,
as the paper's candidates did.

Channel mix and rule parameters follow §II-B3: metric strategies dominate,
log keyword rules match "N ERRORs in M minutes", probes use fixed
no-response thresholds.  A strategy's *sensitivity* (A4 knob) tightens its
rule — thresholds close to the normal range, no debouncing — which is
literally how transient/toggling alerts arise in production.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.alerting.alert import Severity
from repro.alerting.rules import GenerationRule, LogKeywordRule, MetricRule, ProbeRule
from repro.alerting.strategy import AlertStrategy, StrategyQuality
from repro.alerting.titles import make_description, make_title
from repro.common.errors import ValidationError
from repro.common.ids import IdFactory
from repro.common.rng import derive_rng
from repro.common.validation import require_fraction
from repro.detection.threshold import StaticThresholdDetector
from repro.telemetry.metrics import default_profiles
from repro.topology.generator import CloudTopology

__all__ = ["StrategyMixConfig", "StrategyFactory"]

#: Metrics whose degradation end users feel directly (relevant targets).
_SERVICE_QUALITY_METRICS: frozenset[str] = frozenset({
    "latency_ms", "error_rate", "request_rate", "http_5xx_rate",
    "commit_latency_ms", "io_latency_ms", "packet_loss", "consumer_lag",
    "vm_launch_latency_ms", "queue_depth", "connection_count",
    "io_throughput", "network_throughput", "task_backlog",
})

#: Low-level infrastructure metrics — the A3 trap: they "do not have a
#: definite effect on the quality of cloud services from the perspective
#: of customers" once fault tolerance is in place.
_INFRA_METRICS: tuple[str, ...] = ("cpu_util", "memory_util", "disk_util")

#: Manifestation key per metric, for title synthesis.
_MANIFESTATION_BY_METRIC: dict[str, str] = {
    "cpu_util": "cpu_overload",
    "memory_util": "memory_leak",
    "disk_util": "disk_full",
    "latency_ms": "latency_regression",
    "io_latency_ms": "latency_regression",
    "commit_latency_ms": "commit_failure",
    "error_rate": "error_burst",
    "http_5xx_rate": "error_burst",
    "request_rate": "latency_regression",
    "network_throughput": "network_overload",
    "packet_loss": "network_overload",
    "queue_depth": "queue_backlog",
    "consumer_lag": "queue_backlog",
    "connection_count": "queue_backlog",
    "io_throughput": "network_overload",
    "vm_launch_latency_ms": "latency_regression",
    "task_backlog": "queue_backlog",
}


@dataclass(frozen=True, slots=True)
class StrategyMixConfig:
    """Injection rates and channel mix of the strategy population."""

    metric_fraction: float = 0.60
    log_fraction: float = 0.25
    # probe fraction is the remainder

    a1_rate: float = 0.12
    a2_rate: float = 0.10
    a3_rate: float = 0.10
    a4_rate: float = 0.10
    a5_rate: float = 0.08

    def __post_init__(self) -> None:
        require_fraction(self.metric_fraction, "metric_fraction")
        require_fraction(self.log_fraction, "log_fraction")
        if self.metric_fraction + self.log_fraction > 1.0:
            raise ValidationError("metric_fraction + log_fraction must be <= 1")
        for name in ("a1_rate", "a2_rate", "a3_rate", "a4_rate", "a5_rate"):
            require_fraction(getattr(self, name), name)

    @property
    def probe_fraction(self) -> float:
        """Share of probe-channel strategies."""
        return 1.0 - self.metric_fraction - self.log_fraction

    def expected_clean_fraction(self) -> float:
        """Probability a strategy has no injected anti-pattern."""
        return (
            (1 - self.a1_rate) * (1 - self.a2_rate) * (1 - self.a3_rate)
            * (1 - self.a4_rate) * (1 - self.a5_rate)
        )


class StrategyFactory:
    """Draws strategy populations over a topology."""

    def __init__(
        self,
        topology: CloudTopology,
        seed: int = 42,
        mix: StrategyMixConfig | None = None,
    ) -> None:
        self._topology = topology
        self._seed = seed
        self._mix = mix or StrategyMixConfig()
        self._ids = IdFactory("strategy")

    @property
    def mix(self) -> StrategyMixConfig:
        """The injection-rate configuration."""
        return self._mix

    def build(self, count: int) -> list[AlertStrategy]:
        """Build ``count`` strategies spread over the microservices.

        Every microservice receives a strategy before any receives a
        second (monitoring covers the whole fleet, as in the paper's
        system with ~10 strategies per microservice); the remainder is
        spread randomly, so popular components end up watched by several
        rules.
        """
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        rng = derive_rng(self._seed, "strategy-factory")
        microservices = sorted(self._topology.microservices)
        coverage_order = rng.permutation(len(microservices))
        strategies = []
        for index in range(count):
            if index < len(microservices):
                microservice = microservices[int(coverage_order[index])]
            else:
                microservice = microservices[int(rng.integers(len(microservices)))]
            strategies.append(self._build_one(microservice, rng, index))
        return strategies

    def build_for(self, microservice: str, count: int = 1) -> list[AlertStrategy]:
        """Build ``count`` strategies for one specific microservice."""
        rng = derive_rng(self._seed, f"strategy-factory/{microservice}")
        return [self._build_one(microservice, rng, index) for index in range(count)]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _build_one(self, microservice: str, rng: np.random.Generator,
                   index: int) -> AlertStrategy:
        mix = self._mix
        quality = self._draw_quality(rng)
        channel_draw = rng.random()
        if channel_draw < mix.metric_fraction:
            return self._metric_strategy(microservice, quality, rng)
        # A3 (improper target) is a metric-channel concept: log and probe
        # rules have no monitored metric to mis-target, so the knob is
        # clamped to "relevant" to keep the ground truth meaningful.
        quality = replace(quality, target_relevance=max(quality.target_relevance, 0.7))
        if channel_draw < mix.metric_fraction + mix.log_fraction:
            return self._log_strategy(microservice, quality, rng)
        return self._probe_strategy(microservice, quality, rng)

    def _draw_quality(self, rng: np.random.Generator) -> StrategyQuality:
        mix = self._mix
        title_clarity = (
            float(rng.uniform(0.0, 0.45)) if rng.random() < mix.a1_rate
            else float(rng.uniform(0.7, 1.0))
        )
        if rng.random() < mix.a2_rate:
            magnitude = 1 if rng.random() < 0.8 else 2
            severity_bias = magnitude if rng.random() < 0.5 else -magnitude
        else:
            severity_bias = 0
        target_relevance = (
            float(rng.uniform(0.0, 0.45)) if rng.random() < mix.a3_rate
            else float(rng.uniform(0.7, 1.0))
        )
        sensitivity = (
            float(rng.uniform(0.65, 1.0)) if rng.random() < mix.a4_rate
            else float(rng.uniform(0.0, 0.4))
        )
        repeat_proneness = (
            float(rng.uniform(0.65, 1.0)) if rng.random() < mix.a5_rate
            else float(rng.uniform(0.0, 0.3))
        )
        return StrategyQuality(
            title_clarity=title_clarity,
            severity_bias=severity_bias,
            target_relevance=target_relevance,
            sensitivity=sensitivity,
            repeat_proneness=repeat_proneness,
        )

    @staticmethod
    def _apply_bias(true_severity: Severity, bias: int) -> Severity:
        if bias > 0:
            return true_severity.escalated(bias)
        if bias < 0:
            return true_severity.demoted(-bias)
        return true_severity

    def _archetype(self, microservice: str) -> str:
        service = self._topology.service_of[microservice]
        return self._topology.services[service].archetype

    def _metric_strategy(self, microservice: str, quality: StrategyQuality,
                         rng: np.random.Generator) -> AlertStrategy:
        archetype = self._archetype(microservice)
        profiles = default_profiles(archetype)
        relevant = quality.target_relevance >= 0.5
        if relevant:
            candidates = sorted(set(profiles) & _SERVICE_QUALITY_METRICS)
        else:
            candidates = [m for m in _INFRA_METRICS if m in profiles]
        metric_name = candidates[int(rng.integers(len(candidates)))]
        profile = profiles[metric_name]

        sensitive = quality.sensitivity > 0.6
        # Normal operating ceiling of the signal: base + diurnal swing + noise.
        normal_peak = profile.base + profile.daily_amplitude + 2.0 * profile.noise_std
        if sensitive:
            # Threshold inside the noise band: fires on ordinary fluctuation.
            threshold = profile.base + profile.daily_amplitude + 0.5 * profile.noise_std
            min_consecutive = 1
        else:
            threshold = normal_peak * 1.25
            min_consecutive = 3
        detector = StaticThresholdDetector(
            threshold=threshold, direction="above", min_consecutive=min_consecutive
        )
        rule = MetricRule(metric_name=metric_name, detector=detector)
        true_severity = Severity.MAJOR if relevant else Severity.MINOR
        name = f"{microservice}_{metric_name}_over_{threshold:.0f}"
        manifestation = _MANIFESTATION_BY_METRIC.get(metric_name, "latency_regression")
        return self._assemble(
            microservice, name, rule, true_severity, quality, manifestation, rng,
            auto_clear=True,
        )

    def _log_strategy(self, microservice: str, quality: StrategyQuality,
                      rng: np.random.Generator) -> AlertStrategy:
        sensitive = quality.sensitivity > 0.6
        rule = LogKeywordRule(
            min_count=2 if sensitive else 5,
            window_seconds=120.0,
        )
        name = f"{microservice}_error_logs_{rule.min_count}_in_2min"
        return self._assemble(
            microservice, name, rule, Severity.MINOR, quality, "error_burst", rng,
            auto_clear=False,
        )

    def _probe_strategy(self, microservice: str, quality: StrategyQuality,
                        rng: np.random.Generator) -> AlertStrategy:
        sensitive = quality.sensitivity > 0.6
        rule = ProbeRule(no_response_threshold=30.0 if sensitive else 120.0)
        name = f"{microservice}_no_heartbeat_{rule.no_response_threshold:.0f}s"
        return self._assemble(
            microservice, name, rule, Severity.CRITICAL, quality, "crash", rng,
            auto_clear=True,
        )

    def _assemble(
        self,
        microservice: str,
        name: str,
        rule: GenerationRule,
        true_severity: Severity,
        quality: StrategyQuality,
        manifestation: str,
        rng: np.random.Generator,
        auto_clear: bool,
    ) -> AlertStrategy:
        service = self._topology.service_of[microservice]
        severity = self._apply_bias(true_severity, quality.severity_bias)
        if severity is true_severity and quality.severity_bias != 0:
            # The drawn bias clamped away (e.g. escalating CRITICAL); flip
            # its direction so "A2 injected" always means a real mismatch.
            flipped = -quality.severity_bias
            severity = self._apply_bias(true_severity, flipped)
            quality = replace(quality, severity_bias=flipped)
        title = make_title(service, microservice, manifestation, quality.title_clarity, rng)
        description = make_description(microservice, manifestation, quality.title_clarity, rng)
        cooldown = 900.0
        return AlertStrategy(
            strategy_id=self._ids.next(),
            name=name,
            service=service,
            microservice=microservice,
            rule=rule,
            severity=severity,
            true_severity=true_severity,
            title=title,
            description=description,
            quality=quality,
            check_interval=60.0,
            cooldown_seconds=cooldown,
            auto_clear=auto_clear,
            owner_team=f"team-{service}",
        )
