"""Scale presets tying synthetic traces to the paper's quantitative frame.

The paper analyses >4 million alerts over two years from 2010 strategies.
``TraceScale.paper()`` reproduces that frame; ``TraceScale.default()`` is
a rate-preserving scale-down (same alerts/strategy/day, fewer days and
strategies) that keeps benchmark runtimes in seconds.  Mining thresholds
in the paper are *relative* (top-30 % processing time) or *per hour per
region* (200/h, 100/h), so they transfer across scales unchanged; this is
the substitution argument recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import paper_reference as paper
from repro.common.timeutil import DAY
from repro.common.validation import require_positive

__all__ = ["TraceScale"]


@dataclass(frozen=True, slots=True)
class TraceScale:
    """How big a generated trace is."""

    days: float
    n_strategies: int
    target_total_alerts: int

    def __post_init__(self) -> None:
        require_positive(self.days, "days")
        require_positive(self.n_strategies, "n_strategies")
        require_positive(self.target_total_alerts, "target_total_alerts")

    @property
    def span_seconds(self) -> float:
        """Trace length in simulation seconds."""
        return self.days * DAY

    @property
    def alerts_per_day(self) -> float:
        """Target mean daily alert volume."""
        return self.target_total_alerts / self.days

    @property
    def alerts_per_strategy_per_day(self) -> float:
        """Target mean per-strategy daily rate — the scale-invariant knob."""
        return self.alerts_per_day / self.n_strategies

    @classmethod
    def paper(cls) -> "TraceScale":
        """The paper's frame: 2 years, 2010 strategies, >4 M alerts."""
        return cls(
            days=paper.STUDY_YEARS * 365,
            n_strategies=paper.N_STRATEGIES,
            target_total_alerts=paper.N_ALERTS_TOTAL,
        )

    @classmethod
    def default(cls) -> "TraceScale":
        """Benchmark scale: 60 days, 400 strategies, same per-strategy rate.

        per-strategy rate = 4 M / (730 d x 2010) ~= 2.73 alerts/strategy/day,
        so 60 d x 400 strategies ~= 65 k alerts.
        """
        per_strategy_daily = paper.N_ALERTS_TOTAL / (paper.STUDY_YEARS * 365) / paper.N_STRATEGIES
        days, n_strategies = 60, 400
        return cls(
            days=days,
            n_strategies=n_strategies,
            target_total_alerts=int(per_strategy_daily * days * n_strategies),
        )

    @classmethod
    def smoke(cls) -> "TraceScale":
        """Tiny scale for unit tests: 7 days, 60 strategies."""
        per_strategy_daily = paper.N_ALERTS_TOTAL / (paper.STUDY_YEARS * 365) / paper.N_STRATEGIES
        days, n_strategies = 7, 60
        return cls(
            days=days,
            n_strategies=n_strategies,
            target_total_alerts=max(int(per_strategy_daily * days * n_strategies), 1),
        )
