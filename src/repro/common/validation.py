"""Small argument-validation helpers shared across constructors."""

from __future__ import annotations

from typing import Iterable, Sized

from repro.common.errors import ValidationError

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_fraction",
    "require_non_empty",
    "require_in",
]


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise :class:`ValidationError`."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise :class:`ValidationError`."""
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Return ``value`` if within ``[0, 1]``, else raise :class:`ValidationError`."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_non_empty(collection: Sized, name: str) -> Sized:
    """Return ``collection`` if it has at least one element."""
    if len(collection) == 0:
        raise ValidationError(f"{name} must be non-empty")
    return collection


def require_in(value: object, allowed: Iterable[object], name: str) -> object:
    """Return ``value`` if it is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
