"""Exception hierarchy for the ``repro`` package.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one base class at the API
boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad range, empty collection, ...)."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or incomplete."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""
