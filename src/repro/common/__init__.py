"""Shared low-level utilities used by every subsystem.

The helpers here deliberately stay small: deterministic random-number
streams (:mod:`repro.common.rng`), simulated wall-clock time and windows
(:mod:`repro.common.timeutil`), sequential identifier factories
(:mod:`repro.common.ids`), argument validation (:mod:`repro.common.validation`),
and the package exception hierarchy (:mod:`repro.common.errors`).
"""

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.common.ids import IdFactory
from repro.common.rng import derive_rng, derive_seed, spawn_children
from repro.common.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    SECOND,
    WEEK,
    TimeWindow,
    format_timestamp,
    hour_bucket,
    iter_buckets,
    to_datetime,
)

__all__ = [
    "ConfigurationError",
    "ReproError",
    "SimulationError",
    "ValidationError",
    "IdFactory",
    "derive_rng",
    "derive_seed",
    "spawn_children",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "TimeWindow",
    "format_timestamp",
    "hour_bucket",
    "iter_buckets",
    "to_datetime",
]
