"""Simulated time: durations, windows, and hour bucketing.

Simulation time is a float number of seconds since the simulation origin.
The origin corresponds to a concrete UTC datetime (default 2020-01-01
00:00) purely for human-readable rendering — all arithmetic stays in
seconds.  The alert-trace analyses in the paper bucket alerts by the hour
they occur, so :func:`hour_bucket` and :func:`iter_buckets` are the
workhorses of the mining pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Iterator

from repro.common.errors import ValidationError

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "SIM_ORIGIN",
    "TimeWindow",
    "to_datetime",
    "format_timestamp",
    "hour_bucket",
    "iter_buckets",
]

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY

#: The UTC datetime that simulation time ``0.0`` renders as.
SIM_ORIGIN = datetime(2020, 1, 1, 0, 0, 0, tzinfo=timezone.utc)


def to_datetime(sim_time: float, origin: datetime = SIM_ORIGIN) -> datetime:
    """Convert simulation seconds to an absolute UTC datetime."""
    return origin + timedelta(seconds=float(sim_time))


def format_timestamp(sim_time: float, origin: datetime = SIM_ORIGIN) -> str:
    """Render simulation time in the paper's alert-table style.

    Table II of the paper prints timestamps as ``2021/05/18 06:36``.
    """
    return to_datetime(sim_time, origin).strftime("%Y/%m/%d %H:%M")


def hour_bucket(sim_time: float) -> int:
    """Return the integer hour index containing ``sim_time``."""
    if sim_time < 0:
        raise ValidationError(f"sim_time must be >= 0, got {sim_time}")
    return int(sim_time // HOUR)


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """A half-open interval ``[start, end)`` in simulation seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError(f"window end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Length of the window in seconds."""
        return self.end - self.start

    def contains(self, sim_time: float) -> bool:
        """Whether ``sim_time`` falls inside the half-open interval."""
        return self.start <= sim_time < self.end

    def overlaps(self, other: "TimeWindow") -> bool:
        """Whether the two half-open intervals intersect."""
        return self.start < other.end and other.start < self.end

    def shift(self, offset: float) -> "TimeWindow":
        """Return a copy translated by ``offset`` seconds."""
        return TimeWindow(self.start + offset, self.end + offset)

    @classmethod
    def hour(cls, index: int) -> "TimeWindow":
        """The window covering integer hour ``index``."""
        if index < 0:
            raise ValidationError(f"hour index must be >= 0, got {index}")
        return cls(index * HOUR, (index + 1) * HOUR)


def iter_buckets(window: TimeWindow, width: float) -> Iterator[TimeWindow]:
    """Yield consecutive ``width``-second buckets covering ``window``.

    The final bucket is truncated at ``window.end`` so the union of the
    yielded buckets equals the input window exactly.
    """
    if width <= 0:
        raise ValidationError(f"bucket width must be > 0, got {width}")
    start = window.start
    while start < window.end:
        end = min(start + width, window.end)
        yield TimeWindow(start, end)
        start = end
