"""Sequential identifier factories.

Entities across the simulation (alerts, strategies, faults, ...) carry
short human-readable ids such as ``alert-000123``.  Sequential ids keep
traces diffable and make test failures easy to read.
"""

from __future__ import annotations

from repro.common.errors import ValidationError

__all__ = ["IdFactory"]


class IdFactory:
    """Produces ``{prefix}-{counter:0{width}d}`` identifiers.

    >>> factory = IdFactory("alert")
    >>> factory.next()
    'alert-000000'
    >>> factory.next()
    'alert-000001'
    """

    def __init__(self, prefix: str, width: int = 6, start: int = 0) -> None:
        if not prefix:
            raise ValidationError("prefix must be non-empty")
        if width < 1:
            raise ValidationError(f"width must be >= 1, got {width}")
        if start < 0:
            raise ValidationError(f"start must be >= 0, got {start}")
        self._prefix = prefix
        self._width = width
        self._counter = start

    @property
    def prefix(self) -> str:
        """The identifier prefix."""
        return self._prefix

    @property
    def count(self) -> int:
        """How many identifiers have been issued so far."""
        return self._counter

    def next(self) -> str:
        """Issue the next identifier."""
        value = f"{self._prefix}-{self._counter:0{self._width}d}"
        self._counter += 1
        return value

    def peek(self) -> str:
        """Return the identifier :meth:`next` would issue, without issuing it."""
        return f"{self._prefix}-{self._counter:0{self._width}d}"

    def reset(self, start: int = 0) -> None:
        """Restart the counter (used between independent simulation runs)."""
        if start < 0:
            raise ValidationError(f"start must be >= 0, got {start}")
        self._counter = start
