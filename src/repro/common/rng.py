"""Deterministic random-number streams.

Every stochastic component in the library receives its randomness from a
named substream derived from a single root seed.  Substreams are
independent of each other and of the order in which they are created, so
adding a new component never perturbs the random draws of existing ones —
a property the calibrated benchmarks rely on.

Example
-------
>>> rng_topology = derive_rng(42, "topology")
>>> rng_faults = derive_rng(42, "faults")
>>> float(rng_topology.random()) != float(rng_faults.random())
True
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.common.errors import ValidationError

__all__ = ["derive_seed", "derive_rng", "spawn_children"]

_HASH_BYTES = 8


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    The derivation hashes the name, so two distinct names virtually never
    collide and the result does not depend on creation order.
    """
    if not isinstance(root_seed, (int, np.integer)):
        raise ValidationError(f"root_seed must be an int, got {type(root_seed).__name__}")
    if not name:
        raise ValidationError("stream name must be a non-empty string")
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    name_part = int.from_bytes(digest[:_HASH_BYTES], "big")
    return (int(root_seed) * 0x9E3779B97F4A7C15 + name_part) % (2**63)


def derive_rng(root_seed: int, name: str) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for ``name``."""
    return np.random.default_rng(derive_seed(root_seed, name))


def spawn_children(root_seed: int, name: str, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators under one stream name.

    Useful for per-entity randomness (one generator per microservice, per
    OCE, ...) where entities must not share a stream.
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    return [derive_rng(derive_seed(root_seed, name), f"{name}/{index}") for index in range(count)]
