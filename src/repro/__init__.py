"""repro — alert anti-pattern characterisation and mitigation.

A from-scratch reproduction of *"Characterizing and Mitigating
Anti-patterns of Alerts in Industrial Cloud Systems"* (DSN 2022): a
synthetic cloud substrate (topology, telemetry, faults, alerting engine,
OCE simulation), detectors for the paper's six alert anti-patterns, the
four mitigation reactions, and the Quality-of-Alerts framework.

Quickstart
----------
>>> from repro import generate_topology, generate_trace, run_mining_pipeline
>>> topology = generate_topology()
>>> trace = generate_trace(topology=topology)
>>> report = run_mining_pipeline(trace, topology.graph)
>>> sorted(report.individual_patterns_found + report.collective_patterns_found)
['A1', 'A2', 'A3', 'A4', 'A5', 'A6']

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.alerting import (
    Alert,
    AlertBook,
    AlertState,
    AlertStrategy,
    MonitoringEngine,
    Severity,
    SOPLibrary,
    StrategyQuality,
)
from repro.core.antipatterns import (
    AntiPatternFinding,
    CascadingAlertsDetector,
    DetectorThresholds,
    ImproperRuleDetector,
    MisleadingSeverityDetector,
    RepeatingAlertsDetector,
    TransientTogglingDetector,
    UnclearTitleDetector,
    detect_storms,
    run_mining_pipeline,
)
from repro.core.mitigation import (
    AlertAggregator,
    AlertBlocker,
    CorrelationAnalyzer,
    EmergingAlertDetector,
    MitigationPipeline,
)
from repro.core.governance import GuidelineChecker, PeriodicReview
from repro.streaming import AlertGateway, GatewayStats, ShardRouter, drive_gateway
from repro.core.incidents import Incident, IncidentEscalator
from repro.core.qoa import QoAModel, evaluate_qoa_pipeline, measure_qoa
from repro.faults import CascadeModel, FaultInjector, FaultKind
from repro.oce import OCETeam, ProcessingModel, SurveyInstrument, build_panel
from repro.telemetry import TelemetryHub
from repro.topology import CloudTopology, TopologyConfig, generate_topology
from repro.workload import (
    AlertTrace,
    TraceConfig,
    TraceScale,
    build_representative_storm,
    generate_trace,
)

__version__ = "1.0.0"

__all__ = [
    # substrate
    "CloudTopology",
    "TopologyConfig",
    "generate_topology",
    "TelemetryHub",
    "FaultInjector",
    "FaultKind",
    "CascadeModel",
    "Alert",
    "AlertState",
    "AlertStrategy",
    "StrategyQuality",
    "Severity",
    "AlertBook",
    "MonitoringEngine",
    "SOPLibrary",
    "OCETeam",
    "ProcessingModel",
    "SurveyInstrument",
    "build_panel",
    # workload
    "AlertTrace",
    "TraceConfig",
    "TraceScale",
    "generate_trace",
    "build_representative_storm",
    # core: anti-patterns
    "AntiPatternFinding",
    "DetectorThresholds",
    "UnclearTitleDetector",
    "MisleadingSeverityDetector",
    "ImproperRuleDetector",
    "TransientTogglingDetector",
    "RepeatingAlertsDetector",
    "CascadingAlertsDetector",
    "detect_storms",
    "run_mining_pipeline",
    # core: mitigation
    "AlertBlocker",
    "AlertAggregator",
    "CorrelationAnalyzer",
    "EmergingAlertDetector",
    "MitigationPipeline",
    # streaming gateway
    "AlertGateway",
    "GatewayStats",
    "ShardRouter",
    "drive_gateway",
    # core: governance & incidents
    "GuidelineChecker",
    "PeriodicReview",
    "Incident",
    "IncidentEscalator",
    # core: QoA
    "QoAModel",
    "measure_qoa",
    "evaluate_qoa_pipeline",
    "__version__",
]
