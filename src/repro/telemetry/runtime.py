"""Runtime metrics for long-running repro processes.

The rest of :mod:`repro.telemetry` *synthesises* monitoring data for the
simulated cloud; this module is the opposite direction — lightweight
counters, gauges, and duration summaries for the repro serving processes
themselves (checkpoint write latency, journal record counts, restore
times).  Deliberately tiny: a thread-safe dict of scalars, no exporters,
rendered into ``stats.json`` and the ops CLI.
"""

from __future__ import annotations

import threading

__all__ = ["RuntimeMetrics"]


class RuntimeMetrics:
    """Thread-safe counters / gauges / duration summaries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max, last]
        self._timers: dict[str, list[float]] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to a monotone counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample into a summary."""
        seconds = float(seconds)
        with self._lock:
            summary = self._timers.get(name)
            if summary is None:
                self._timers[name] = [1, seconds, seconds, seconds, seconds]
            else:
                summary[0] += 1
                summary[1] += seconds
                summary[2] = min(summary[2], seconds)
                summary[3] = max(summary[3], seconds)
                summary[4] = seconds

    def counter(self, name: str) -> int:
        """Current value of one counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """Everything as one JSON-safe dict."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {
                        "count": int(summary[0]),
                        "total": summary[1],
                        "mean": summary[1] / summary[0],
                        "min": summary[2],
                        "max": summary[3],
                        "last": summary[4],
                    }
                    for name, summary in self._timers.items()
                },
            }

    def render(self) -> str:
        """Human-readable one-line-per-metric summary."""
        snapshot = self.snapshot()
        lines = []
        for name in sorted(snapshot["counters"]):
            lines.append(f"  {name:<32} {snapshot['counters'][name]:>12,}")
        for name in sorted(snapshot["gauges"]):
            lines.append(f"  {name:<32} {snapshot['gauges'][name]:>12,.3f}")
        for name in sorted(snapshot["timers"]):
            row = snapshot["timers"][name]
            lines.append(
                f"  {name:<32} n={row['count']:<6,} "
                f"mean {row['mean'] * 1e3:.2f}ms  max {row['max'] * 1e3:.2f}ms"
            )
        return "\n".join(lines) if lines else "  (no runtime metrics recorded)"
