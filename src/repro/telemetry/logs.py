"""Synthetic error-log event streams.

Log-channel alert strategies in the paper match keyword rules such as
"IF the logs contain 5 ERRORs in the past 2 minutes, THEN generate an
alert".  What those rules consume is the *timing* of error events, so the
stream synthesises error-event timestamps as a piecewise-homogeneous
Poisson process: a low background rate plus burst windows registered by
the fault injector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_rng
from repro.common.timeutil import HOUR, TimeWindow
from repro.common.validation import require_non_negative

__all__ = ["LogBurst", "LogEventStream", "ERROR_TEMPLATES"]

#: Error-message templates, keyed by fault flavour.  Messages matter only
#: for alert descriptions; matching is on the ERROR marker itself.
ERROR_TEMPLATES: dict[str, str] = {
    "generic": "ERROR internal error while handling request: {detail}",
    "disk": "ERROR failed to allocate new blocks: no space left on device",
    "network": "ERROR connection reset by peer while calling {peer}",
    "timeout": "ERROR upstream call to {peer} timed out after 3000ms",
    "commit": "ERROR failed to commit changes: backend write rejected",
    "oom": "ERROR worker killed: out of memory",
}


@dataclass(frozen=True, slots=True)
class LogBurst:
    """An elevated error-rate window caused by a fault."""

    window: TimeWindow
    rate_per_hour: float
    template: str = "generic"
    label: str = ""

    def __post_init__(self) -> None:
        require_non_negative(self.rate_per_hour, "rate_per_hour")


class LogEventStream:
    """Error-event timestamps for one (microservice, region) log channel.

    The stream is deterministic per seed *and* per queried window: events
    are drawn bucket-by-bucket with a bucket-keyed generator, so querying
    ``[0, 2h)`` yields the same events in ``[1h, 2h)`` as querying that
    hour directly.
    """

    def __init__(self, seed: int, background_rate_per_hour: float = 0.2) -> None:
        require_non_negative(background_rate_per_hour, "background_rate_per_hour")
        self._seed = seed
        self._background_rate = background_rate_per_hour
        self._bursts: list[LogBurst] = []

    @property
    def bursts(self) -> list[LogBurst]:
        """Registered burst windows (copy)."""
        return list(self._bursts)

    def add_burst(self, burst: LogBurst) -> None:
        """Register an elevated-rate window."""
        self._bursts.append(burst)

    def clear_bursts(self) -> None:
        """Remove all bursts (between scenario runs)."""
        self._bursts.clear()

    def rate_at(self, sim_time: float) -> float:
        """Instantaneous error rate (events/hour) at ``sim_time``."""
        rate = self._background_rate
        for burst in self._bursts:
            if burst.window.contains(sim_time):
                rate += burst.rate_per_hour
        return rate

    def error_times(self, window: TimeWindow) -> np.ndarray:
        """Sorted error-event timestamps within ``window``."""
        events: list[np.ndarray] = []
        first_bucket = int(window.start // HOUR)
        last_bucket = int(np.ceil(window.end / HOUR))
        for bucket in range(first_bucket, last_bucket):
            bucket_window = TimeWindow(bucket * HOUR, (bucket + 1) * HOUR)
            events.append(self._bucket_events(bucket, bucket_window))
        if events:
            all_events = np.concatenate(events)
        else:
            all_events = np.empty(0)
        mask = (all_events >= window.start) & (all_events < window.end)
        return np.sort(all_events[mask])

    def error_count(self, window: TimeWindow) -> int:
        """Number of error events within ``window``."""
        return int(self.error_times(window).size)

    def _bucket_events(self, bucket: int, bucket_window: TimeWindow) -> np.ndarray:
        """Draw the events of one hour bucket with a bucket-keyed generator."""
        rng = derive_rng(self._seed, f"logs/bucket/{bucket}")
        pieces: list[np.ndarray] = []
        background = self._draw(rng, self._background_rate, bucket_window)
        pieces.append(background)
        for index, burst in enumerate(self._bursts):
            overlap_start = max(bucket_window.start, burst.window.start)
            overlap_end = min(bucket_window.end, burst.window.end)
            if overlap_end <= overlap_start:
                continue
            burst_rng = derive_rng(self._seed, f"logs/bucket/{bucket}/burst/{index}")
            pieces.append(
                self._draw(burst_rng, burst.rate_per_hour, TimeWindow(overlap_start, overlap_end))
            )
        return np.concatenate(pieces) if pieces else np.empty(0)

    @staticmethod
    def _draw(rng, rate_per_hour: float, window: TimeWindow) -> np.ndarray:
        expected = rate_per_hour * window.duration / HOUR
        if expected <= 0:
            return np.empty(0)
        count = int(rng.poisson(expected))
        if count == 0:
            return np.empty(0)
        return window.start + rng.random(count) * window.duration
