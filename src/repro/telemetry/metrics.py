"""Synthetic performance-metric series.

A metric series is the sum of a base level, a daily seasonal component,
Gaussian noise, and any number of *effects* — windows during which a fault
perturbs the signal.  Effects are how the fault injector reaches into
telemetry: a disk-full fault adds a ramp to ``disk_util``, a CPU overload
sets ``cpu_util`` near saturation, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.common.errors import ValidationError
from repro.common.timeutil import DAY, TimeWindow
from repro.common.validation import require_in, require_non_negative, require_positive

__all__ = ["MetricProfile", "MetricEffect", "MetricSeriesGenerator", "default_profiles"]

_EFFECT_MODES = ("add", "set", "scale", "ramp")


@dataclass(frozen=True, slots=True)
class MetricProfile:
    """Statistical shape of one metric on one component.

    ``base`` is the steady level, ``daily_amplitude`` scales a sinusoidal
    diurnal pattern, ``noise_std`` the Gaussian noise, and ``floor`` /
    ``ceiling`` clip the series into its physical range (utilisations live
    in [0, 100], counts are non-negative, ...).
    """

    name: str
    unit: str
    base: float
    daily_amplitude: float = 0.0
    noise_std: float = 0.0
    floor: float | None = 0.0
    ceiling: float | None = None
    phase_hours: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("metric name must be non-empty")
        require_non_negative(self.daily_amplitude, "daily_amplitude")
        require_non_negative(self.noise_std, "noise_std")
        if self.floor is not None and self.ceiling is not None and self.ceiling <= self.floor:
            raise ValidationError(
                f"ceiling {self.ceiling} must exceed floor {self.floor} for {self.name}"
            )


@dataclass(frozen=True, slots=True)
class MetricEffect:
    """A fault-induced perturbation over a time window.

    Modes: ``add`` adds ``value``; ``set`` replaces the signal; ``scale``
    multiplies; ``ramp`` adds a linear ramp from 0 up to ``value`` across
    the window (gray failures such as memory leaks).
    """

    window: TimeWindow
    mode: str
    value: float
    label: str = ""

    def __post_init__(self) -> None:
        require_in(self.mode, _EFFECT_MODES, "mode")

    def apply(self, times: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Return ``values`` with the effect applied at matching ``times``."""
        mask = (times >= self.window.start) & (times < self.window.end)
        if not mask.any():
            return values
        result = values.copy()
        if self.mode == "add":
            result[mask] += self.value
        elif self.mode == "set":
            result[mask] = self.value
        elif self.mode == "scale":
            result[mask] *= self.value
        else:  # ramp
            duration = max(self.window.duration, 1e-9)
            progress = (times[mask] - self.window.start) / duration
            result[mask] += self.value * progress
        return result


class MetricSeriesGenerator:
    """Produces values of one metric at requested timestamps.

    Sampling is *stateless in time*: the noise at time ``t`` is a hash of
    ``t`` and the stream seed, so overlapping queries agree on the values
    they share — the monitoring engine can poll sliding windows without
    the series rewriting history.
    """

    def __init__(self, profile: MetricProfile, seed: int) -> None:
        self._profile = profile
        self._seed = int(seed) % (2**32)
        self._effects: list[MetricEffect] = []

    @property
    def profile(self) -> MetricProfile:
        """The statistical profile of this series."""
        return self._profile

    @property
    def effects(self) -> list[MetricEffect]:
        """Currently registered fault effects (copy)."""
        return list(self._effects)

    def add_effect(self, effect: MetricEffect) -> None:
        """Register a fault-induced perturbation."""
        self._effects.append(effect)

    def clear_effects(self) -> None:
        """Drop all registered effects (between scenario runs)."""
        self._effects.clear()

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Metric values at ``times`` (seconds), effects and clipping applied."""
        times = np.asarray(times, dtype=float)
        profile = self._profile
        phase = 2.0 * np.pi * (times / DAY + profile.phase_hours / 24.0)
        values = profile.base + profile.daily_amplitude * np.sin(phase)
        if profile.noise_std > 0:
            values = values + profile.noise_std * self._noise(times)
        for effect in self._effects:
            values = effect.apply(times, values)
        if profile.floor is not None:
            values = np.maximum(values, profile.floor)
        if profile.ceiling is not None:
            values = np.minimum(values, profile.ceiling)
        return values

    def sample_window(self, window: TimeWindow, interval: float) -> tuple[np.ndarray, np.ndarray]:
        """Evenly spaced samples covering ``window`` at ``interval`` seconds."""
        require_positive(interval, "interval")
        times = np.arange(window.start, window.end, interval)
        return times, self.sample(times)

    def _noise(self, times: np.ndarray) -> np.ndarray:
        """Deterministic per-timestamp standard-normal noise.

        Each timestamp's noise is a pure function of (timestamp, seed), so
        overlapping window queries agree on the values they share.
        """
        keys = (times * 1000.0).astype(np.int64) ^ np.int64(self._seed)
        uniform = self._scramble(keys.astype(np.uint64))
        # An independent second uniform per timestamp for Box-Muller.
        partner = self._scramble(keys.astype(np.uint64) ^ np.uint64(0xDEADBEEFCAFEF00D))
        return np.sqrt(-2.0 * np.log(uniform)) * np.cos(2.0 * np.pi * partner)

    @staticmethod
    def _scramble(z: np.ndarray) -> np.ndarray:
        """SplitMix64-style scramble to uniforms in (0, 1), vectorised."""
        z = (z + np.uint64(0x9E3779B97F4A7C15)) * np.uint64(0xBF58476D1CE4E5B9)
        z ^= z >> np.uint64(27)
        z *= np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
        uniform = (z >> np.uint64(11)).astype(np.float64) / float(1 << 53)
        return np.clip(uniform, 1e-12, 1.0 - 1e-12)


def default_profiles(archetype: str) -> dict[str, MetricProfile]:
    """Metric profiles for a service archetype.

    Every archetype exposes the universal host metrics; archetype-specific
    metrics (connection count for databases, throughput for networks, ...)
    are added on top, mirroring the examples in the paper's §II-B3.
    """
    universal = {
        "cpu_util": MetricProfile("cpu_util", "%", base=35.0, daily_amplitude=10.0,
                                  noise_std=4.0, ceiling=100.0),
        "memory_util": MetricProfile("memory_util", "%", base=55.0, daily_amplitude=5.0,
                                     noise_std=2.0, ceiling=100.0),
        "disk_util": MetricProfile("disk_util", "%", base=40.0, daily_amplitude=1.0,
                                   noise_std=0.5, ceiling=100.0),
        "latency_ms": MetricProfile("latency_ms", "ms", base=45.0, daily_amplitude=15.0,
                                    noise_std=6.0),
        "request_rate": MetricProfile("request_rate", "req/s", base=220.0,
                                      daily_amplitude=120.0, noise_std=25.0),
        "error_rate": MetricProfile("error_rate", "%", base=0.3, daily_amplitude=0.1,
                                    noise_std=0.15, ceiling=100.0),
    }
    extras: dict[str, dict[str, MetricProfile]] = {
        "storage": {
            "io_throughput": MetricProfile("io_throughput", "MB/s", base=180.0,
                                           daily_amplitude=60.0, noise_std=20.0),
            "io_latency_ms": MetricProfile("io_latency_ms", "ms", base=4.0,
                                           daily_amplitude=1.0, noise_std=0.6),
        },
        "database": {
            "connection_count": MetricProfile("connection_count", "conns", base=350.0,
                                              daily_amplitude=120.0, noise_std=30.0),
            "commit_latency_ms": MetricProfile("commit_latency_ms", "ms", base=8.0,
                                               daily_amplitude=2.0, noise_std=1.0),
        },
        "network": {
            "network_throughput": MetricProfile("network_throughput", "MB/s", base=420.0,
                                                daily_amplitude=180.0, noise_std=40.0),
            "packet_loss": MetricProfile("packet_loss", "%", base=0.05, daily_amplitude=0.02,
                                         noise_std=0.03, ceiling=100.0),
        },
        "middleware": {
            "queue_depth": MetricProfile("queue_depth", "msgs", base=1200.0,
                                         daily_amplitude=500.0, noise_std=150.0),
            "consumer_lag": MetricProfile("consumer_lag", "msgs", base=300.0,
                                          daily_amplitude=120.0, noise_std=60.0),
        },
        "compute": {
            "vm_launch_latency_ms": MetricProfile("vm_launch_latency_ms", "ms", base=900.0,
                                                  daily_amplitude=200.0, noise_std=120.0),
        },
        "frontend": {
            "http_5xx_rate": MetricProfile("http_5xx_rate", "%", base=0.2,
                                           daily_amplitude=0.1, noise_std=0.1, ceiling=100.0),
        },
        "platform": {
            "task_backlog": MetricProfile("task_backlog", "tasks", base=80.0,
                                          daily_amplitude=30.0, noise_std=15.0),
        },
    }
    profiles = dict(universal)
    profiles.update(extras.get(archetype, {}))
    return profiles


def scaled_profile(profile: MetricProfile, base_scale: float) -> MetricProfile:
    """A copy of ``profile`` with the base level scaled (per-instance variety)."""
    require_positive(base_scale, "base_scale")
    return replace(profile, base=profile.base * base_scale)
