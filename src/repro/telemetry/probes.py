"""Heartbeat probe simulation.

Probe-channel strategies (§II-B3) send requests to a target and alert when
it stops responding for longer than a fixed no-response threshold.  The
simulator answers "did the target respond at time t, and how fast?" —
outage windows registered by the fault injector make it unresponsive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import derive_rng
from repro.common.timeutil import TimeWindow
from repro.common.validation import require_positive

__all__ = ["OutageWindow", "ProbeSimulator"]


@dataclass(frozen=True, slots=True)
class OutageWindow:
    """A window during which the probed target does not respond."""

    window: TimeWindow
    label: str = ""


class ProbeSimulator:
    """Simulates probe responses for one (microservice, region) target."""

    def __init__(self, seed: int, base_response_ms: float = 20.0) -> None:
        require_positive(base_response_ms, "base_response_ms")
        self._seed = seed
        self._base_response_ms = base_response_ms
        self._outages: list[OutageWindow] = []

    @property
    def outages(self) -> list[OutageWindow]:
        """Registered outage windows (copy)."""
        return list(self._outages)

    def add_outage(self, outage: OutageWindow) -> None:
        """Register an unresponsive window."""
        self._outages.append(outage)

    def clear_outages(self) -> None:
        """Remove all outages (between scenario runs)."""
        self._outages.clear()

    def is_responding(self, sim_time: float) -> bool:
        """Whether a probe sent at ``sim_time`` gets any response."""
        return not any(outage.window.contains(sim_time) for outage in self._outages)

    def response_time_ms(self, sim_time: float) -> float | None:
        """Round-trip of a probe at ``sim_time``; ``None`` when unresponsive."""
        if not self.is_responding(sim_time):
            return None
        rng = derive_rng(self._seed, f"probe/{int(sim_time * 1000)}")
        jitter = float(rng.gamma(shape=2.0, scale=self._base_response_ms / 4.0))
        return self._base_response_ms / 2.0 + jitter

    def unresponsive_duration(self, sim_time: float) -> float:
        """Seconds the target has been continuously unresponsive at ``sim_time``.

        Returns 0 when responding.  Back-to-back outage windows are merged:
        the duration counts from the start of the earliest window forming a
        contiguous unresponsive run that covers ``sim_time``.
        """
        covering = [o.window for o in self._outages if o.window.contains(sim_time)]
        if not covering:
            return 0.0
        run_start = min(window.start for window in covering)
        changed = True
        while changed:
            changed = False
            for outage in self._outages:
                window = outage.window
                if window.start < run_start <= window.end:
                    run_start = window.start
                    changed = True
        return sim_time - run_start
