"""Telemetry hub: the lookup surface the monitoring engine polls.

The hub lazily creates one generator per (microservice, region, channel)
with a seed derived from the identity of the channel, so two hubs built
from the same topology and root seed produce identical telemetry.  The
fault injector reaches components through the hub to register effects,
bursts, and outages.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.common.rng import derive_seed
from repro.telemetry.logs import LogEventStream
from repro.telemetry.metrics import MetricProfile, MetricSeriesGenerator, default_profiles
from repro.telemetry.probes import ProbeSimulator
from repro.topology.generator import CloudTopology

__all__ = ["TelemetryHub"]


class TelemetryHub:
    """Per-(microservice, region) access to metric, log, and probe channels."""

    def __init__(self, topology: CloudTopology, seed: int) -> None:
        self._topology = topology
        self._seed = seed
        self._metrics: dict[tuple[str, str, str], MetricSeriesGenerator] = {}
        self._logs: dict[tuple[str, str], LogEventStream] = {}
        self._probes: dict[tuple[str, str], ProbeSimulator] = {}

    @property
    def topology(self) -> CloudTopology:
        """The cloud this hub serves."""
        return self._topology

    # ------------------------------------------------------------------
    # channel accessors (lazily constructed, deterministic)
    # ------------------------------------------------------------------
    def metric(self, microservice: str, region: str, metric_name: str) -> MetricSeriesGenerator:
        """The metric series generator for one component metric."""
        self._require(microservice, region)
        key = (microservice, region, metric_name)
        if key not in self._metrics:
            profile = self._profile_for(microservice, metric_name)
            seed = derive_seed(self._seed, f"metric/{microservice}/{region}/{metric_name}")
            self._metrics[key] = MetricSeriesGenerator(profile, seed)
        return self._metrics[key]

    def metric_names(self, microservice: str) -> list[str]:
        """Metric names available on ``microservice`` (archetype-dependent)."""
        if microservice not in self._topology.microservices:
            raise ValidationError(f"unknown microservice {microservice!r}")
        archetype = self._archetype_of(microservice)
        return sorted(default_profiles(archetype))

    def logs(self, microservice: str, region: str) -> LogEventStream:
        """The error-log stream of one component."""
        self._require(microservice, region)
        key = (microservice, region)
        if key not in self._logs:
            seed = derive_seed(self._seed, f"logs/{microservice}/{region}")
            self._logs[key] = LogEventStream(seed)
        return self._logs[key]

    def probe(self, microservice: str, region: str) -> ProbeSimulator:
        """The heartbeat probe target of one component."""
        self._require(microservice, region)
        key = (microservice, region)
        if key not in self._probes:
            seed = derive_seed(self._seed, f"probe/{microservice}/{region}")
            self._probes[key] = ProbeSimulator(seed)
        return self._probes[key]

    def reset_faults(self) -> None:
        """Clear every registered effect, burst, and outage."""
        for generator in self._metrics.values():
            generator.clear_effects()
        for stream in self._logs.values():
            stream.clear_bursts()
        for probe in self._probes.values():
            probe.clear_outages()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require(self, microservice: str, region: str) -> None:
        if microservice not in self._topology.microservices:
            raise ValidationError(f"unknown microservice {microservice!r}")
        if region not in self._topology.region_names():
            raise ValidationError(f"unknown region {region!r}")

    def _archetype_of(self, microservice: str) -> str:
        service_name = self._topology.service_of[microservice]
        return self._topology.services[service_name].archetype

    def _profile_for(self, microservice: str, metric_name: str) -> MetricProfile:
        archetype = self._archetype_of(microservice)
        profiles = default_profiles(archetype)
        if metric_name not in profiles:
            raise ValidationError(
                f"microservice {microservice!r} (archetype {archetype!r}) "
                f"has no metric {metric_name!r}; available: {sorted(profiles)}"
            )
        return profiles[metric_name]
