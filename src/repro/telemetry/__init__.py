"""Telemetry synthesis: metrics, logs, and probes.

Section II-B3 of the paper divides alert strategies into three monitoring
channels — probes, logs, and metrics.  This package synthesises all three
for the simulated cloud:

* :mod:`repro.telemetry.metrics` — seasonal, noisy performance metric
  series (latency, CPU, disk, ...) with injectable anomaly effects;
* :mod:`repro.telemetry.logs` — Poisson error-log event streams with
  burst overlays;
* :mod:`repro.telemetry.probes` — heartbeat probes with outage windows;
* :mod:`repro.telemetry.store` — a hub mapping (microservice, region,
  channel) to its generators, which the monitoring engine polls;
* :mod:`repro.telemetry.runtime` — the opposite direction: runtime
  metrics *about* the repro serving processes themselves.
"""

from repro.telemetry.logs import LogBurst, LogEventStream
from repro.telemetry.metrics import (
    MetricEffect,
    MetricProfile,
    MetricSeriesGenerator,
    default_profiles,
)
from repro.telemetry.probes import OutageWindow, ProbeSimulator
from repro.telemetry.runtime import RuntimeMetrics
from repro.telemetry.store import TelemetryHub

__all__ = [
    "MetricProfile",
    "MetricEffect",
    "MetricSeriesGenerator",
    "default_profiles",
    "LogEventStream",
    "LogBurst",
    "ProbeSimulator",
    "OutageWindow",
    "TelemetryHub",
    "RuntimeMetrics",
]
