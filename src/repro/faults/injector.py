"""Fault injector: expresses faults as telemetry perturbations.

Each fault kind has a fixed telemetry signature — the mapping is the
simulated counterpart of "what a failing component actually does to its
metrics, logs, and probes":

===================  ==========================================================
kind                 telemetry signature
===================  ==========================================================
CRASH                probe outage + brief error burst
DISK_FULL            ``disk_util`` ramp into saturation + disk error burst
CPU_OVERLOAD         ``cpu_util`` pinned high + latency inflation
MEMORY_LEAK          slow ``memory_util`` ramp, error burst only near the end
NETWORK_OVERLOAD     latency inflation + heavy error burst
ERROR_BURST          error burst only
LATENCY_REGRESSION   ``latency_ms`` step + moderate error burst
FLAPPING             a train of short metric spikes (drives A4 toggling)
===================  ==========================================================
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.common.ids import IdFactory
from repro.common.timeutil import MINUTE, TimeWindow
from repro.faults.models import Fault, FaultKind
from repro.telemetry.logs import LogBurst
from repro.telemetry.metrics import MetricEffect
from repro.telemetry.probes import OutageWindow
from repro.telemetry.store import TelemetryHub

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies faults to a telemetry hub and indexes them for attribution."""

    def __init__(self, hub: TelemetryHub, id_factory: IdFactory | None = None) -> None:
        self._hub = hub
        self._ids = id_factory or IdFactory("fault")
        self._faults: list[Fault] = []

    @property
    def faults(self) -> list[Fault]:
        """All injected faults, in injection order (copy)."""
        return list(self._faults)

    def new_fault(
        self,
        kind: FaultKind,
        microservice: str,
        region: str,
        window: TimeWindow,
        parent: Fault | None = None,
    ) -> Fault:
        """Create, apply, and index a fault."""
        fault = Fault(
            fault_id=self._ids.next(),
            kind=kind,
            microservice=microservice,
            region=region,
            window=window,
            parent_fault_id=parent.fault_id if parent else None,
            root_fault_id=parent.root_id() if parent else None,
            depth=parent.depth + 1 if parent else 0,
        )
        self.apply(fault)
        return fault

    def apply(self, fault: Fault) -> None:
        """Express ``fault`` in the telemetry hub and index it."""
        handler = {
            FaultKind.CRASH: self._apply_crash,
            FaultKind.DISK_FULL: self._apply_disk_full,
            FaultKind.CPU_OVERLOAD: self._apply_cpu_overload,
            FaultKind.MEMORY_LEAK: self._apply_memory_leak,
            FaultKind.NETWORK_OVERLOAD: self._apply_network_overload,
            FaultKind.ERROR_BURST: self._apply_error_burst,
            FaultKind.LATENCY_REGRESSION: self._apply_latency_regression,
            FaultKind.FLAPPING: self._apply_flapping,
        }.get(fault.kind)
        if handler is None:
            raise ValidationError(f"no injector for fault kind {fault.kind}")
        handler(fault)
        self._faults.append(fault)

    def fault_at(self, microservice: str, region: str, sim_time: float) -> str | None:
        """Ground-truth attribution: the fault active on a component at a time.

        When several overlap, the earliest-starting (closest to the root
        cause) wins.
        """
        candidates = [
            fault
            for fault in self._faults
            if fault.microservice == microservice
            and fault.region == region
            and fault.window.contains(sim_time)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda f: (f.window.start, f.depth)).fault_id

    # ------------------------------------------------------------------
    # per-kind signatures
    # ------------------------------------------------------------------
    def _metric(self, fault: Fault, name: str):
        return self._hub.metric(fault.microservice, fault.region, name)

    def _available_metrics(self, fault: Fault) -> set[str]:
        return set(self._hub.metric_names(fault.microservice))

    def _burst(self, fault: Fault, rate_per_hour: float, template: str,
               window: TimeWindow | None = None) -> None:
        stream = self._hub.logs(fault.microservice, fault.region)
        stream.add_burst(LogBurst(
            window=window or fault.window,
            rate_per_hour=rate_per_hour,
            template=template,
            label=fault.fault_id,
        ))

    def _apply_crash(self, fault: Fault) -> None:
        probe = self._hub.probe(fault.microservice, fault.region)
        probe.add_outage(OutageWindow(window=fault.window, label=fault.fault_id))
        burst_end = min(fault.window.start + 5 * MINUTE, fault.window.end)
        self._burst(fault, 600.0, "generic", TimeWindow(fault.window.start, burst_end))

    def _apply_disk_full(self, fault: Fault) -> None:
        # The last stretch of free space vanishes quickly, then the disk
        # sits at capacity for the rest of the fault window.
        fill_end = min(fault.window.start + 8 * MINUTE, fault.window.end)
        series = self._metric(fault, "disk_util")
        series.add_effect(
            MetricEffect(TimeWindow(fault.window.start, fill_end), "ramp", 58.0,
                         label=fault.fault_id)
        )
        if fill_end < fault.window.end:
            series.add_effect(
                MetricEffect(TimeWindow(fill_end, fault.window.end), "set", 98.0,
                             label=fault.fault_id)
            )
        self._burst(fault, 240.0, "disk")

    def _apply_cpu_overload(self, fault: Fault) -> None:
        self._metric(fault, "cpu_util").add_effect(
            MetricEffect(fault.window, "set", 95.0, label=fault.fault_id)
        )
        self._metric(fault, "latency_ms").add_effect(
            MetricEffect(fault.window, "scale", 3.0, label=fault.fault_id)
        )

    def _apply_memory_leak(self, fault: Fault) -> None:
        self._metric(fault, "memory_util").add_effect(
            MetricEffect(fault.window, "ramp", 50.0, label=fault.fault_id)
        )
        # Errors surface only in the last fifth of the leak — the gray phase
        # is silent, which is what makes R4's early detection valuable.
        tail_start = fault.window.start + 0.8 * fault.window.duration
        self._burst(fault, 360.0, "oom", TimeWindow(tail_start, fault.window.end))

    def _apply_network_overload(self, fault: Fault) -> None:
        self._metric(fault, "latency_ms").add_effect(
            MetricEffect(fault.window, "scale", 4.0, label=fault.fault_id)
        )
        if "network_throughput" in self._available_metrics(fault):
            self._metric(fault, "network_throughput").add_effect(
                MetricEffect(fault.window, "set", 980.0, label=fault.fault_id)
            )
        self._burst(fault, 420.0, "network")

    def _apply_error_burst(self, fault: Fault) -> None:
        self._burst(fault, 300.0, "generic")

    def _apply_latency_regression(self, fault: Fault) -> None:
        self._metric(fault, "latency_ms").add_effect(
            MetricEffect(fault.window, "add", 400.0, label=fault.fault_id)
        )
        self._metric(fault, "error_rate").add_effect(
            MetricEffect(fault.window, "add", 4.0, label=fault.fault_id)
        )
        self._burst(fault, 120.0, "timeout")

    def _apply_flapping(self, fault: Fault) -> None:
        """A train of 3-minute CPU spikes every 10 minutes across the window."""
        spike_length = 3 * MINUTE
        period = 10 * MINUTE
        start = fault.window.start
        series = self._metric(fault, "cpu_util")
        while start < fault.window.end:
            end = min(start + spike_length, fault.window.end)
            series.add_effect(
                MetricEffect(TimeWindow(start, end), "set", 96.0, label=fault.fault_id)
            )
            start += period
