"""Named fault scenarios used by benchmarks, examples, and tests.

Each scenario injects a ground-truth fault structure that one of the
paper's artefacts exercises:

* :func:`disk_full_cascade` — Table II: block storage runs out of disk,
  the database that uses it as backend fails to commit, and the anomaly
  propagates further up the call structure (anti-pattern A6);
* :func:`gray_failure_scenario` — §III-C R4: a memory leak degrades
  silently, then erupts into a cascade — the emerging-alert case;
* :func:`flapping_metric_scenario` — anti-pattern A4: a metric oscillates
  across its threshold producing transient/toggling alerts.
"""

from __future__ import annotations

from dataclasses import replace

from repro.common.errors import ValidationError
from repro.common.timeutil import HOUR, TimeWindow
from repro.faults.injector import FaultInjector
from repro.faults.models import Fault, FaultKind
from repro.faults.propagation import CascadeModel
from repro.topology.generator import CloudTopology

__all__ = ["disk_full_cascade", "gray_failure_scenario", "flapping_metric_scenario"]


def _most_depended_on(topology: CloudTopology, service: str) -> str:
    """The microservice of ``service`` with the most direct dependents."""
    members = topology.microservices_of(service)
    if not members:
        raise ValidationError(f"service {service!r} has no microservices")
    return max(members, key=lambda name: (len(topology.graph.dependents(name)), name))


def disk_full_cascade(
    topology: CloudTopology,
    injector: FaultInjector,
    cascade: CascadeModel,
    start: float,
    duration: float = 2 * HOUR,
    region: str | None = None,
) -> tuple[Fault, list[Fault]]:
    """Inject the Table II scenario: disk-full on block storage, then cascade.

    Returns ``(root_fault, propagated_faults)``.
    """
    region = region or topology.region_names()[0]
    target = _most_depended_on(topology, "block-storage")
    root = injector.new_fault(
        kind=FaultKind.DISK_FULL,
        microservice=target,
        region=region,
        window=TimeWindow(start, start + duration),
    )
    children = cascade.trigger(root)
    return root, children


def gray_failure_scenario(
    topology: CloudTopology,
    injector: FaultInjector,
    cascade: CascadeModel,
    start: float,
    leak_duration: float = 4 * HOUR,
    region: str | None = None,
) -> tuple[Fault, list[Fault]]:
    """Inject a gray failure: silent memory leak, cascade only near the end.

    The leak's telemetry signature stays quiet for the first 80 % of the
    window (see the injector); the cascade children are anchored to that
    final phase, so alerts from the leak itself *precede* the flood — the
    emerging-alert situation R4 is designed to catch.
    """
    region = region or topology.region_names()[0]
    target = _most_depended_on(topology, "container-engine")
    window = TimeWindow(start, start + leak_duration)
    root = injector.new_fault(
        kind=FaultKind.MEMORY_LEAK,
        microservice=target,
        region=region,
        window=window,
    )
    tail = TimeWindow(window.start + 0.8 * window.duration, window.end)
    # Children propagate from the eruption phase, not from the silent phase.
    eruption_view = replace(root, window=tail)
    children = cascade.trigger(eruption_view)
    return root, children


def flapping_metric_scenario(
    topology: CloudTopology,
    injector: FaultInjector,
    start: float,
    duration: float = 3 * HOUR,
    region: str | None = None,
    microservice: str | None = None,
) -> Fault:
    """Inject a flapping CPU metric that toggles threshold strategies (A4)."""
    region = region or topology.region_names()[0]
    if microservice is None:
        microservice = _most_depended_on(topology, "elastic-compute")
    return injector.new_fault(
        kind=FaultKind.FLAPPING,
        microservice=microservice,
        region=region,
        window=TimeWindow(start, start + duration),
    )
