"""Fault injection and anomaly propagation.

Faults are the ground truth of every experiment: a fault perturbs the
telemetry of its component (metric effects, log bursts, probe outages),
the monitoring engine turns the perturbations into alerts, and the
evaluation scores detectors/mitigations against the injected faults.

:mod:`repro.faults.propagation` implements the paper's cascade mechanism
(§III-A2, A6): "when a service enters an anomalous state, other services
that rely on it will probably suffer from anomalous states as well.  Such
anomalous states can propagate through the service-calling structure."
"""

from repro.faults.injector import FaultInjector
from repro.faults.models import Fault, FaultKind
from repro.faults.propagation import CascadeModel, CascadeConfig
from repro.faults.scenarios import (
    disk_full_cascade,
    flapping_metric_scenario,
    gray_failure_scenario,
)

__all__ = [
    "Fault",
    "FaultKind",
    "FaultInjector",
    "CascadeModel",
    "CascadeConfig",
    "disk_full_cascade",
    "gray_failure_scenario",
    "flapping_metric_scenario",
]
